//! Regression gates against pre-refactor fixtures: the prefetcher-trait
//! seam must not move a single figure byte, and schema-v1 report
//! documents must keep parsing.
//!
//! `tests/fixtures/` was captured from the tree immediately before the
//! `InstructionPrefetcher` extraction, at `--instructions 20000 --stride
//! 48 --threads 2` (one workload, `public_srv_60`).

use swip_bench::{build_run_report, figures, ConfigId, ExperimentPlan, SessionBuilder};
use swip_report::RunReport;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Re-runs the fixture sweep and rebuilds `fig1.tsv` in memory (no shared
/// experiments dir) — it must match the pre-refactor bytes exactly.
#[test]
fn fig1_bytes_survive_the_prefetcher_trait_refactor() {
    let session = SessionBuilder::new()
        .instructions(20_000)
        .stride(48)
        .threads(2)
        .build()
        .unwrap();
    let plan = ExperimentPlan::all_figures(session.workloads());
    let results = session.run(&plan).unwrap();

    let mut tsv = String::from("workload\tAsmDB\tAsmDB-NoOv\tFDP24\tAsmDB+FDP\tAsmDB+FDP-NoOv\n");
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for r in &results {
        tsv.push_str(&figures::fig1_row(r));
        tsv.push('\n');
        for (i, (_, v)) in r.fig1_series().iter().enumerate() {
            series[i].push(*v);
        }
    }
    let g: Vec<f64> = series.iter().map(|s| swip_types::geomean(s)).collect();
    tsv.push_str(&format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\n",
        g[0], g[1], g[2], g[3], g[4]
    ));

    assert_eq!(
        tsv,
        fixture("fig1_v1.tsv"),
        "fig1 rows drifted from the pre-refactor capture"
    );
}

/// The v1 document still parses, still verifies its own fingerprint, and
/// carries the same counters and values a fresh run produces today.
#[test]
fn v1_report_fixture_parses_and_matches_a_fresh_run() {
    let text = fixture("report_v1.json");
    let v1 = RunReport::from_json_str(&text).expect("schema v1 must stay readable");
    assert_eq!(v1.version, 1);
    assert_eq!(v1.compute_fingerprint(), v1.fingerprint);

    let session = SessionBuilder::new()
        .instructions(20_000)
        .stride(48)
        .threads(2)
        .build()
        .unwrap();
    let plan = ExperimentPlan::all_figures(session.workloads());
    let results = session.run(&plan).unwrap();
    let fresh = build_run_report(&session, "all", &results);

    assert_eq!(v1.workloads.len(), fresh.workloads.len());
    for old_w in &v1.workloads {
        let new_w = fresh.workload(&old_w.name).expect("workload still present");
        assert_eq!(old_w.coverage, new_w.coverage, "{}", old_w.name);
        for id in ConfigId::PAPER {
            let old_c = old_w.config(id.label()).expect("config in fixture");
            let new_c = new_w.config(id.label()).expect("config in fresh run");
            // v1 predates the `prefetcher` key; everything measured must
            // agree to the last bit.
            assert_eq!(old_c.prefetcher, "");
            assert_eq!(
                old_c.counters,
                new_c.counters,
                "{}/{} counters drifted",
                old_w.name,
                id.label()
            );
            assert_eq!(
                old_c.values,
                new_c.values,
                "{}/{} values drifted",
                old_w.name,
                id.label()
            );
        }
    }
}
