//! One integration test per `swip-analyze` rule id: every entry in the
//! DESIGN.md §8 catalog is triggered here through the public API, exactly as
//! `swip analyze` would surface it. Companion acceptance tests prove that
//! everything the toolkit itself produces — generated suite workloads,
//! before and after the AsmDB rewrite — analyzes clean of errors.

use swip_analyze::{
    analyze_read, analyze_trace, check_cfg, diff_rewrite, lint_trace, verify_plan, Severity,
};
use swip_asmdb::{rewrite_trace, Cfg, Insertion, Plan};
use swip_trace::{Trace, TraceBuilder};
use swip_types::{Addr, InstrKind, Instruction};

/// Asserts that `diags` contains `rule` and nothing of a *higher* severity
/// that isn't also `rule` (i.e. the corpus file triggers what it claims).
fn assert_rule(diags: &[swip_analyze::Diagnostic], rule: &str) {
    assert!(
        diags.iter().any(|d| d.rule == rule),
        "expected {rule}, got {diags:?}"
    );
}

// ---- decode family (T001–T007), through analyze_read ---------------------

fn encoded(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    buf
}

fn tiny() -> Trace {
    let mut b = TraceBuilder::new("x");
    b.alu().alu();
    b.finish()
}

fn decode_rule(bytes: &[u8]) -> &'static str {
    let report = analyze_read(bytes, "corpus");
    assert!(report.has_errors());
    assert_eq!(report.families, vec!["decode"]);
    assert_eq!(report.diagnostics.len(), 1);
    report.diagnostics[0].rule
}

#[test]
fn t001_bad_magic() {
    let mut buf = encoded(&tiny());
    buf[0] = b'Z';
    assert_eq!(decode_rule(&buf), "T001");
}

#[test]
fn t002_unsupported_version() {
    let mut buf = encoded(&tiny());
    buf[4..8].copy_from_slice(&7u32.to_le_bytes());
    assert_eq!(decode_rule(&buf), "T002");
}

#[test]
fn t003_unknown_tag() {
    let mut buf = encoded(&tiny());
    let tag_at = 12 + 1 + 8 + 8 + 1; // header, 1-byte name, count, pc, size
    buf[tag_at] = 200;
    assert_eq!(decode_rule(&buf), "T003");
}

#[test]
fn t004_bad_register() {
    let mut buf = encoded(&tiny());
    let dst_at = 12 + 1 + 8 + 8 + 1 + 1 + 1; // ... tag, srcmask
    buf[dst_at] = 0xf0;
    assert_eq!(decode_rule(&buf), "T004");
}

#[test]
fn t005_truncated_stream() {
    let buf = encoded(&tiny());
    assert_eq!(decode_rule(&buf[..buf.len() - 1]), "T005");
}

#[test]
fn t006_non_utf8_name() {
    let mut buf = encoded(&tiny());
    buf[12] = 0xff;
    assert_eq!(decode_rule(&buf), "T006");
}

#[test]
fn t007_implausible_length() {
    let mut buf = encoded(&tiny());
    buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(decode_rule(&buf), "T007");
}

// ---- trace family (T010–T016) --------------------------------------------

#[test]
fn t010_discontinuity() {
    let t = Trace::from_instructions(
        "corpus",
        vec![
            Instruction::alu(Addr::new(0x0)),
            Instruction::alu(Addr::new(0x80)),
        ],
    );
    assert_rule(&lint_trace(&t), "T010");
}

#[test]
fn t011_not_taken_unconditional() {
    let mut jump = Instruction::jump(Addr::new(0x0), Addr::new(0x40));
    if let InstrKind::Branch { taken, .. } = &mut jump.kind {
        *taken = false;
    }
    let t = Trace::from_instructions("corpus", vec![jump, Instruction::alu(Addr::new(0x4))]);
    assert_rule(&lint_trace(&t), "T011");
}

#[test]
fn t012_kind_instability() {
    let t = Trace::from_instructions(
        "corpus",
        vec![
            Instruction::alu(Addr::new(0x0)),
            Instruction::jump(Addr::new(0x4), Addr::new(0x0)),
            Instruction::load(Addr::new(0x0), Addr::new(0x9000)),
        ],
    );
    assert_rule(&lint_trace(&t), "T012");
}

#[test]
fn t013_zero_size() {
    let t = Trace::from_instructions(
        "corpus",
        vec![Instruction::alu(Addr::new(0x0)).with_size(0)],
    );
    assert_rule(&lint_trace(&t), "T013");
}

#[test]
fn t014_null_page_access() {
    let t = Trace::from_instructions(
        "corpus",
        vec![Instruction::store(Addr::new(0x4000), Addr::new(0x8))],
    );
    assert_rule(&lint_trace(&t), "T014");
}

#[test]
fn t015_dead_prefetch() {
    let t = Trace::from_instructions(
        "corpus",
        vec![
            Instruction::prefetch_i(Addr::new(0x0), Addr::new(0xbeef00)),
            Instruction::alu(Addr::new(0x4)),
        ],
    );
    assert_rule(&lint_trace(&t), "T015");
}

#[test]
fn t016_empty_trace() {
    let t = Trace::from_instructions("corpus", vec![]);
    let diags = lint_trace(&t);
    assert_rule(&diags, "T016");
    assert!(diags.iter().all(|d| d.severity == Severity::Info));
}

// ---- cfg family (C001–C007) ----------------------------------------------

/// A diamond CFG whose blocks we can perturb per rule.
fn diamond() -> (Trace, Vec<swip_asmdb::CfgBlock>) {
    let mut b = TraceBuilder::new("corpus");
    for taken in [true, false] {
        b.set_pc(Addr::new(0x0));
        b.alu();
        b.cond_branch(Addr::new(0x20), taken);
        if !taken {
            b.alu();
            b.jump(Addr::new(0x20));
        }
        b.alu();
        b.jump(Addr::new(0x0));
    }
    let t = b.finish();
    let blocks = Cfg::from_trace(&t)
        .blocks()
        .map(|(_, blk)| blk.clone())
        .collect();
    (t, blocks)
}

#[test]
fn c001_edge_to_unknown_block() {
    let (t, mut blocks) = diamond();
    blocks[0].succs.push((77, 1));
    assert_rule(&check_cfg(&t, &Cfg::from_parts(blocks)), "C001");
}

#[test]
fn c002_impossible_edge_target() {
    let (t, mut blocks) = diamond();
    let w = blocks[0].succs[0].1;
    blocks[0].succs[0] = (0, w); // entry's branch cannot target entry
    blocks[0].preds.push((0, w));
    assert_rule(&check_cfg(&t, &Cfg::from_parts(blocks)), "C002");
}

#[test]
fn c003_missing_mirror_edge() {
    let (t, mut blocks) = diamond();
    let victim = blocks.iter().position(|b| !b.preds.is_empty()).unwrap();
    blocks[victim].preds.pop();
    assert_rule(&check_cfg(&t, &Cfg::from_parts(blocks)), "C003");
}

#[test]
fn c004_unreachable_block() {
    let (t, mut blocks) = diamond();
    let orphan = blocks.len() - 1;
    for b in &mut blocks {
        b.succs.retain(|&(s, _)| s != orphan);
        b.preds.retain(|&(p, _)| p != orphan);
    }
    blocks[orphan].succs.clear();
    blocks[orphan].preds.clear();
    assert_rule(&check_cfg(&t, &Cfg::from_parts(blocks)), "C004");
}

#[test]
fn c005_malformed_block() {
    let (t, mut blocks) = diamond();
    let extra = blocks[1].pcs.clone();
    blocks[0].pcs.extend(extra);
    assert_rule(&check_cfg(&t, &Cfg::from_parts(blocks)), "C005");
}

#[test]
fn c006_uncovered_pc() {
    let (t, mut blocks) = diamond();
    blocks.pop();
    let gone = blocks.len();
    for b in &mut blocks {
        b.succs.retain(|&(s, _)| s != gone);
        b.preds.retain(|&(p, _)| p != gone);
    }
    assert_rule(&check_cfg(&t, &Cfg::from_parts(blocks)), "C006");
}

#[test]
fn c007_inflated_edge_weight() {
    let (t, mut blocks) = diamond();
    let victim = blocks.iter().position(|b| !b.succs.is_empty()).unwrap();
    blocks[victim].succs[0].1 += 500;
    let (to, w) = blocks[victim].succs[0];
    for p in &mut blocks[to].preds {
        if p.0 == victim {
            p.1 = w;
        }
    }
    assert_rule(&check_cfg(&t, &Cfg::from_parts(blocks)), "C007");
}

// ---- plan family (P001–P006) ---------------------------------------------

/// Three blocks looped: A(0x0) → B(0x100) → C(0x200) → A, 8 instrs each.
fn chain() -> (Trace, Cfg) {
    let mut b = TraceBuilder::new("corpus");
    for _ in 0..4 {
        for base in [0x0u64, 0x100, 0x200] {
            b.set_pc(Addr::new(base));
            for _ in 0..7 {
                b.alu();
            }
            b.jump(Addr::new((base + 0x100) % 0x300));
        }
    }
    let t = b.finish();
    let cfg = Cfg::from_trace(&t);
    (t, cfg)
}

fn plan_of(insertions: Vec<Insertion>) -> Plan {
    Plan {
        targeted_lines: insertions.len(),
        insertions,
        uncovered_lines: 0,
    }
}

fn ins(anchor: u64, target: u64, distance: u64, reach: f64) -> Insertion {
    Insertion {
        anchor: Addr::new(anchor),
        before: true,
        target_pc: Addr::new(target),
        distance,
        reach,
    }
}

fn plan_rules(cfg: &Cfg, plan: &Plan) -> Vec<swip_analyze::Diagnostic> {
    verify_plan(cfg, cfg.block_of(Addr::new(0x0)), plan)
}

#[test]
fn p001_unknown_anchor() {
    let (_, cfg) = chain();
    assert_rule(
        &plan_rules(&cfg, &plan_of(vec![ins(0xdead, 0x200, 8, 0.9)])),
        "P001",
    );
}

#[test]
fn p002_unreachable_target() {
    let (_, cfg) = chain();
    assert_rule(
        &plan_rules(&cfg, &plan_of(vec![ins(0x1c, 0x7000, 8, 0.9)])),
        "P002",
    );
}

#[test]
fn p003_impossible_distance() {
    let (_, cfg) = chain();
    // 0x200 is 8 instructions (all of B) past A's jump; 2 is unachievable.
    assert_rule(
        &plan_rules(&cfg, &plan_of(vec![ins(0x1c, 0x200, 2, 0.9)])),
        "P003",
    );
}

#[test]
fn p004_duplicate_insertion() {
    let (_, cfg) = chain();
    let plan = plan_of(vec![ins(0x1c, 0x200, 8, 0.9), ins(0x1c, 0x200, 16, 0.5)]);
    assert_rule(&plan_rules(&cfg, &plan), "P004");
}

#[test]
fn p005_reach_not_a_probability() {
    let (_, cfg) = chain();
    assert_rule(
        &plan_rules(&cfg, &plan_of(vec![ins(0x1c, 0x200, 8, -0.2)])),
        "P005",
    );
}

#[test]
fn p006_dominated_redundant_prefetch() {
    let (_, cfg) = chain();
    // B dominates C's jump; prefetching B's own line from C is redundant.
    assert_rule(
        &plan_rules(&cfg, &plan_of(vec![ins(0x21c, 0x100, 8, 0.9)])),
        "P006",
    );
}

// ---- rewrite family (R001–R003) ------------------------------------------

fn rewrite_fixture() -> (Trace, Plan, Trace) {
    let (t, _) = chain();
    let plan = plan_of(vec![ins(0x1c, 0x200, 8, 0.9)]);
    let (rw, _) = rewrite_trace(&t, &plan);
    (t, plan, rw)
}

#[test]
fn r001_tampered_instruction() {
    let (t, plan, rw) = rewrite_fixture();
    let mut instrs = rw.instructions().to_vec();
    instrs[0] = Instruction::load(instrs[0].pc, Addr::new(0x9000));
    let bad = Trace::from_instructions(rw.name(), instrs);
    assert_rule(&diff_rewrite(&t, &plan, &bad), "R001");
}

#[test]
fn r002_dropped_prefetch() {
    let (t, plan, rw) = rewrite_fixture();
    let instrs: Vec<Instruction> = rw.iter().filter(|i| !i.is_prefetch_i()).copied().collect();
    assert!(instrs.len() < rw.len());
    let bad = Trace::from_instructions(rw.name(), instrs);
    assert_rule(&diff_rewrite(&t, &plan, &bad), "R002");
}

#[test]
fn r003_retargeted_prefetch() {
    let (t, plan, rw) = rewrite_fixture();
    let mut instrs = rw.instructions().to_vec();
    let pf = instrs.iter_mut().find(|i| i.is_prefetch_i()).unwrap();
    pf.kind = InstrKind::PrefetchI {
        target: Addr::new(0xf000),
    };
    let bad = Trace::from_instructions(rw.name(), instrs);
    assert_rule(&diff_rewrite(&t, &plan, &bad), "R003");
}

// ---- acceptance: the toolkit's own artifacts are clean -------------------

#[test]
fn generated_workloads_analyze_clean() {
    for idx in [1usize, 4] {
        // one crypto, one integer workload
        let spec = swip_workloads::cvp1_suite(4_000).remove(idx);
        let trace = swip_workloads::generate(&spec);
        let report = analyze_trace(&trace);
        assert_eq!(report.errors(), 0, "{}: {report}", spec.name);
    }
}

#[test]
fn asmdb_rewritten_workload_analyzes_clean() {
    let spec = swip_workloads::cvp1_suite(4_000).remove(1);
    let trace = swip_workloads::generate(&spec);
    let out = swip_asmdb::Asmdb::new(swip_asmdb::AsmdbConfig::default())
        .run(&trace, &swip_core::SimConfig::conservative());
    let report = analyze_trace(&out.rewritten);
    assert_eq!(report.errors(), 0, "{report}");
    // And the independent diff agrees with the pipeline's own rewrite.
    let diags = diff_rewrite(&trace, &out.plan, &out.rewritten);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn analyze_round_trips_through_bytes() {
    let spec = swip_workloads::cvp1_suite(3_000).remove(1);
    let trace = swip_workloads::generate(&spec);
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).unwrap();
    let report = analyze_read(bytes.as_slice(), "suite.swip");
    assert_eq!(report.errors(), 0, "{report}");
    assert_eq!(report.families[0], "decode");
    // JSON output is well-formed enough to contain the documented keys.
    let json = report.to_json();
    for key in [
        "\"subject\"",
        "\"families\"",
        "\"errors\"",
        "\"diagnostics\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

// ---- runtime invariants (feature `invariants`, enabled for this crate) ---

#[test]
fn simulation_upholds_runtime_invariants() {
    // swip-core is built with the `invariants` feature here, so I001/I002
    // assert on every front-end cycle and I003 at end of run. A full
    // simulation of a front-end-bound workload passing without panicking is
    // the positive test.
    let spec = swip_workloads::cvp1_suite(3_000).remove(0);
    let trace = swip_workloads::generate(&spec);
    let report = swip_core::Simulator::new(swip_core::SimConfig::conservative()).run(&trace);
    assert!(report.completed);
    assert!(report.instructions > 0);
}
