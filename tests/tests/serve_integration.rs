//! Integration tests for `swip-serve` over a real loopback socket:
//! served reports must be byte-identical to offline runs, a full queue
//! must shed load with 429, and shutdown must drain accepted work.

use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use swip_bench::{build_plan_report, ExperimentPlan, SessionBuilder};
use swip_report::{Json, PlanSpec};
use swip_serve::{client, JobState, ServeConfig, ServeContext, Server};

const POLL: Duration = Duration::from_millis(50);
const DEADLINE: Duration = Duration::from_secs(180);

struct Harness {
    addr: String,
    ctx: Arc<ServeContext>,
    server: JoinHandle<std::io::Result<()>>,
}

/// Binds a server on an ephemeral loopback port and runs it on a thread.
fn start(instructions: u64, stride: usize, threads: usize, config: ServeConfig) -> Harness {
    let session = SessionBuilder::new()
        .instructions(instructions)
        .stride(stride)
        .threads(threads)
        .build()
        .unwrap();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    };
    let server = Server::bind(&config, session).unwrap();
    let addr = server.local_addr().to_string();
    let ctx = server.context();
    let handle = thread::spawn(move || server.run());
    Harness {
        addr,
        ctx,
        server: handle,
    }
}

fn submit(addr: &str, body: &str) -> (u16, String) {
    client::request(addr, "POST", "/v1/jobs", Some(body)).unwrap()
}

fn job_id(body: &str) -> u64 {
    Json::parse(body)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no job id in {body}"))
}

fn wait_done(addr: &str, id: u64) {
    let started = Instant::now();
    loop {
        let (status, body) = client::request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        let state = Json::parse(&body)
            .unwrap()
            .get("state")
            .and_then(|s| s.as_str().map(String::from))
            .unwrap();
        match state.as_str() {
            "done" => return,
            "failed" => panic!("job {id} failed: {body}"),
            _ => {
                assert!(
                    started.elapsed() < DEADLINE,
                    "job {id} still {state} after {DEADLINE:?}"
                );
                thread::sleep(POLL);
            }
        }
    }
}

fn fetch_report(addr: &str, id: u64) -> String {
    let (status, body) =
        client::request(addr, "GET", &format!("/v1/jobs/{id}/report"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    body
}

#[test]
fn served_report_is_byte_identical_to_an_offline_run() {
    // stride 24 over the 48-workload suite → a 2-workload plan.
    let h = start(20_000, 24, 2, ServeConfig::default());

    let (status, body) = client::request(&h.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    // Submit all six configs across both workloads, explicitly.
    let (status, body) = submit(&h.addr, r#"{"workloads": [], "configs": []}"#);
    assert_eq!(status, 202, "{body}");
    let id = job_id(&body);
    wait_done(&h.addr, id);
    let served = fetch_report(&h.addr, id);

    // The offline twin: same knobs, fresh session, same plan.
    let offline_session = SessionBuilder::new()
        .instructions(20_000)
        .stride(24)
        .threads(2)
        .build()
        .unwrap();
    let workloads = offline_session.workloads();
    assert_eq!(workloads.len(), 2, "expected a 2-workload plan");
    let plan = ExperimentPlan::from_spec(&PlanSpec::default(), &workloads).unwrap();
    let results = offline_session.run(&plan).unwrap();
    let offline = build_plan_report(&offline_session, &results).to_json();

    assert_eq!(
        served, offline,
        "served and offline reports must match byte-for-byte"
    );

    // The job resource carries the wall-clock the report deliberately
    // omits, and the resolved plan.
    let (_, job_body) = client::request(&h.addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
    let job = Json::parse(&job_body).unwrap();
    assert!(job.get("run_seconds").and_then(Json::as_f64).unwrap() > 0.0);
    let plan_json = job.get("plan").unwrap();
    assert_eq!(
        plan_json
            .get("workloads")
            .and_then(Json::as_arr)
            .unwrap()
            .len(),
        2
    );
    assert_eq!(
        plan_json
            .get("configs")
            .and_then(Json::as_arr)
            .unwrap()
            .len(),
        6
    );

    // Bad submissions are typed 400s and never occupy the queue.
    let (status, body) = submit(&h.addr, r#"{"workloads": ["nope"]}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown workload"), "{body}");
    let (status, _) = submit(&h.addr, "not json");
    assert_eq!(status, 400);

    // An unknown prefetcher label 400s before queueing, and the error
    // names the valid mechanisms.
    let queue_before = h.ctx.job_counts().iter().sum::<u64>();
    let (status, body) = submit(&h.addr, r#"{"prefetchers": ["markov"]}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unresolvable plan"), "{body}");
    assert!(body.contains("markov"), "{body}");
    assert!(body.contains("shadow_btb"), "{body}");
    assert_eq!(h.ctx.job_counts().iter().sum::<u64>(), queue_before);

    // A known prefetcher label resolves to its zoo configuration.
    let (status, body) = submit(&h.addr, r#"{"prefetchers": ["mana"]}"#);
    assert_eq!(status, 202, "{body}");
    let id = job_id(&body);
    wait_done(&h.addr, id);
    let (_, job_body) = client::request(&h.addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
    let job = Json::parse(&job_body).unwrap();
    let configs = job.get("plan").unwrap().get("configs").unwrap();
    assert_eq!(configs.render(), r#"["ftq24_mana"]"#);

    // Static admission: a custom insertion anchored at an address no
    // workload ever executes is provably dead (D001) — rejected with the
    // rule ids before it can occupy queue capacity.
    let jobs_before = h.ctx.job_counts().iter().sum::<u64>();
    let (status, body) = submit(
        &h.addr,
        r#"{"configs": ["ftq2_fdp"],
            "insertions": [{"anchor": 3735879680, "target": 64, "distance": 48}]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("D001"), "{body}");
    assert!(body.contains("static admission"), "{body}");
    assert_eq!(h.ctx.job_counts().iter().sum::<u64>(), jobs_before);

    let (status, _) = client::request(&h.addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 202);
    h.server.join().unwrap().unwrap();
}

#[test]
fn full_queue_sheds_load_with_429_and_still_finishes_accepted_jobs() {
    // One worker and a 2-deep queue: a burst of 8 submissions must
    // overflow (at most 1 running + 2 queued can be admitted during the
    // first job's runtime).
    let h = start(
        20_000,
        48,
        2,
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        },
    );

    let submitters: Vec<_> = (0..4)
        .map(|_| {
            let addr = h.addr.clone();
            thread::spawn(move || {
                let mut outcomes = Vec::new();
                for _ in 0..2 {
                    let (status, body) = submit(&addr, "{}");
                    outcomes.push((status, body));
                }
                outcomes
            })
        })
        .collect();
    let outcomes: Vec<(u16, String)> = submitters
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();

    let accepted: Vec<u64> = outcomes
        .iter()
        .filter(|(s, _)| *s == 202)
        .map(|(_, b)| job_id(b))
        .collect();
    let rejected = outcomes.iter().filter(|(s, _)| *s == 429).count();
    assert_eq!(accepted.len() + rejected, 8, "{outcomes:?}");
    assert!(!accepted.is_empty(), "{outcomes:?}");
    assert!(rejected >= 1, "queue never overflowed: {outcomes:?}");

    // Every accepted job must reach `done`, and — same session, same
    // plan — every report must be byte-identical.
    let reports: Vec<String> = accepted
        .iter()
        .map(|&id| {
            wait_done(&h.addr, id);
            fetch_report(&h.addr, id)
        })
        .collect();
    for r in &reports[1..] {
        assert_eq!(r, &reports[0]);
    }

    // /metrics agrees with what we observed.
    let (status, body) = client::request(&h.addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let metrics = Json::parse(&body).unwrap();
    assert_eq!(
        metrics.get("jobs_done").and_then(Json::as_u64),
        Some(accepted.len() as u64)
    );
    assert_eq!(
        metrics.get("jobs_rejected").and_then(Json::as_u64),
        Some(rejected as u64)
    );
    assert_eq!(
        metrics.get("queue_capacity").and_then(Json::as_u64),
        Some(2)
    );
    assert!(
        metrics
            .get("session_sim_runs")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    let (status, _) = client::request(&h.addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 202);
    h.server.join().unwrap().unwrap();
    assert_eq!(h.ctx.rejected(), rejected as u64);
}

#[test]
fn shutdown_drains_accepted_jobs_and_rejects_new_ones() {
    let h = start(
        20_000,
        48,
        2,
        ServeConfig {
            workers: 1,
            queue_depth: 4,
            ..ServeConfig::default()
        },
    );

    // Two full-plan jobs: the second is still queued when we pull the
    // plug, so the drain has real work to finish.
    let (s1, b1) = submit(&h.addr, "{}");
    let (s2, b2) = submit(&h.addr, "{}");
    assert_eq!((s1, s2), (202, 202), "{b1} / {b2}");
    let (id1, id2) = (job_id(&b1), job_id(&b2));

    let (status, _) = client::request(&h.addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 202);

    // While draining: health stays up and reports draining, new jobs
    // are refused with 503.
    let (status, body) = client::request(&h.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\":true"), "{body}");
    let (status, body) = submit(&h.addr, "{}");
    assert_eq!(status, 503, "{body}");

    // The accept loop exits cleanly once the queue drains...
    h.server.join().unwrap().unwrap();
    // ...and both accepted jobs made it to `done`, not `failed`.
    assert_eq!(h.ctx.job_state(id1), Some(JobState::Done));
    assert_eq!(h.ctx.job_state(id2), Some(JobState::Done));
    assert!(h.ctx.is_draining());
    let [queued, running, done, failed] = h.ctx.job_counts();
    assert_eq!((queued, running, failed), (0, 0, 0));
    assert_eq!(done, 2);
}

#[test]
fn keep_alive_connection_serves_many_requests_with_identical_bytes() {
    // stride 48 → a 1-workload plan; 3 jobs is still cheap.
    let h = start(20_000, 48, 2, ServeConfig::default());

    // Three submissions on ONE socket: distinct jobs, one connection.
    let mut conn = client::Connection::connect(&h.addr).unwrap();
    let mut ids = Vec::new();
    for _ in 0..3 {
        let (status, body) = conn
            .request("POST", "/v1/jobs", Some(r#"{"configs": ["ftq2_fdp"]}"#))
            .unwrap();
        assert_eq!(status, 202, "{body}");
        ids.push(job_id(&body));
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        3,
        "keep-alive submissions must yield distinct jobs"
    );

    // Poll each to done over the same socket, then compare raw report
    // bytes against a fresh connection per request: the response a
    // kept-alive client sees must be identical to a fresh client's.
    for &id in &ids {
        let started = Instant::now();
        loop {
            let (status, body) = conn
                .request("GET", &format!("/v1/jobs/{id}"), None)
                .unwrap();
            assert_eq!(status, 200, "{body}");
            let state = Json::parse(&body)
                .unwrap()
                .get("state")
                .and_then(|s| s.as_str().map(String::from))
                .unwrap();
            match state.as_str() {
                "done" => break,
                "failed" => panic!("job {id} failed: {body}"),
                _ => {
                    assert!(started.elapsed() < DEADLINE);
                    thread::sleep(POLL);
                }
            }
        }
        let path = format!("/v1/jobs/{id}/report");
        let kept = conn.request_raw("GET", &path, None).unwrap();
        let fresh = client::Connection::connect(&h.addr)
            .unwrap()
            .request_raw("GET", &path, None)
            .unwrap();
        assert_eq!(
            kept, fresh,
            "kept-alive and fresh-connection responses must be byte-identical"
        );
    }

    // The served report is byte-identical to the offline twin.
    let served_body = {
        let raw = conn
            .request_raw("GET", &format!("/v1/jobs/{}/report", ids[0]), None)
            .unwrap();
        let text = String::from_utf8(raw).unwrap();
        text.split_once("\r\n\r\n").unwrap().1.to_string()
    };
    let offline_session = SessionBuilder::new()
        .instructions(20_000)
        .stride(48)
        .threads(2)
        .build()
        .unwrap();
    let workloads = offline_session.workloads();
    let spec = PlanSpec {
        configs: vec!["ftq2_fdp".to_string()],
        ..PlanSpec::default()
    };
    let plan = ExperimentPlan::from_spec(&spec, &workloads).unwrap();
    let results = offline_session.run(&plan).unwrap();
    let offline = build_plan_report(&offline_session, &results).to_json();
    assert_eq!(served_body, offline, "served report drifted from offline");

    // The requests-per-connection histogram only fills at close; what
    // must hold mid-flight is that the gauges see this socket.
    let (status, body) = conn.request("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let metrics = Json::parse(&body).unwrap();
    assert!(metrics.get("conns_open").and_then(Json::as_u64).unwrap() >= 1);
    assert!(
        metrics
            .get("conns_keepalive")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );

    let (status, _) = client::request(&h.addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 202);
    h.server.join().unwrap().unwrap();
}

#[test]
fn pipelined_submissions_in_one_write_are_both_answered() {
    // Regression for the pipelined-byte-loss bug: two POSTs written in a
    // single burst must both be parsed and answered — the old
    // `read_request` destroyed the second request's bytes.
    let h = start(20_000, 48, 2, ServeConfig::default());

    let body = r#"{"configs": ["ftq2_fdp"]}"#;
    let one = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut conn = client::Connection::connect(&h.addr).unwrap();
    conn.send_raw(format!("{one}{one}").as_bytes()).unwrap();

    let mut ids = Vec::new();
    for _ in 0..2 {
        let raw = conn.read_framed_response().unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 202"), "{text}");
        ids.push(job_id(text.split_once("\r\n\r\n").unwrap().1));
    }
    assert_ne!(
        ids[0], ids[1],
        "pipelined submissions collapsed into one job"
    );

    for &id in &ids {
        wait_done(&h.addr, id);
    }
    let (status, _) = client::request(&h.addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 202);
    h.server.join().unwrap().unwrap();
}

#[test]
fn connection_table_is_bounded_and_sheds_with_503() {
    use std::io::{Read, Write};

    let h = start(
        20_000,
        48,
        2,
        ServeConfig {
            max_conns: 8,
            ..ServeConfig::default()
        },
    );

    // Fill the table and then some: 8 held + 50 shed.
    let mut held = Vec::new();
    for _ in 0..58 {
        let s = std::net::TcpStream::connect(&h.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        held.push(s);
    }

    let started = Instant::now();
    while h.ctx.conns_shed() < 50 && started.elapsed() < Duration::from_secs(10) {
        thread::sleep(POLL);
    }
    assert_eq!(h.ctx.conns_shed(), 50, "exactly the overflow should shed");

    let mut shed = 0;
    let mut quiet = 0;
    for s in &mut held {
        let mut buf = [0u8; 512];
        match s.read(&mut buf) {
            Ok(n) if n > 0 => {
                let text = String::from_utf8_lossy(&buf[..n]);
                assert!(text.starts_with("HTTP/1.1 503"), "{text}");
                assert!(text.contains("Connection: close"), "{text}");
                shed += 1;
            }
            // EOF or read timeout: an accepted socket the server is
            // patiently holding.
            _ => quiet += 1,
        }
    }
    assert_eq!((shed, quiet), (50, 8));

    // A held (accepted) connection is still fully serviceable.
    let mut accepted = held.remove(0);
    accepted
        .write_all(b"POST /v1/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    accepted
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        match accepted.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 202"), "{text}");

    drop(held);
    h.server.join().unwrap().unwrap();
}

#[test]
fn drain_exits_cleanly_with_idle_kept_alive_connections_open() {
    let h = start(20_000, 48, 2, ServeConfig::default());

    // Park two kept-alive connections (each has served a request, so
    // drain sees genuine idle keep-alive state, not a fresh socket).
    let mut parked = Vec::new();
    for _ in 0..2 {
        let mut conn = client::Connection::connect(&h.addr).unwrap();
        let (status, _) = conn.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        parked.push(conn);
    }

    let (status, _) = client::request(&h.addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 202);

    // The parked clients never hang up; the server must not wait on
    // them. Join on a watchdog thread so a regression fails fast
    // instead of hanging the suite.
    let server = h.server;
    let (tx, rx) = std::sync::mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.join().unwrap());
    });
    let exit = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("drain must not wait for idle kept-alive connections");
    exit.unwrap();
    assert!(h.ctx.is_draining());
    drop(parked);
}

#[test]
fn stalled_mid_request_times_out_with_408() {
    use std::io::{Read, Write};

    let h = start(
        20_000,
        48,
        2,
        ServeConfig {
            read_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );

    // Send half a request head and stall.
    let mut s = std::net::TcpStream::connect(&h.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTT").unwrap();

    let mut response = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    assert!(h.ctx.conn_timeouts() >= 1);

    let (status, _) = client::request(&h.addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 202);
    h.server.join().unwrap().unwrap();
}
