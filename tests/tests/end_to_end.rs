//! End-to-end integration tests spanning every crate: workload generation →
//! simulation → AsmDB pipeline → re-simulation.

use swip_asmdb::{Asmdb, AsmdbConfig};
use swip_core::{SimConfig, Simulator};
use swip_trace::Trace;
use swip_workloads::{cvp1_suite, generate, Family};

const INSTRS: u64 = 60_000;

fn suite() -> Vec<swip_workloads::WorkloadSpec> {
    cvp1_suite(INSTRS)
}

fn asmdb() -> Asmdb {
    Asmdb::new(AsmdbConfig {
        min_misses: 2,
        ..AsmdbConfig::default()
    })
}

#[test]
fn server_workload_runs_all_six_configurations() {
    let spec = &suite()[16]; // secret_srv12
    let trace = generate(spec);
    let cons = SimConfig::conservative();
    let fdp = SimConfig::sunny_cove_like();
    let out = asmdb().run(&trace, &cons);

    let base = Simulator::new(cons.clone()).run(&trace);
    let a_cons = Simulator::new(cons.clone()).run(&out.rewritten);
    let a_cons_noov = Simulator::new(cons).run_with_hints(&trace, &out.hints);
    let fdp24 = Simulator::new(fdp.clone()).run(&trace);
    let a_fdp = Simulator::new(fdp.clone()).run(&out.rewritten);
    let a_fdp_noov = Simulator::new(fdp).run_with_hints(&trace, &out.hints);

    for r in [&base, &a_cons, &a_cons_noov, &fdp24, &a_fdp, &a_fdp_noov] {
        assert!(r.completed, "{} did not complete", r.workload);
        assert!(r.effective_ipc > 0.0);
    }
    // The paper's headline orderings.
    assert!(
        fdp24.effective_ipc > base.effective_ipc,
        "aggressive FDP must beat the conservative front-end"
    );
    assert!(
        a_fdp_noov.effective_ipc >= a_fdp.effective_ipc,
        "removing insertion overhead can only help"
    );
    assert!(
        a_cons_noov.effective_ipc >= a_cons.effective_ipc * 0.99,
        "no-overhead AsmDB should not be slower than AsmDB with overhead"
    );
}

#[test]
fn family_mpki_ordering_holds() {
    let specs = suite();
    let sim = Simulator::new(SimConfig::sunny_cove_like());
    let srv = sim.run(&generate(&specs[16]));
    let crypto = sim.run(&generate(&specs[1]));
    assert!(
        srv.l1i_mpki > crypto.l1i_mpki,
        "server ({:.1}) must out-miss crypto ({:.1})",
        srv.l1i_mpki,
        crypto.l1i_mpki
    );
    assert!(
        crypto.l1i_mpki < 15.0,
        "crypto MPKI too high: {:.1}",
        crypto.l1i_mpki
    );
    assert!(
        srv.l1i_mpki > 5.0,
        "server MPKI too low: {:.1}",
        srv.l1i_mpki
    );
}

#[test]
fn simulation_is_deterministic() {
    let spec = &suite()[5];
    let trace = generate(spec);
    let a = Simulator::new(SimConfig::sunny_cove_like()).run(&trace);
    let b = Simulator::new(SimConfig::sunny_cove_like()).run(&trace);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.l1i.demand.misses(), b.l1i.demand.misses());
}

#[test]
fn rewritten_traces_simulate_identical_useful_work() {
    let spec = &suite()[20];
    let trace = generate(spec);
    let cons = SimConfig::conservative();
    let out = asmdb().run(&trace, &cons);
    let r = Simulator::new(cons).run(&out.rewritten);
    assert!(r.completed);
    assert_eq!(
        r.useful_instructions(),
        trace.len() as u64,
        "prefetch-stripped instruction count must match the original trace"
    );
}

#[test]
fn trace_round_trips_through_disk() {
    let spec = &suite()[0];
    let trace = generate(spec);
    let path = std::env::temp_dir().join("swip_fe_roundtrip.swip");
    let file = std::fs::File::create(&path).unwrap();
    trace.write_to(file).unwrap();
    let back = Trace::read_from(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back, trace);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn deeper_ftq_never_hurts_on_the_suite_sample() {
    for idx in [4usize, 16, 30] {
        let spec = &suite()[idx];
        let trace = generate(spec);
        let shallow = Simulator::new(SimConfig::conservative()).run(&trace);
        let deep = Simulator::new(SimConfig::sunny_cove_like()).run(&trace);
        assert!(
            deep.effective_ipc >= shallow.effective_ipc * 0.98,
            "{}: deep {:.3} vs shallow {:.3}",
            spec.name,
            deep.effective_ipc,
            shallow.effective_ipc
        );
    }
}

#[test]
fn scenario_cycle_accounting_is_exhaustive_on_real_workloads() {
    let spec = &suite()[10];
    let trace = generate(spec);
    for cfg in [SimConfig::conservative(), SimConfig::sunny_cove_like()] {
        let r = Simulator::new(cfg).run(&trace);
        let f = &r.frontend;
        assert_eq!(
            f.cycles.get(),
            f.s1_cycles.get() + f.s2_cycles.get() + f.s3_cycles.get() + f.empty_cycles.get(),
            "taxonomy must classify every cycle"
        );
        assert_eq!(
            f.head_stall_cycles.get(),
            f.s2_cycles.get() + f.s3_cycles.get(),
            "head stalls are exactly the scenario-2 and scenario-3 cycles"
        );
    }
}

#[test]
fn paper_consistency_deeper_ftq_issues_fewer_line_requests() {
    // §V.B: "the 24-entry FDP experiences ~14% less L1-I accesses than the
    // 2-entry FDP on average" — direction must hold (magnitude varies).
    let spec = &suite()[16];
    let trace = generate(spec);
    let shallow = Simulator::new(SimConfig::conservative()).run(&trace);
    let deep = Simulator::new(SimConfig::sunny_cove_like()).run(&trace);
    assert!(
        deep.frontend.line_requests.get() < shallow.frontend.line_requests.get(),
        "deep {} vs shallow {}",
        deep.frontend.line_requests.get(),
        shallow.frontend.line_requests.get()
    );
    assert!(deep.frontend.alias_fraction() > shallow.frontend.alias_fraction());
}

#[test]
fn family_composition_of_the_suite() {
    let specs = suite();
    assert_eq!(specs.len(), 48);
    let srv = specs.iter().filter(|s| s.family == Family::Server).count();
    assert_eq!(srv, 33);
}
