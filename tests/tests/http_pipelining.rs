//! Byte-split property test for the HTTP request reader: a pipelined
//! two-request corpus must parse identically no matter how the bytes
//! are fragmented across socket reads.
//!
//! This is the regression net for the PR-8 connection-lifecycle fixes:
//! the old reader destroyed bytes past `Content-Length` (losing the
//! second pipelined request) and rescanned the whole head on every
//! read. Here the corpus is cut at every single split point and at
//! every pair of split points, and both requests must come out of
//! [`swip_serve::read_request`] byte-for-byte intact each time.

use std::io::{self, Read};

use swip_serve::{read_request, Request};

/// A reader that yields pre-cut fragments one per `read` call,
/// simulating arbitrary TCP segmentation.
struct Fragmented {
    fragments: Vec<Vec<u8>>,
    next: usize,
}

impl Fragmented {
    fn new(fragments: Vec<Vec<u8>>) -> Self {
        Fragmented { fragments, next: 0 }
    }
}

impl Read for Fragmented {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        while self.next < self.fragments.len() && self.fragments[self.next].is_empty() {
            self.next += 1;
        }
        if self.next >= self.fragments.len() {
            return Ok(0); // EOF
        }
        let fragment = &mut self.fragments[self.next];
        let n = fragment.len().min(buf.len());
        buf[..n].copy_from_slice(&fragment[..n]);
        fragment.drain(..n);
        if fragment.is_empty() {
            self.next += 1;
        }
        Ok(n)
    }
}

/// The pipelined corpus: two POSTs back to back in one byte stream,
/// with bodies that contain `\r\n\r\n`-free JSON so every split lands
/// either mid-head, mid-body, or on the request boundary.
fn corpus() -> Vec<u8> {
    let b1 = r#"{"configs": ["ftq2_fdp"], "tag": "first"}"#;
    let b2 = r#"{"configs": ["ftq24_mana"], "tag": "second"}"#;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(
        format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: a\r\nContent-Length: {}\r\n\r\n{b1}",
            b1.len()
        )
        .as_bytes(),
    );
    bytes.extend_from_slice(
        format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{b2}",
            b2.len()
        )
        .as_bytes(),
    );
    bytes
}

/// Reads both pipelined requests through `read_request` with a shared
/// carryover buffer, the way the server's connection loop does.
fn parse_both(fragments: Vec<Vec<u8>>) -> (Request, Request) {
    let mut reader = Fragmented::new(fragments);
    let mut carry = Vec::new();
    let first = read_request(&mut reader, &mut carry).expect("first request must parse");
    let second = read_request(&mut reader, &mut carry).expect("second request must parse");
    assert!(
        carry.is_empty(),
        "no bytes may linger after the last request"
    );
    (first, second)
}

fn assert_matches_reference(tag: &str, got: &(Request, Request), want: &(Request, Request)) {
    for (which, (g, w)) in [(&got.0, &want.0), (&got.1, &want.1)].iter().enumerate() {
        assert_eq!(g.method, w.method, "{tag}: request {which} method");
        assert_eq!(g.path, w.path, "{tag}: request {which} path");
        assert_eq!(g.version, w.version, "{tag}: request {which} version");
        assert_eq!(g.headers, w.headers, "{tag}: request {which} headers");
        assert_eq!(g.body, w.body, "{tag}: request {which} body");
    }
}

#[test]
fn every_single_split_point_parses_identically() {
    let bytes = corpus();
    let reference = parse_both(vec![bytes.clone()]);
    for i in 0..=bytes.len() {
        let got = parse_both(vec![bytes[..i].to_vec(), bytes[i..].to_vec()]);
        assert_matches_reference(&format!("split at {i}"), &got, &reference);
    }
}

#[test]
fn every_pair_of_split_points_parses_identically() {
    let bytes = corpus();
    let reference = parse_both(vec![bytes.clone()]);
    for i in 0..=bytes.len() {
        for j in i..=bytes.len() {
            let got = parse_both(vec![
                bytes[..i].to_vec(),
                bytes[i..j].to_vec(),
                bytes[j..].to_vec(),
            ]);
            assert_matches_reference(&format!("splits at {i},{j}"), &got, &reference);
        }
    }
}

#[test]
fn single_byte_trickle_parses_identically() {
    let bytes = corpus();
    let reference = parse_both(vec![bytes.clone()]);
    let got = parse_both(bytes.iter().map(|&b| vec![b]).collect());
    assert_matches_reference("one byte per read", &got, &reference);
}
