//! Proof that the cache hot path is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; the test
//! warms a cache, then drives `Cache::access` and `Cache::fill`
//! (including evictions and the prefetched-bit bookkeeping) and asserts
//! the heap counter did not move. This is the enforcement half of the
//! flat-layout refactor: the set slice is borrowed in place and victim
//! selection never clones or collects.
//!
//! The workspace's library crates `#![forbid(unsafe_code)]`; this test
//! binary is its own crate root, so the `GlobalAlloc` impl (inherently
//! `unsafe`) lives here without weakening that guarantee.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use swip_branch::{BranchConfig, BranchUnit};
use swip_cache::{
    Cache, CacheConfig, HierarchyConfig, MemoryHierarchy, ReplacementKind, Tlb, TlbConfig,
};
use swip_frontend::{FtqStats, InstructionPrefetcher, ManaPrefetcher, ShadowBtbPrefetcher};
use swip_types::{Addr, BranchKind};

/// Counts every heap allocation made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn cache_access_and_fill_are_allocation_free_in_steady_state() {
    for kind in [ReplacementKind::Lru, ReplacementKind::Srrip] {
        // Construction allocates (the flat way array) — that's fine and
        // happens once per cache, outside the measured region.
        let mut cache = Cache::new(CacheConfig::with_capacity_kib("L1I", 32, 8, 4, 8, kind));
        for n in 0..2048u64 {
            cache.fill(Addr::new(n * 64).line(), n.is_multiple_of(5));
        }

        let before = allocations();
        let mut hits = 0u64;
        let mut stream = 1u64 << 32; // disjoint from the hot set below
        for round in 0..4u64 {
            for n in 0..4096u64 {
                // Alternate a small resident hot set (hits) with a
                // distant stream (misses + fills), so both outcomes and
                // steady-state evictions are exercised.
                let line = if n.is_multiple_of(2) {
                    Addr::new((n % 64) * 64).line()
                } else {
                    stream += 64;
                    Addr::new(stream + round).line()
                };
                if cache.access(line, n.is_multiple_of(7)) {
                    hits += 1;
                } else {
                    // Misses fill, forcing steady-state evictions through
                    // the in-place victim-selection path.
                    cache.fill(line, n.is_multiple_of(3));
                }
            }
        }
        let after = allocations();
        assert!(hits > 0, "workload never hit; the test lost its meaning");
        assert_eq!(
            after - before,
            0,
            "steady-state access/fill allocated ({kind:?})"
        );
    }
}

#[test]
fn zoo_prefetcher_hooks_are_allocation_free_in_steady_state() {
    // DESIGN.md §16: per-cycle trait hooks must not allocate in steady
    // state. Both zoo mechanisms pre-allocate their tables at
    // construction; this pins that the hooks stay on the fixed storage.
    let zoo: Vec<(&str, Box<dyn InstructionPrefetcher>)> = vec![
        ("mana", Box::new(ManaPrefetcher::new())),
        ("shadow_btb", Box::new(ShadowBtbPrefetcher::new())),
    ];
    for (label, mut p) in zoo {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny());
        let mut branch = BranchUnit::new(BranchConfig::default());
        let mut stats = FtqStats::default();
        let drive = |p: &mut dyn InstructionPrefetcher,
                     mem: &mut MemoryHierarchy,
                     branch: &mut BranchUnit,
                     stats: &mut FtqStats,
                     cycles: std::ops::Range<u64>| {
            for now in cycles {
                let pc = Addr::new((now % 16) * 64);
                p.train_on_fetch(pc, now, mem, stats);
                if now.is_multiple_of(3) {
                    let target = Addr::new(((now + 5) % 16) * 64);
                    p.train_on_btb_miss(pc, BranchKind::UncondDirect, target, now);
                }
                p.issue_prefetch(pc.line(), now, mem, branch, stats);
                p.tick(now, mem, stats);
            }
        };
        // Warm-up: fills the tables, settles the hierarchy and BTB.
        drive(p.as_mut(), &mut mem, &mut branch, &mut stats, 0..2048);
        let before = allocations();
        drive(p.as_mut(), &mut mem, &mut branch, &mut stats, 2048..8192);
        assert_eq!(
            allocations() - before,
            0,
            "{label} hooks allocated in steady state"
        );
        assert!(
            p.snapshot().issued > 0,
            "{label} never issued; the test lost its meaning"
        );
    }
}

#[test]
fn tlb_access_is_allocation_free_in_steady_state() {
    let mut tlb = Tlb::new(TlbConfig::default());
    for p in 0..256u64 {
        tlb.access(Addr::new(p * 4096), 0);
    }
    let before = allocations();
    for round in 0..4u64 {
        for p in 0..512u64 {
            tlb.access(Addr::new((round * 13 + p) * 4096), p);
        }
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state TLB access allocated"
    );
}
