//! Trait-conformance suite for every [`InstructionPrefetcher`]
//! implementation (DESIGN.md §16): a disabled mechanism issues nothing,
//! snapshot counters are monotone, and two identical runs replay
//! deterministically.

use std::collections::HashMap;
use std::sync::Arc;

use swip_branch::{BranchConfig, BranchUnit};
use swip_cache::{HierarchyConfig, MemoryHierarchy};
use swip_frontend::{
    AsmdbHintPrefetcher, FdpPrefetcher, FtqStats, HintTable, InstructionPrefetcher, ManaPrefetcher,
    PrefetcherSnapshot, PreloadConfig, PreloadPrefetcher, ShadowBtbPrefetcher,
};
use swip_types::{Addr, BranchKind};

/// Every implementation under test, by label, freshly constructed so runs
/// never share state.
fn zoo() -> Vec<(&'static str, Box<dyn InstructionPrefetcher>)> {
    let mut pc_hints: HashMap<Addr, Vec<Addr>> = HashMap::new();
    let mut line_hints: HashMap<u64, Vec<Addr>> = HashMap::new();
    for i in 0..16u64 {
        let pc = Addr::new(i * 64);
        let targets = vec![Addr::new((i + 7) * 64), Addr::new((i + 9) * 64)];
        pc_hints.insert(pc, targets.clone());
        line_hints.insert(pc.line().number(), targets);
    }
    vec![
        (
            "fdp",
            Box::new(FdpPrefetcher::new()) as Box<dyn InstructionPrefetcher>,
        ),
        (
            "asmdb",
            Box::new(AsmdbHintPrefetcher::new(Arc::new(HintTable::from_pc_map(
                &pc_hints,
            )))),
        ),
        (
            "preload",
            Box::new(PreloadPrefetcher::new(
                Arc::new(HintTable::from_line_map(&line_hints)),
                PreloadConfig::default(),
            )),
        ),
        ("mana", Box::new(ManaPrefetcher::new())),
        ("shadow_btb", Box::new(ShadowBtbPrefetcher::new())),
    ]
}

/// A deterministic stimulus that exercises all four hooks: a 16-line loop
/// (so MANA sees repeated successions and AsmDB/preload hit their
/// tables), periodic BTB misses (for shadow-branch capture), and enough
/// cycles to out-wait every metadata latency.
fn drive(
    p: &mut dyn InstructionPrefetcher,
    mem: &mut MemoryHierarchy,
    branch: &mut BranchUnit,
    stats: &mut FtqStats,
    cycles: std::ops::Range<u64>,
) {
    for now in cycles {
        let pc = Addr::new((now % 16) * 64);
        p.train_on_fetch(pc, now, mem, stats);
        if now % 3 == 0 {
            let target = Addr::new(((now + 5) % 16) * 64);
            p.train_on_btb_miss(pc, BranchKind::UncondDirect, target, now);
        }
        p.issue_prefetch(pc.line(), now, mem, branch, stats);
        p.tick(now, mem, stats);
    }
}

/// The observable side effects of one run: the snapshot plus the shared
/// FTQ counters the mechanisms fire.
fn observed(stats: &FtqStats, p: &dyn InstructionPrefetcher) -> (PrefetcherSnapshot, [u64; 4]) {
    (
        p.snapshot(),
        [
            stats.swpf_hinted.get(),
            stats.swpf_preloaded.get(),
            stats.preload_l1_hits.get(),
            stats.preload_metadata_requests.get(),
        ],
    )
}

#[test]
fn disabled_prefetchers_issue_nothing() {
    for (label, mut p) in zoo() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny());
        let mut branch = BranchUnit::new(BranchConfig::default());
        let mut stats = FtqStats::default();
        assert!(p.enabled(), "{label} must start enabled");
        p.set_enabled(false);
        assert!(!p.enabled(), "{label}");
        drive(p.as_mut(), &mut mem, &mut branch, &mut stats, 0..500);
        let (snap, counters) = observed(&stats, p.as_ref());
        assert_eq!(
            snap,
            PrefetcherSnapshot::default(),
            "{label} acted while disabled"
        );
        assert_eq!(
            counters, [0; 4],
            "{label} fired FTQ counters while disabled"
        );

        // Re-enabling makes the mechanism observable again (except FDP,
        // whose run-ahead lives in the FTQ itself, not this seam).
        p.set_enabled(true);
        drive(p.as_mut(), &mut mem, &mut branch, &mut stats, 500..1500);
        if label != "fdp" {
            let (snap, _) = observed(&stats, p.as_ref());
            assert!(
                snap.trained + snap.issued + snap.metadata_requests > 0,
                "{label} stayed inert after re-enable"
            );
        }
    }
}

#[test]
fn snapshot_counters_are_monotone() {
    for (label, mut p) in zoo() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny());
        let mut branch = BranchUnit::new(BranchConfig::default());
        let mut stats = FtqStats::default();
        let mut prev = p.snapshot();
        for chunk in 0..10u64 {
            drive(
                p.as_mut(),
                &mut mem,
                &mut branch,
                &mut stats,
                chunk * 100..(chunk + 1) * 100,
            );
            let snap = p.snapshot();
            assert!(snap.trained >= prev.trained, "{label} trained shrank");
            assert!(snap.issued >= prev.issued, "{label} issued shrank");
            assert!(
                snap.metadata_requests >= prev.metadata_requests,
                "{label} metadata_requests shrank"
            );
            prev = snap;
        }
    }
}

#[test]
fn two_identical_runs_replay_deterministically() {
    let run = |idx: usize| {
        let (label, mut p) = zoo().remove(idx);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny());
        let mut branch = BranchUnit::new(BranchConfig::default());
        let mut stats = FtqStats::default();
        drive(p.as_mut(), &mut mem, &mut branch, &mut stats, 0..2000);
        (label, observed(&stats, p.as_ref()))
    };
    for idx in 0..zoo().len() {
        let (label, a) = run(idx);
        let (_, b) = run(idx);
        assert_eq!(a, b, "{label} diverged across identical runs");
    }
}
