//! Integration tests for `swip-fleet` against real worker processes:
//! a sharded sweep must be byte-identical to a single-node offline run,
//! SIGKILLing a worker mid-sweep must not change the merged bytes, and
//! the merge itself must not care what order partials arrive in.

use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use swip_bench::{build_plan_report, ExperimentPlan, SessionBuilder};
use swip_fleet::{plan_order, run_plan, FleetConfig};
use swip_report::{merge_plan_reports, Json, PlanSpec};
use swip_serve::client;

const INSTRUCTIONS: u64 = 20_000;
const THREADS: usize = 2;

struct Worker {
    child: Arc<Mutex<Child>>,
    addr: String,
    // Keep the pipe alive so the worker never sees a closed stdout.
    _stdout: BufReader<ChildStdout>,
}

impl Worker {
    /// Spawns a real worker process on an ephemeral port and scrapes the
    /// `listening on ADDR` line, exactly like `scripts/check.sh` does.
    fn spawn(stride: usize) -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fleet_worker"))
            .args([
                INSTRUCTIONS.to_string(),
                stride.to_string(),
                THREADS.to_string(),
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn fleet_worker");
        let mut stdout = BufReader::new(child.stdout.take().expect("worker stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("worker addr line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected worker banner {line:?}"))
            .to_string();
        Worker {
            child: Arc::new(Mutex::new(child)),
            addr,
            _stdout: stdout,
        }
    }

    /// SIGKILL — no drain, no goodbye, exactly what a crashed machine
    /// looks like to the coordinator.
    fn kill(&self) {
        let mut child = self.child.lock().unwrap();
        let _ = child.kill();
        let _ = child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The single-node reference: same knobs, same plan, one process.
fn offline_report(stride: usize, spec: &PlanSpec) -> String {
    let session = SessionBuilder::new()
        .instructions(INSTRUCTIONS)
        .stride(stride)
        .threads(THREADS)
        .build()
        .unwrap();
    let plan = ExperimentPlan::from_spec(spec, &session.workloads()).unwrap();
    let results = session.run(&plan).unwrap();
    build_plan_report(&session, &results).to_json()
}

fn resolve_plan(stride: usize, spec: &PlanSpec) -> ExperimentPlan {
    let session = SessionBuilder::new()
        .instructions(INSTRUCTIONS)
        .stride(stride)
        .threads(1)
        .build()
        .unwrap();
    ExperimentPlan::from_spec(spec, &session.workloads()).unwrap()
}

#[test]
fn two_worker_sweep_is_byte_identical_to_offline() {
    // stride 24 → 2 workloads × the paper six = 12 shards.
    let stride = 24;
    let spec = PlanSpec::default();
    let (w1, w2) = (Worker::spawn(stride), Worker::spawn(stride));

    let plan = resolve_plan(stride, &spec);
    assert_eq!(plan.job_count(), 12);
    let config = FleetConfig {
        workers: vec![w1.addr.clone(), w2.addr.clone()],
        ..FleetConfig::default()
    };
    let run = run_plan(&plan, &config).expect("fleet run");

    assert_eq!(run.report.to_json(), offline_report(stride, &spec));
    assert_eq!(run.stats.shards, 12);
    assert_eq!(run.stats.redispatches, 0);
    assert!(run.stats.workers.iter().all(|w| !w.dead));
    assert_eq!(
        run.stats
            .workers
            .iter()
            .map(|w| w.shards_done)
            .sum::<usize>(),
        12,
        "{:?}",
        run.stats
    );
}

#[test]
fn sigkill_mid_sweep_redispatches_and_matches_offline() {
    // stride 16 → 3 workloads × the paper six = 18 shards: enough work
    // that the kill below lands with most of the sweep outstanding.
    let stride = 16;
    let spec = PlanSpec::default();
    let (w1, w2) = (Worker::spawn(stride), Worker::spawn(stride));

    // Kill worker 2 as soon as it has finished its first shard — the
    // sweep is then provably mid-flight (at most a few of 18 done).
    let victim_child = Arc::clone(&w2.child);
    let victim_addr = w2.addr.clone();
    let killer = thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Ok((200, body)) = client::request(&victim_addr, "GET", "/metrics", None) {
                let done = Json::parse(&body)
                    .ok()
                    .and_then(|m| m.get("jobs_done").and_then(Json::as_u64))
                    .unwrap_or(0);
                if done >= 1 {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "worker 2 never finished a shard");
            thread::sleep(Duration::from_millis(5));
        }
        let mut child = victim_child.lock().unwrap();
        let _ = child.kill();
        let _ = child.wait();
    });

    let plan = resolve_plan(stride, &spec);
    assert_eq!(plan.job_count(), 18);
    let config = FleetConfig {
        workers: vec![w1.addr.clone(), w2.addr.clone()],
        ..FleetConfig::default()
    };
    let run = run_plan(&plan, &config).expect("fleet run must survive the kill");
    killer.join().unwrap();

    let offline = offline_report(stride, &spec);
    assert_eq!(run.report.to_json(), offline);
    assert!(
        run.stats.workers.iter().any(|w| w.dead),
        "the killed worker was never declared dead: {:?}",
        run.stats
    );
    assert!(
        run.stats.redispatches >= 1,
        "no shard was re-dispatched: {:?}",
        run.stats
    );

    // A second sweep with the dead address still configured: the
    // registration probe drops it and the survivor carries the plan.
    let run = run_plan(&plan, &config).expect("fleet run with a dead address");
    assert_eq!(run.report.to_json(), offline);
    assert_eq!(run.stats.workers.len(), 1, "{:?}", run.stats);
    assert_eq!(run.stats.workers[0].addr, w1.addr);
}

#[test]
fn merge_is_independent_of_arrival_order() {
    // Build every single-cell partial the way a worker would (same
    // session knobs, single-cell plan, plan report), then merge them in
    // hostile orders: the bytes must always equal the full-plan report.
    let stride = 24;
    let session = SessionBuilder::new()
        .instructions(INSTRUCTIONS)
        .stride(stride)
        .threads(THREADS)
        .build()
        .unwrap();
    let full_plan = ExperimentPlan::from_spec(&PlanSpec::default(), &session.workloads()).unwrap();
    let results = session.run(&full_plan).unwrap();
    let reference = build_plan_report(&session, &results).to_json();

    let mut partials = Vec::new();
    for (workload, config) in full_plan.cells() {
        let spec = PlanSpec {
            workloads: vec![workload],
            configs: vec![config],
            insertions: Vec::new(),
            prefetchers: Vec::new(),
        };
        let plan = ExperimentPlan::from_spec(&spec, &session.workloads()).unwrap();
        let results = session.run(&plan).unwrap();
        partials.push(build_plan_report(&session, &results));
    }
    assert_eq!(partials.len(), 12);

    let order = plan_order(&full_plan);
    // Plan order itself, fully reversed, a mid-stream rotation, and an
    // even/odd interleave — every arrival order must merge identically.
    let mut shuffles: Vec<Vec<usize>> = vec![
        (0..partials.len()).collect(),
        (0..partials.len()).rev().collect(),
        (0..partials.len())
            .map(|i| (i + 5) % partials.len())
            .collect(),
    ];
    let mut interleaved: Vec<usize> = (0..partials.len()).step_by(2).collect();
    interleaved.extend((1..partials.len()).step_by(2));
    shuffles.push(interleaved);

    for shuffle in shuffles {
        let arrived: Vec<_> = shuffle.iter().map(|&i| partials[i].clone()).collect();
        let merged = merge_plan_reports(&order, &arrived).expect("merge");
        assert_eq!(
            merged.to_json(),
            reference,
            "merge diverged for arrival order {shuffle:?}"
        );
    }
}
