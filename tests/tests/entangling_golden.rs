//! Golden counters for the entangling-prefetcher configuration.
//!
//! The hot-path flattening of cache sets must not change replacement
//! order or prefetch accounting in any observable way. The entangling
//! prefetcher is the most sensitive client: its learned destination
//! pairs depend on the exact sequence of L1I misses, so a single
//! reordered eviction cascades into different `useful_prefetches`
//! counts. These tests pin the exact counter values produced by the
//! pre-flattening implementation on a deterministic workload.

use swip_cache::EntanglingConfig;
use swip_core::{SimConfig, SimReport, Simulator};
use swip_workloads::{cvp1_suite, generate};

/// Deterministic entangling run: first CVP-1 workload (`public_srv_60`),
/// 20k instructions, `sunny_cove_like` front-end, default entangling
/// prefetcher, optionally with the next-line prefetcher stacked on top.
fn entangling_report(next_line: bool) -> (String, SimReport) {
    let spec = cvp1_suite(20_000).into_iter().next().expect("suite");
    let trace = generate(&spec);
    let mut cfg = SimConfig::sunny_cove_like();
    cfg.memory.l1i_entangling = Some(EntanglingConfig::default());
    cfg.memory.l1i_next_line_prefetch = next_line;
    let report = Simulator::new(cfg).run(&trace);
    (spec.name.clone(), report)
}

#[test]
fn entangling_l1i_counters_are_pinned() {
    let (name, r) = entangling_report(false);
    assert!(r.completed, "{name} must run to completion");
    assert_eq!(name, "public_srv_60");
    // Pinned against the pre-flattening implementation (PR 5 baseline).
    // Any change here means the flat layout altered replacement order.
    assert_eq!(r.cycles, 96_297, "cycles");
    assert_eq!(r.l1i.evictions.get(), 56, "l1i evictions");
    assert_eq!(r.l1i.useful_prefetches.get(), 1, "l1i useful prefetches");
    assert_eq!(r.l1i.demand.hits(), 1_517, "l1i demand hits");
    assert_eq!(r.l1i.demand.misses(), 514, "l1i demand misses");
    assert_eq!(r.l1i.prefetch.hits(), 1_459, "l1i prefetch hits");
    assert_eq!(r.l1i.prefetch.misses(), 1, "l1i prefetch misses");
}

#[test]
fn entangling_with_next_line_counters_are_pinned() {
    // Stacking the next-line prefetcher multiplies prefetch-driven fills,
    // so this run exercises the prefetched-bit bookkeeping (folded into
    // `Way` by the flattening) far harder than entangling alone.
    let (name, r) = entangling_report(true);
    assert!(r.completed, "{name} must run to completion");
    assert_eq!(r.cycles, 74_052, "cycles");
    assert_eq!(r.l1i.evictions.get(), 100, "l1i evictions");
    assert_eq!(r.l1i.useful_prefetches.get(), 214, "l1i useful prefetches");
    assert_eq!(r.l1i.demand.hits(), 1_628, "l1i demand hits");
    assert_eq!(r.l1i.demand.misses(), 289, "l1i demand misses");
    assert_eq!(r.l1i.prefetch.hits(), 726, "l1i prefetch hits");
    assert_eq!(r.l1i.prefetch.misses(), 289, "l1i prefetch misses");
}
