//! Golden correspondence between the structured `RunReport` and the figure
//! TSVs: every number the TSV emitters print must be recomputable from the
//! report's flattened counters and values, and the report must survive a
//! disk round trip bit-for-bit.

use swip_bench::{build_run_report, ConfigId, ExperimentPlan, SessionBuilder};
use swip_report::RunReport;

fn sweep() -> (swip_bench::Session, Vec<swip_bench::WorkloadResults>) {
    let session = SessionBuilder::new()
        .instructions(20_000)
        .stride(24) // two workloads
        .threads(2)
        .build()
        .unwrap();
    let plan = ExperimentPlan::all_figures(session.workloads());
    let results = session.run(&plan).unwrap();
    (session, results)
}

#[test]
fn report_counters_reproduce_the_counter_figures() {
    let (session, results) = sweep();
    let report = build_run_report(&session, "all", &results);

    // Figures 9/10/11 are straight counter dumps in the paper-six order;
    // the report must carry the identical integers under its dotted names.
    for r in &results {
        let w = report.workload(r.name()).expect("workload present");
        for id in ConfigId::PAPER {
            let sim = r.report(id);
            let c = w.config(id.label()).expect("config present");
            assert_eq!(
                c.counter("ftq.head_stall_cycles"),
                Some(sim.frontend.head_stall_cycles.get()),
                "fig9 cell for {}/{}",
                r.name(),
                id.label()
            );
            assert_eq!(
                c.counter("ftq.entries_waiting_on_head"),
                Some(sim.frontend.entries_waiting_on_head.get()),
                "fig10 cell"
            );
            assert_eq!(
                c.counter("ftq.partially_covered_entries"),
                Some(sim.frontend.partially_covered_entries.get()),
                "fig11 cell"
            );
        }
    }
}

#[test]
fn report_values_reproduce_fig1_speedup_rows() {
    let (session, results) = sweep();
    let report = build_run_report(&session, "all", &results);

    for r in &results {
        let w = report.workload(r.name()).unwrap();
        let base_ipc = w
            .config(ConfigId::Base.label())
            .and_then(|c| c.value("effective_ipc"))
            .unwrap();
        // fig1_row prints five speedup columns at 4 decimal places; the
        // same numbers must fall out of the report's effective IPCs.
        let row = swip_bench::figures::fig1_row(r);
        let cells: Vec<&str> = row.split('\t').collect();
        assert_eq!(cells[0], r.name());
        let order = [
            ConfigId::AsmdbCons,
            ConfigId::AsmdbConsNoov,
            ConfigId::Fdp,
            ConfigId::AsmdbFdp,
            ConfigId::AsmdbFdpNoov,
        ];
        for (cell, id) in cells[1..].iter().zip(order) {
            let ipc = w
                .config(id.label())
                .and_then(|c| c.value("effective_ipc"))
                .unwrap();
            let expected = format!("{:.4}", ipc / base_ipc);
            assert_eq!(*cell, expected, "{} column {}", r.name(), id.label());
        }
    }
}

#[test]
fn report_fractions_reproduce_the_scenario_table() {
    let (session, results) = sweep();
    let report = build_run_report(&session, "all", &results);

    for r in &results {
        let w = report.workload(r.name()).unwrap();
        for id in ConfigId::PAPER {
            let (s1, s2, s3, empty) = r.report(id).frontend.scenario_fractions();
            let c = w.config(id.label()).unwrap();
            for (name, expected) in [
                ("s1_frac", s1),
                ("s2_frac", s2),
                ("s3_frac", s3),
                ("empty_frac", empty),
            ] {
                assert_eq!(c.value(name), Some(expected), "{name} for {}", r.name());
            }
            // The scenario cycle counters partition the total cycle count,
            // so the fractions in the TSV are recomputable exactly.
            let total: u64 = ["ftq.s1_cycles", "ftq.s2_cycles", "ftq.s3_cycles"]
                .iter()
                .map(|k| c.counter(k).unwrap())
                .sum::<u64>()
                + c.counter("ftq.empty_cycles").unwrap();
            assert_eq!(c.counter("ftq.cycles"), Some(total));
        }
    }
}

#[test]
fn report_survives_a_disk_round_trip() {
    let (session, results) = sweep();
    let report = build_run_report(&session, "all", &results);
    assert_eq!(report.compute_fingerprint(), report.fingerprint);

    let path = std::env::temp_dir().join("swip_report_golden.json");
    std::fs::write(&path, report.to_json()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let back = RunReport::from_json_str(&text).unwrap();
    let _ = std::fs::remove_file(&path);

    assert_eq!(back, report);
    // Re-serialization is deterministic: same bytes, same fingerprint.
    assert_eq!(back.to_json(), text);
    assert_eq!(back.fingerprint, report.fingerprint);

    // Session bookkeeping made it into the document.
    assert_eq!(
        back.session_counter("trace_generations"),
        Some(results.len() as u64)
    );
    assert_eq!(
        back.session_counter("sim_runs"),
        Some(6 * results.len() as u64)
    );
}
