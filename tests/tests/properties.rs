//! Property-based tests over the core data structures and cross-crate
//! invariants (see DESIGN.md §6).

use proptest::prelude::*;
use swip_asmdb::{plan_insertions, select_targets, rewrite_trace, Cfg};
use swip_branch::Ras;
use swip_cache::{Cache, CacheConfig, ReplacementKind};
use swip_trace::Trace;
use swip_types::{Addr, BranchKind, Instruction, LineAddr, Reg};
use swip_workloads::{cvp1_suite, generate};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..Reg::COUNT as u8).prop_map(Reg::new)
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let pc = (0u64..1 << 20).prop_map(|x| Addr::new(x * 4));
    let target = (0u64..1 << 20).prop_map(|x| Addr::new(x * 4));
    (pc, target, 0usize..8, any::<bool>(), arb_reg(), arb_reg()).prop_map(
        |(pc, target, kind, taken, r1, r2)| match kind {
            0 => Instruction::alu(pc).with_dst(r1).with_srcs(&[r2]),
            1 => Instruction::load(pc, target).with_dst(r1),
            2 => Instruction::store(pc, target).with_srcs(&[r1, r2]),
            3 => Instruction::cond_branch(pc, target, taken),
            4 => Instruction::jump(pc, target),
            5 => Instruction::call(pc, target),
            6 => Instruction::ret(pc, target),
            _ => Instruction::prefetch_i(pc, target),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trace codec: encode → decode is the identity.
    #[test]
    fn codec_round_trips(instrs in proptest::collection::vec(arb_instruction(), 0..200),
                         name in "[a-z0-9_]{0,24}") {
        let t = Trace::from_instructions(name, instrs);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Cache: an LRU cache agrees with a reference model (ordered list per
    /// set) on every hit/miss outcome.
    #[test]
    fn lru_cache_matches_reference_model(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..300)) {
        let sets = 4usize;
        let ways = 2usize;
        let mut cache = Cache::new(CacheConfig {
            name: "m".into(),
            sets,
            ways,
            latency: 1,
            mshrs: 0,
            replacement: ReplacementKind::Lru,
        });
        // Reference: per-set most-recent-first vectors.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
        for (line_no, is_fill) in ops {
            let line = LineAddr::from_line_number(line_no);
            let set = (line_no % sets as u64) as usize;
            if is_fill {
                cache.fill(line, false);
                if let Some(pos) = model[set].iter().position(|&l| l == line_no) {
                    model[set].remove(pos);
                } else if model[set].len() == ways {
                    model[set].pop();
                }
                model[set].insert(0, line_no);
            } else {
                let hit = cache.access(line, false);
                let model_hit = model[set].contains(&line_no);
                prop_assert_eq!(hit, model_hit, "line {} in set {}", line_no, set);
                if let Some(pos) = model[set].iter().position(|&l| l == line_no) {
                    let l = model[set].remove(pos);
                    model[set].insert(0, l);
                }
            }
        }
    }

    /// RAS: below capacity it is exactly a stack.
    #[test]
    fn ras_is_a_stack_under_capacity(pushes in proptest::collection::vec(0u64..1 << 30, 1..32)) {
        let mut ras = Ras::new(64);
        let mut model = Vec::new();
        for p in &pushes {
            ras.push(Addr::new(*p));
            model.push(Addr::new(*p));
        }
        while let Some(expected) = model.pop() {
            prop_assert_eq!(ras.pop(), Some(expected));
        }
        prop_assert_eq!(ras.pop(), None);
    }

    /// Workload generator: any seed yields a continuous, call-balanced
    /// dynamic stream with stable instruction kinds per PC.
    #[test]
    fn generated_traces_are_well_formed(idx in 0usize..48, seed_salt in 0u64..4) {
        let mut spec = cvp1_suite(4_000).remove(idx);
        spec.seed ^= seed_salt << 32;
        let trace = generate(&spec);
        prop_assert!(trace.len() >= 4_000);
        let mut stack: Vec<Addr> = Vec::new();
        for w in trace.instructions().windows(2) {
            prop_assert_eq!(w[0].next_pc(), w[1].pc);
        }
        for i in trace.iter() {
            match i.branch_kind() {
                Some(BranchKind::DirectCall | BranchKind::IndirectCall) => {
                    stack.push(i.pc.add(4));
                }
                Some(BranchKind::Return) => {
                    let expected = stack.pop();
                    prop_assert_eq!(Some(i.branch_target().unwrap()), expected);
                }
                _ => {}
            }
        }
        prop_assert!(stack.is_empty());
    }

    /// AsmDB rewriting: for any fanout/distance tuning, the rewritten trace
    /// is continuous, monotone in address shift, and strips back to the
    /// original instruction sequence.
    #[test]
    fn rewrite_invariants_hold(min_reach in 0.05f64..0.9, min_distance in 4u64..40) {
        let spec = cvp1_suite(4_000).remove(16);
        let trace = generate(&spec);
        let cfg = Cfg::from_trace(&trace);
        // Fabricate a miss profile: every executed line missed once per use.
        let mut misses = std::collections::HashMap::new();
        for i in trace.iter() {
            *misses.entry(i.pc.line().number()).or_insert(0u64) += 1;
        }
        let targets = select_targets(&cfg, &misses, 4, 0.5, 64);
        let plan = plan_insertions(&cfg, &targets, min_distance, min_distance * 6, min_reach, 2);
        let (rewritten, report) = rewrite_trace(&trace, &plan);

        // Continuity.
        for w in rewritten.instructions().windows(2) {
            prop_assert_eq!(w[0].next_pc(), w[1].pc);
        }
        // Monotone shift: the i-th non-prefetch instruction's pc never
        // decreases relative to the original.
        let originals: Vec<_> = trace.iter().collect();
        let kept: Vec<_> = rewritten.iter().filter(|i| !i.is_prefetch_i()).collect();
        prop_assert_eq!(kept.len(), originals.len());
        for (o, k) in originals.iter().zip(&kept) {
            prop_assert!(k.pc >= o.pc);
            prop_assert_eq!(std::mem::discriminant(&k.kind), std::mem::discriminant(&o.kind));
        }
        // Accounting.
        prop_assert_eq!(report.inserted_dynamic as usize, rewritten.len() - trace.len());
        prop_assert!(report.dynamic_bloat >= 0.0);
    }
}
