//! Randomized-but-deterministic property tests over the core data
//! structures and cross-crate invariants (see DESIGN.md §6).
//!
//! Each property is exercised over many pseudo-random cases drawn from a
//! fixed-seed SplitMix64 stream, so failures are reproducible without a
//! shrinking framework: the failing case index is part of the assertion
//! message.

use swip_asmdb::{plan_insertions, rewrite_trace, select_targets, Cfg};
use swip_branch::Ras;
use swip_cache::{Cache, CacheConfig, ReplacementKind};
use swip_trace::Trace;
use swip_types::{Addr, BranchKind, Instruction, LineAddr, Reg};
use swip_workloads::{cvp1_suite, generate};

/// Minimal deterministic generator (SplitMix64) for test-case synthesis.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }
}

fn arb_reg(rng: &mut TestRng) -> Reg {
    Reg::new(rng.below(Reg::COUNT as u64) as u8)
}

fn arb_instruction(rng: &mut TestRng) -> Instruction {
    let pc = Addr::new(rng.below(1 << 20) * 4);
    let target = Addr::new(rng.below(1 << 20) * 4);
    let taken = rng.bool();
    let (r1, r2) = (arb_reg(rng), arb_reg(rng));
    match rng.below(8) {
        0 => Instruction::alu(pc).with_dst(r1).with_srcs(&[r2]),
        1 => Instruction::load(pc, target).with_dst(r1),
        2 => Instruction::store(pc, target).with_srcs(&[r1, r2]),
        3 => Instruction::cond_branch(pc, target, taken),
        4 => Instruction::jump(pc, target),
        5 => Instruction::call(pc, target),
        6 => Instruction::ret(pc, target),
        _ => Instruction::prefetch_i(pc, target),
    }
}

/// Trace codec: encode → decode is the identity.
#[test]
fn codec_round_trips() {
    for case in 0u64..64 {
        let mut rng = TestRng::new(0xC0DE_C000 + case);
        let n = rng.below(200) as usize;
        let instrs: Vec<Instruction> = (0..n).map(|_| arb_instruction(&mut rng)).collect();
        let name: String = (0..rng.below(24))
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        let t = Trace::from_instructions(name, instrs);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, t, "case {case}");
    }
}

/// Cache: an LRU cache agrees with a reference model (ordered list per set)
/// on every hit/miss outcome.
#[test]
fn lru_cache_matches_reference_model() {
    for case in 0u64..64 {
        let mut rng = TestRng::new(0x1_5EED + case);
        let sets = 4usize;
        let ways = 2usize;
        let mut cache = Cache::new(CacheConfig {
            name: "m".into(),
            sets,
            ways,
            latency: 1,
            mshrs: 0,
            replacement: ReplacementKind::Lru,
        });
        // Reference: per-set most-recent-first vectors.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
        let ops = 1 + rng.below(300);
        for op in 0..ops {
            let line_no = rng.below(64);
            let is_fill = rng.bool();
            let line = LineAddr::from_line_number(line_no);
            let set = (line_no % sets as u64) as usize;
            if is_fill {
                cache.fill(line, false);
                if let Some(pos) = model[set].iter().position(|&l| l == line_no) {
                    model[set].remove(pos);
                } else if model[set].len() == ways {
                    model[set].pop();
                }
                model[set].insert(0, line_no);
            } else {
                let hit = cache.access(line, false);
                let model_hit = model[set].contains(&line_no);
                assert_eq!(
                    hit, model_hit,
                    "case {case} op {op}: line {line_no} in set {set}"
                );
                if let Some(pos) = model[set].iter().position(|&l| l == line_no) {
                    let l = model[set].remove(pos);
                    model[set].insert(0, l);
                }
            }
        }
    }
}

/// RAS: below capacity it is exactly a stack.
#[test]
fn ras_is_a_stack_under_capacity() {
    for case in 0u64..64 {
        let mut rng = TestRng::new(0x5AC0 + case);
        let pushes: Vec<u64> = (0..1 + rng.below(31)).map(|_| rng.below(1 << 30)).collect();
        let mut ras = Ras::new(64);
        let mut model = Vec::new();
        for p in &pushes {
            ras.push(Addr::new(*p));
            model.push(Addr::new(*p));
        }
        while let Some(expected) = model.pop() {
            assert_eq!(ras.pop(), Some(expected), "case {case}");
        }
        assert_eq!(ras.pop(), None, "case {case}");
    }
}

/// Workload generator: any seed yields a continuous, call-balanced dynamic
/// stream with stable instruction kinds per PC.
#[test]
fn generated_traces_are_well_formed() {
    for case in 0u64..24 {
        let mut rng = TestRng::new(0x3EED5 + case);
        let idx = rng.below(48) as usize;
        let seed_salt = rng.below(4);
        let mut spec = cvp1_suite(4_000).remove(idx);
        spec.seed ^= seed_salt << 32;
        let trace = generate(&spec);
        assert!(trace.len() >= 4_000, "case {case}");
        let mut stack: Vec<Addr> = Vec::new();
        for w in trace.instructions().windows(2) {
            assert_eq!(w[0].next_pc(), w[1].pc, "case {case}");
        }
        for i in trace.iter() {
            match i.branch_kind() {
                Some(BranchKind::DirectCall | BranchKind::IndirectCall) => {
                    stack.push(i.pc.add(4));
                }
                Some(BranchKind::Return) => {
                    let expected = stack.pop();
                    assert_eq!(Some(i.branch_target().unwrap()), expected, "case {case}");
                }
                _ => {}
            }
        }
        assert!(stack.is_empty(), "case {case}");
    }
}

/// AsmDB rewriting: for any fanout/distance tuning, the rewritten trace is
/// continuous, monotone in address shift, and strips back to the original
/// instruction sequence.
#[test]
fn rewrite_invariants_hold() {
    let spec = cvp1_suite(4_000).remove(16);
    let trace = generate(&spec);
    let cfg = Cfg::from_trace(&trace);
    // Fabricate a miss profile: every executed line missed once per use.
    let mut misses = std::collections::HashMap::new();
    for i in trace.iter() {
        *misses.entry(i.pc.line().number()).or_insert(0u64) += 1;
    }
    let targets = select_targets(&cfg, &misses, 4, 0.5, 64);
    for case in 0u64..24 {
        let mut rng = TestRng::new(0x4E_817E + case);
        let min_reach = 0.05 + rng.f64() * 0.85;
        let min_distance = 4 + rng.below(36);
        let plan = plan_insertions(&cfg, &targets, min_distance, min_distance * 6, min_reach, 2);
        let (rewritten, report) = rewrite_trace(&trace, &plan);

        // Continuity.
        for w in rewritten.instructions().windows(2) {
            assert_eq!(w[0].next_pc(), w[1].pc, "case {case}");
        }
        // Monotone shift: the i-th non-prefetch instruction's pc never
        // decreases relative to the original.
        let originals: Vec<_> = trace.iter().collect();
        let kept: Vec<_> = rewritten.iter().filter(|i| !i.is_prefetch_i()).collect();
        assert_eq!(kept.len(), originals.len(), "case {case}");
        for (o, k) in originals.iter().zip(&kept) {
            assert!(k.pc >= o.pc, "case {case}");
            assert_eq!(
                std::mem::discriminant(&k.kind),
                std::mem::discriminant(&o.kind),
                "case {case}"
            );
        }
        // Accounting.
        assert_eq!(
            report.inserted_dynamic as usize,
            rewritten.len() - trace.len(),
            "case {case}"
        );
        assert!(report.dynamic_bloat >= 0.0, "case {case}");
    }
}
