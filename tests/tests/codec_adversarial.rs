//! Adversarial decoding tests: the `SWIP` codec must reject every corrupt
//! or truncated stream with a typed [`DecodeError`] — never panic, never
//! return a half-decoded trace.

use swip_trace::{DecodeError, Trace};
use swip_types::{Addr, Instruction, Reg};

/// A small but kind-complete valid trace, encoded.
fn encoded_fixture() -> Vec<u8> {
    let instrs = vec![
        Instruction::alu(Addr::new(0x0)).with_dst(Reg::new(1)),
        Instruction::load(Addr::new(0x4), Addr::new(0x9000))
            .with_srcs(&[Reg::new(2)])
            .with_dst(Reg::new(3)),
        Instruction::store(Addr::new(0x8), Addr::new(0x9040))
            .with_srcs(&[Reg::new(3), Reg::new(4)]),
        Instruction::cond_branch(Addr::new(0xc), Addr::new(0x40), true),
        Instruction::alu(Addr::new(0x40)),
        Instruction::prefetch_i(Addr::new(0x44), Addr::new(0x40)),
    ];
    let mut buf = Vec::new();
    Trace::from_instructions("adv", instrs)
        .write_to(&mut buf)
        .unwrap();
    buf
}

#[test]
fn full_fixture_round_trips() {
    let buf = encoded_fixture();
    let t = Trace::read_from(buf.as_slice()).unwrap();
    assert_eq!(t.name(), "adv");
    assert_eq!(t.len(), 6);
    let mut again = Vec::new();
    t.write_to(&mut again).unwrap();
    assert_eq!(buf, again);
}

#[test]
fn every_proper_prefix_is_rejected() {
    let buf = encoded_fixture();
    for cut in 0..buf.len() {
        let err = Trace::read_from(&buf[..cut])
            .expect_err("a truncated stream must never decode successfully");
        // Truncation surfaces as an unexpected-EOF I/O error.
        assert!(
            matches!(err, DecodeError::Io(_)),
            "prefix of {cut} bytes: unexpected error {err:?}"
        );
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut buf = encoded_fixture();
    buf[0] = b'X';
    match Trace::read_from(buf.as_slice()).unwrap_err() {
        DecodeError::BadMagic(m) => assert_eq!(&m, b"XWIP"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn unsupported_version_is_typed() {
    let mut buf = encoded_fixture();
    buf[4..8].copy_from_slice(&2u32.to_le_bytes());
    assert!(matches!(
        Trace::read_from(buf.as_slice()).unwrap_err(),
        DecodeError::UnsupportedVersion(2)
    ));
}

#[test]
fn implausible_name_length_is_typed() {
    let mut buf = encoded_fixture();
    // 2 MiB name in a 100-byte file: rejected before any allocation.
    buf[8..12].copy_from_slice(&(2u32 << 20).to_le_bytes());
    assert!(matches!(
        Trace::read_from(buf.as_slice()).unwrap_err(),
        DecodeError::BadLength(n) if n == 2 << 20
    ));
}

#[test]
fn non_utf8_name_is_typed() {
    let mut buf = encoded_fixture();
    buf[12] = 0xff; // first byte of the 3-byte name "adv"
    assert!(matches!(
        Trace::read_from(buf.as_slice()).unwrap_err(),
        DecodeError::BadName
    ));
}

#[test]
fn implausible_count_is_typed() {
    let mut buf = encoded_fixture();
    let count_at = 12 + 3; // after magic+version+namelen and the 3-byte name
    buf[count_at..count_at + 8].copy_from_slice(&((1u64 << 40) + 1).to_le_bytes());
    assert!(matches!(
        Trace::read_from(buf.as_slice()).unwrap_err(),
        DecodeError::BadLength(n) if n == (1 << 40) + 1
    ));
}

/// Byte offset of the first instruction record in the fixture.
const FIRST_RECORD: usize = 12 + 3 + 8;

#[test]
fn unknown_kind_tag_is_typed() {
    let mut buf = encoded_fixture();
    let tag_at = FIRST_RECORD + 8 + 1; // past pc and size
    buf[tag_at] = 9;
    assert!(matches!(
        Trace::read_from(buf.as_slice()).unwrap_err(),
        DecodeError::BadTag(9)
    ));
}

#[test]
fn unknown_branch_kind_tag_is_typed() {
    let mut buf = encoded_fixture();
    // Record 3 is the cond_branch; skip the three records before it.
    let alu = 8 + 1 + 1 + 1 + 1; // no payload, no srcs, dst byte
    let load = 8 + 1 + 1 + 8 + 1 + 1 + 1; // addr, one src byte
    let store = 8 + 1 + 1 + 8 + 1 + 2 + 1; // addr, two src bytes
    let branch_kind_at = FIRST_RECORD + alu + load + store + 8 + 1 + 1;
    buf[branch_kind_at] = 6; // valid kinds are 0-5
    assert!(matches!(
        Trace::read_from(buf.as_slice()).unwrap_err(),
        DecodeError::BadTag(6)
    ));
}

#[test]
fn out_of_range_src_register_is_typed() {
    let mut buf = encoded_fixture();
    let alu = 8 + 1 + 1 + 1 + 1;
    let src_at = FIRST_RECORD + alu + 8 + 1 + 1 + 8 + 1; // load's single src byte
    buf[src_at] = Reg::COUNT as u8; // one past the last valid register
    assert!(matches!(
        Trace::read_from(buf.as_slice()).unwrap_err(),
        DecodeError::BadRegister(r) if r as usize == Reg::COUNT
    ));
}

#[test]
fn out_of_range_dst_register_is_typed() {
    let mut buf = encoded_fixture();
    let dst_at = FIRST_RECORD + 8 + 1 + 1 + 1; // first record's dst byte
    buf[dst_at] = 0xfe; // not the 0xff none-sentinel, not a valid register
    assert!(matches!(
        Trace::read_from(buf.as_slice()).unwrap_err(),
        DecodeError::BadRegister(0xfe)
    ));
}

#[test]
fn trailing_garbage_is_ignored_but_count_is_honored() {
    // The codec reads exactly `count` records; trailing bytes are the
    // caller's concern (e.g. concatenated containers).
    let mut buf = encoded_fixture();
    buf.extend_from_slice(b"garbage");
    let t = Trace::read_from(buf.as_slice()).unwrap();
    assert_eq!(t.len(), 6);
}
