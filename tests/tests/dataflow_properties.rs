//! Property-style tests for the `swip-analyze` dataflow layer: dominator
//! and post-dominator trees, natural-loop detection, and the static
//! prefetch-plan evaluator built on top of them (DESIGN.md §14).
//!
//! Small random digraphs are cheap to check against brute force, so every
//! structural claim the fast algorithms make — "a dominates b", "h heads a
//! natural loop containing x" — is re-derived here from the path-based
//! definitions via exhaustive BFS. Cases come from a fixed-seed SplitMix64
//! stream; the failing case index is part of each assertion message.

use std::collections::VecDeque;

use swip_analyze::{evaluate_plan, CoverageConfig, DomTree, LoopForest};
use swip_asmdb::{plan_insertions, select_targets, Cfg, CfgBlock};
use swip_types::Addr;
use swip_workloads::{cvp1_suite, generate};

/// Minimal deterministic generator (SplitMix64), same shape as
/// `properties.rs`.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Builds a CFG with `count` single-instruction blocks and the given edge
/// list (duplicates allowed by the generator; deduped here so edge weights
/// stay meaningful).
fn cfg_of(count: usize, edges: &[(usize, usize)]) -> Cfg {
    let mut blocks: Vec<CfgBlock> = (0..count)
        .map(|i| {
            let start = Addr::new(0x1000 + 0x100 * i as u64);
            CfgBlock {
                start,
                pcs: vec![start],
                exec_count: 1,
                succs: Vec::new(),
                preds: Vec::new(),
                ends_with_branch: false,
            }
        })
        .collect();
    for &(a, b) in edges {
        if !blocks[a].succs.iter().any(|&(s, _)| s == b) {
            blocks[a].succs.push((b, 1));
            blocks[b].preds.push((a, 1));
        }
    }
    Cfg::from_parts(blocks)
}

/// A random digraph: every node gets 0–2 successors, so the stream covers
/// disconnected, straight-line, diamond, and multi-loop shapes.
fn arb_cfg(rng: &mut TestRng) -> Cfg {
    let n = 2 + rng.below(9) as usize; // 2..=10 blocks
    let mut edges = Vec::new();
    for a in 0..n {
        for _ in 0..rng.below(3) {
            edges.push((a, rng.below(n as u64) as usize));
        }
    }
    cfg_of(n, &edges)
}

/// Nodes reachable from `from` by BFS, never stepping onto `avoid`.
fn reachable_avoiding(cfg: &Cfg, from: usize, avoid: Option<usize>) -> Vec<bool> {
    let n = cfg.len();
    let mut seen = vec![false; n];
    if Some(from) == avoid {
        return seen;
    }
    let mut queue = VecDeque::from([from]);
    seen[from] = true;
    while let Some(b) = queue.pop_front() {
        for &(s, _) in &cfg.block(b).succs {
            if s < n && Some(s) != avoid && !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
    }
    seen
}

/// Path-based definition: `a` dominates `b` iff `b` is reachable from the
/// entry and every entry→b path passes through `a`.
fn dominates_by_definition(cfg: &Cfg, entry: usize, a: usize, b: usize) -> bool {
    if !reachable_avoiding(cfg, entry, None)[b] {
        return false;
    }
    a == b || !reachable_avoiding(cfg, entry, Some(a))[b]
}

/// Path-based definition on the reversed problem: `a` post-dominates `b`
/// iff `b` reaches some exit and every b→exit path passes through `a`.
fn post_dominates_by_definition(cfg: &Cfg, exits: &[usize], a: usize, b: usize) -> bool {
    let reaches_exit = |avoid: Option<usize>| {
        let seen = reachable_avoiding(cfg, b, avoid);
        exits.iter().any(|&e| seen[e])
    };
    if !reaches_exit(None) {
        return false;
    }
    a == b || !reaches_exit(Some(a))
}

#[test]
fn dominators_match_the_path_based_definition() {
    let mut rng = TestRng::new(0x0d0a);
    for case in 0..300 {
        let cfg = arb_cfg(&mut rng);
        let n = cfg.len();
        let entry = rng.below(n as u64) as usize;
        let dom = DomTree::dominators(&cfg, entry);
        let bfs = reachable_avoiding(&cfg, entry, None);
        for (b, &bfs_reaches) in bfs.iter().enumerate().take(n) {
            assert_eq!(
                dom.is_reachable(b),
                bfs_reaches,
                "case {case}: reachability of block {b} disagrees with BFS"
            );
            for a in 0..n {
                assert_eq!(
                    dom.dominates(a, b),
                    dominates_by_definition(&cfg, entry, a, b),
                    "case {case}: dominates({a}, {b}) from entry {entry}"
                );
            }
        }
    }
}

#[test]
fn post_dominators_match_the_path_based_definition() {
    let mut rng = TestRng::new(0x90d0);
    for case in 0..300 {
        let cfg = arb_cfg(&mut rng);
        let n = cfg.len();
        // The extra exit models "the block that ended the trace" on
        // fully-looping CFGs; natural exits are blocks with no successors.
        let extra = rng.below(n as u64) as usize;
        let pdom = DomTree::post_dominators(&cfg, &[extra]);
        let mut exits: Vec<usize> = (0..n)
            .filter(|&b| cfg.block(b).succs.iter().all(|&(s, _)| s >= n))
            .collect();
        if !exits.contains(&extra) {
            exits.push(extra);
        }
        for b in 0..n {
            for a in 0..n {
                assert_eq!(
                    pdom.dominates(a, b),
                    post_dominates_by_definition(&cfg, &exits, a, b),
                    "case {case}: post-dominates({a}, {b}) with exits {exits:?}"
                );
            }
        }
    }
}

#[test]
fn idom_chains_are_acyclic_and_rpo_decreasing() {
    let mut rng = TestRng::new(0x1d03);
    for case in 0..300 {
        let cfg = arb_cfg(&mut rng);
        let n = cfg.len();
        let entry = rng.below(n as u64) as usize;
        let dom = DomTree::dominators(&cfg, entry);
        assert_eq!(dom.root(), Some(entry));
        assert!(
            dom.idom(entry).is_none(),
            "case {case}: the root has no idom"
        );
        for b in 0..n {
            if !dom.is_reachable(b) {
                assert_eq!(dom.idom(b), None);
                assert_eq!(dom.rpo_number(b), None);
                continue;
            }
            // Entry dominates everything reachable.
            assert!(
                dom.dominates(entry, b),
                "case {case}: entry {entry} must dominate reachable block {b}"
            );
            // Walking idoms strictly decreases RPO numbers, so the chain
            // terminates at the root in < n steps: acyclicity.
            let mut cur = b;
            let mut steps = 0usize;
            while let Some(p) = dom.idom(cur) {
                assert!(
                    dom.rpo_number(p).unwrap() < dom.rpo_number(cur).unwrap(),
                    "case {case}: idom({cur}) = {p} does not decrease RPO"
                );
                assert!(
                    dom.strictly_dominates(p, b),
                    "case {case}: chain node {p} must strictly dominate {b}"
                );
                cur = p;
                steps += 1;
                assert!(steps <= n, "case {case}: idom chain of {b} cycles");
            }
            assert_eq!(cur, entry, "case {case}: idom chain of {b} misses entry");
            assert_eq!(dom.depth(b), Some(steps));
        }
    }
}

#[test]
fn natural_loops_match_the_back_edge_definition() {
    let mut rng = TestRng::new(0x100b);
    for case in 0..300 {
        let cfg = arb_cfg(&mut rng);
        let n = cfg.len();
        let entry = rng.below(n as u64) as usize;
        let dom = DomTree::dominators(&cfg, entry);
        let forest = LoopForest::detect(&cfg, &dom);

        for l in &forest.loops {
            assert!(!l.latches.is_empty(), "case {case}: loop with no latch");
            assert!(l.blocks.contains(&l.header));
            for &latch in &l.latches {
                // Each latch really has a back edge to the header, and the
                // header dominates it (the definition of "back edge").
                assert!(
                    cfg.block(latch).succs.iter().any(|&(s, _)| s == l.header),
                    "case {case}: latch {latch} has no edge to header {}",
                    l.header
                );
                assert!(dom.dominates(l.header, latch), "case {case}");
            }
            for &b in &l.blocks {
                assert!(
                    dom.dominates(l.header, b),
                    "case {case}: header {} must dominate body block {b}",
                    l.header
                );
            }
            // Body by definition: blocks that reach a latch without
            // passing through the header, plus the header itself.
            for b in 0..n {
                if !dom.is_reachable(b) {
                    assert!(!l.blocks.contains(&b), "case {case}");
                    continue;
                }
                let in_body = b == l.header || {
                    let seen = reachable_avoiding(&cfg, b, Some(l.header));
                    b != l.header && l.latches.iter().any(|&t| seen[t])
                };
                assert_eq!(
                    l.blocks.contains(&b),
                    in_body,
                    "case {case}: membership of {b} in loop at {}",
                    l.header
                );
            }
        }

        // Depth and innermost agree with naive recounting.
        for b in 0..n {
            let containing: Vec<_> = forest
                .loops
                .iter()
                .filter(|l| l.blocks.contains(&b))
                .collect();
            assert_eq!(forest.depth(b) as usize, containing.len(), "case {case}");
            match forest.innermost(b) {
                None => assert!(containing.is_empty(), "case {case}"),
                Some(inner) => {
                    assert!(inner.blocks.contains(&b), "case {case}");
                    let smallest = containing.iter().map(|l| l.blocks.len()).min().unwrap();
                    assert_eq!(inner.blocks.len(), smallest, "case {case}");
                }
            }
        }
    }
}

/// The dataflow layer on real inputs: CFGs reconstructed from generated
/// suite traces obey the same invariants, and the evaluator's verdict over
/// the toolkit's own AsmDB plans never includes "dead" — the planner only
/// anchors at executed PCs, which are reachable by construction.
#[test]
fn generated_trace_cfgs_are_sound_and_own_plans_are_never_dead() {
    let mut rng = TestRng::new(0xace5);
    for round in 0..6 {
        let idx = rng.below(48) as usize;
        let mut suite = cvp1_suite(6_000);
        let spec = suite.remove(idx);
        let trace = generate(&spec);
        let cfg = Cfg::from_trace(&trace);
        let entry = trace
            .instructions()
            .first()
            .and_then(|i| cfg.block_of(i.pc))
            .expect("first executed pc must be in the CFG");

        let dom = DomTree::dominators(&cfg, entry);
        for (b, _) in cfg.blocks() {
            // Every reconstructed block was executed, so all are reachable
            // from the entry and dominated by it.
            assert!(
                dom.is_reachable(b),
                "round {round} ({}): block {b}",
                spec.name
            );
            assert!(dom.dominates(entry, b), "round {round} ({})", spec.name);
        }

        let forest = LoopForest::detect(&cfg, &dom);
        for l in &forest.loops {
            assert!(l.header_exec_count(&cfg) >= 1);
        }

        // Fabricate a miss profile (every executed line missed once per
        // use) so planning has real targets to anchor.
        let mut misses = std::collections::HashMap::new();
        for i in trace.iter() {
            *misses.entry(i.pc.line().number()).or_insert(0u64) += 1;
        }
        let targets = select_targets(&cfg, &misses, 4, 0.5, 64);
        let plan = plan_insertions(&cfg, &targets, 8, 48, 0.2, 2);
        let eval = evaluate_plan(&cfg, Some(entry), &plan, &CoverageConfig::default());
        assert_eq!(eval.classes.len(), plan.insertions.len());
        assert_eq!(
            eval.fatal_rules(),
            Vec::<&str>::new(),
            "round {round} ({}): the planner's own insertions must never be dead",
            spec.name
        );
        assert_eq!(eval.coverage.counter_pairs().len(), 15);
    }
}
