//! Cross-crate integration tests for `swip-fe` live in `tests/`; this
//! library target is intentionally empty.

#![forbid(unsafe_code)]
