//! A minimal `swip serve` worker for the fleet integration tests.
//!
//! The tests need real *processes* (the dead-worker test SIGKILLs one
//! mid-sweep, which an in-process server thread cannot model), spawned
//! via `env!("CARGO_BIN_EXE_fleet_worker")`. Arguments are positional:
//! `fleet_worker [instructions] [stride] [threads] [cache_dir]`. The
//! picked ephemeral port is announced on stdout as `listening on ADDR`,
//! the same line `swip serve` prints for scripts to scrape.

use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instructions: u64 = args
        .get(1)
        .map(|s| s.parse().expect("instructions must be a number"))
        .unwrap_or(20_000);
    let stride: usize = args
        .get(2)
        .map(|s| s.parse().expect("stride must be a number"))
        .unwrap_or(16);
    let threads: usize = args
        .get(3)
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or(2);

    let mut builder = swip_bench::SessionBuilder::new()
        .instructions(instructions)
        .stride(stride)
        .threads(threads);
    if let Some(dir) = args.get(4) {
        builder = builder.cache_dir(dir.clone());
    }
    let session = builder.build().expect("worker session");

    let config = swip_serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..swip_serve::ServeConfig::default()
    };
    let server = swip_serve::Server::bind(&config, session).expect("bind worker");
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().expect("flush addr line");
    server.run().expect("worker serve loop");
}
