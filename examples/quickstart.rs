//! Quickstart: build a small instruction trace by hand, run it through the
//! conservative (2-entry FTQ) and industry-standard (24-entry FTQ) FDP
//! front-ends, and compare.
//!
//! ```sh
//! cargo run -p swip-core --example quickstart --release
//! ```

use swip_core::{SimConfig, Simulator};
use swip_trace::TraceBuilder;
use swip_types::Addr;

fn main() {
    // A toy server-ish workload: a dispatcher loop that walks eight "handler"
    // functions laid out far apart, so their lines fight over the L1-I.
    let mut b = TraceBuilder::new("quickstart");
    let handler = |k: u64| Addr::new(0x10_000 + k * 0x2a8);
    for _ in 0..2_000 {
        for k in 0..8u64 {
            b.set_pc(Addr::new(0x1000 + k * 8));
            b.call(handler(k));
            for _ in 0..14 {
                b.alu();
            }
            b.ret(Addr::new(0x1000 + k * 8 + 4));
            b.jump(Addr::new(0x1000 + ((k + 1) % 8) * 8));
        }
    }
    let trace = b.finish();
    println!("trace: {}", trace.summary());

    let conservative = Simulator::new(SimConfig::conservative()).run(&trace);
    let industry = Simulator::new(SimConfig::sunny_cove_like()).run(&trace);

    println!("\n--- conservative front-end (2-entry FTQ) ---\n{conservative}");
    println!("\n--- industry-standard FDP (24-entry FTQ) ---\n{industry}");
    println!(
        "\nFDP speedup over conservative: {:.3}x",
        industry.speedup_over(&conservative)
    );
}
