//! The full AsmDB pipeline on one CVP-1-like workload: profile → CFG →
//! target selection → insertion planning → trace rewriting → evaluation in
//! the five Figure-1 configurations.
//!
//! ```sh
//! cargo run -p swip-asmdb --example asmdb_pipeline --release
//! ```

use swip_asmdb::{Asmdb, AsmdbConfig};
use swip_core::{SimConfig, Simulator};
use swip_workloads::{cvp1_suite, generate};

fn main() {
    let spec = &cvp1_suite(200_000)[20]; // secret_srv21
    let trace = generate(spec);
    println!("workload {}: {}", spec.name, trace.summary());

    let conservative = SimConfig::conservative();
    let industry = SimConfig::sunny_cove_like();

    // Profile + analyze + rewrite.
    let asmdb = Asmdb::new(AsmdbConfig::default());
    let out = asmdb.run(&trace, &conservative);
    println!(
        "\nAsmDB: {} miss lines profiled, {} targeted ({} uncovered), \
         {} insertions, min distance {} instructions",
        out.profile.line_misses.len(),
        out.plan.targeted_lines,
        out.plan.uncovered_lines,
        out.plan.len(),
        out.min_distance
    );
    println!(
        "code bloat: static {:.2}%, dynamic {:.2}% ({} prefetch.i executions)",
        out.report.static_bloat * 100.0,
        out.report.dynamic_bloat * 100.0,
        out.report.inserted_dynamic
    );

    // Evaluate all five Figure-1 configurations.
    let base = Simulator::new(conservative.clone()).run(&trace);
    let rows = [
        (
            "AsmDB (conservative)",
            Simulator::new(conservative.clone()).run(&out.rewritten),
        ),
        (
            "AsmDB no-overhead (conservative)",
            Simulator::new(conservative).run_with_hints(&trace, &out.hints),
        ),
        (
            "FDP 24-entry FTQ",
            Simulator::new(industry.clone()).run(&trace),
        ),
        (
            "AsmDB + FDP",
            Simulator::new(industry.clone()).run(&out.rewritten),
        ),
        (
            "AsmDB + FDP no-overhead",
            Simulator::new(industry).run_with_hints(&trace, &out.hints),
        ),
    ];
    println!(
        "\nbaseline (2-entry FTQ): IPC {:.3}, MPKI {:.1}",
        base.effective_ipc, base.l1i_mpki
    );
    for (name, r) in rows {
        println!(
            "{name:<34} IPC {:.3}  speedup {:.3}x  MPKI {:.1}",
            r.effective_ipc,
            r.speedup_over(&base),
            r.l1i_mpki
        );
    }
}
