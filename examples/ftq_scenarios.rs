//! The paper's Section III taxonomy, live: classify every front-end cycle
//! of a CVP-1-like workload into Scenario 1 (shoot through), Scenario 2
//! (stalling head), and Scenario 3 (shadow stalls), at both FTQ depths.
//!
//! ```sh
//! cargo run -p swip-core --example ftq_scenarios --release
//! ```

use swip_core::{SimConfig, Simulator};
use swip_workloads::{cvp1_suite, generate};

fn main() {
    let spec = &cvp1_suite(150_000)[16]; // secret_srv12
    let trace = generate(spec);
    println!(
        "workload {} — {:.0} KiB instruction footprint, {} instructions\n",
        spec.name,
        trace.summary().footprint_kib(),
        trace.len()
    );

    for (label, config) in [
        ("conservative (FTQ=2)", SimConfig::conservative()),
        ("industry-standard (FTQ=24)", SimConfig::sunny_cove_like()),
    ] {
        let r = Simulator::new(config).run(&trace);
        let (s1, s2, s3, empty) = r.frontend.scenario_fractions();
        println!("=== {label} ===");
        println!("  IPC {:.3}, L1-I MPKI {:.1}", r.effective_ipc, r.l1i_mpki);
        println!(
            "  Scenario 1 (shoot through):  {:5.1}% of cycles",
            s1 * 100.0
        );
        println!(
            "  Scenario 2 (stalling head):  {:5.1}% of cycles",
            s2 * 100.0
        );
        println!(
            "  Scenario 3 (shadow stalls):  {:5.1}% of cycles",
            s3 * 100.0
        );
        println!(
            "  FTQ empty:                   {:5.1}% of cycles",
            empty * 100.0
        );
        println!(
            "  head stalls {} cycles; {} entries waited on a stalling head; \
             {} entries reached the head mid-fetch",
            r.frontend.head_stall_cycles,
            r.frontend.entries_waiting_on_head,
            r.frontend.partially_covered_entries
        );
        println!(
            "  fetch latency: head {:.1} cycles vs non-head {:.1} cycles (Fig 8 shape)\n",
            r.frontend.head_fetch_cycles.mean(),
            r.frontend.nonhead_fetch_cycles.mean()
        );
    }
}
