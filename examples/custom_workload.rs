//! Build a custom synthetic workload from scratch: tweak a
//! [`swip_workloads::WorkloadSpec`], generate its program and trace, inspect
//! the static structure, and measure FTQ-depth sensitivity.
//!
//! ```sh
//! cargo run -p swip-core --example custom_workload --release
//! ```

use swip_core::{SimConfig, Simulator};
use swip_workloads::{cvp1_suite, generate, Family, Program, WorkloadSpec};

fn main() {
    // Start from a suite server workload and exaggerate its footprint.
    let mut spec: WorkloadSpec = cvp1_suite(120_000).remove(20);
    spec.name = "custom_bigsrv".into();
    spec.functions = 2500;
    spec.family = Family::Server;
    spec.root_persistence = 0.3; // hop handlers aggressively: colder L1-I

    let program = Program::generate(&spec);
    println!(
        "program: {} functions, {} KiB of code, {} dispatch roots",
        program.functions.len(),
        program.code_bytes() / 1024,
        program.hot_roots.len()
    );
    let biggest = program
        .functions
        .iter()
        .map(|f| f.instr_count())
        .max()
        .unwrap_or(0);
    println!("largest function: {biggest} instructions");

    let trace = generate(&spec);
    println!("trace: {}", trace.summary());

    for depth in [2usize, 8, 24] {
        let r = Simulator::new(SimConfig::sunny_cove_like().with_ftq_entries(depth)).run(&trace);
        println!(
            "FTQ={depth:<2}  IPC {:.3}  L1-I MPKI {:.1}  head stalls {}",
            r.effective_ipc, r.l1i_mpki, r.frontend.head_stall_cycles
        );
    }
}
