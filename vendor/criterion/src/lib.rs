//! A dependency-free stand-in for the subset of the `criterion` API this
//! workspace's benches use (`Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros).
//!
//! The workspace must build fully offline, so the real crate cannot be
//! fetched from a registry. This harness does honest wall-clock timing with
//! a warmup pass and prints mean ns/iteration, but performs no statistical
//! analysis and writes no reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stand-in runs one setup per timed invocation regardless).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement state handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over `self.iters` iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-invocation `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _c: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let n = self.sample_size;
        run_one(id, n, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for the
    /// stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warmup pass, untimed in the report.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let iters = sample_size.max(1) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_nanos() / u128::from(iters.max(1));
    println!("bench {id:<40} {per_iter:>12} ns/iter ({iters} iters)");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` for a set of benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
