//! A dependency-free stand-in for the subset of the `rand` 0.8 API this
//! workspace uses (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `gen_bool`, `gen_range`).
//!
//! The workspace must build fully offline, so the real crate cannot be
//! fetched from a registry. The generator is SplitMix64: deterministic,
//! fast, and statistically strong enough for synthetic workload synthesis.
//! It is **not** the same stream as upstream `SmallRng`, so traces generated
//! by this workspace are deterministic per-build but not bit-identical to
//! ones produced against crates.io `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from a uniform RNG draw (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

/// Types `Rng::gen_range` can draw uniformly (stand-in for the
/// `SampleUniform` machinery).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range types from which `Rng::gen_range` can draw uniformly.
///
/// Blanket-implemented for `Range<T>` and `RangeInclusive<T>` (a single
/// impl per range shape, like upstream, so integer-literal ranges infer
/// their element type from the call site).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// The subset of `rand::Rng` used by this workspace.
pub trait Rng: Sized {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }
}

/// Seeding trait (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete small generators.
pub mod rngs {
    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! uniform_ints {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128) - (lo as i128) + i128::from(inclusive);
                lo.wrapping_add(((rng.next_u64() as i128).rem_euclid(span)) as $t)
            }
        }
    )*};
}

uniform_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + rng.gen::<f32>() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u64);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }
}
