#!/usr/bin/env sh
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> smoke: swip bench --instructions 20000 --stride 16"
rm -rf target/experiments
start=$(date +%s)
cargo run -p swip-cli --release --quiet -- bench --instructions 20000 --stride 16
echo "smoke run took $(($(date +%s) - start))s"
for f in fig1 fig7 fig8 fig9 fig10 fig11 scenarios; do
    tsv="target/experiments/$f.tsv"
    if ! [ -s "$tsv" ]; then
        echo "FAIL: $tsv missing or empty" >&2
        exit 1
    fi
done
echo "all 7 figure TSVs present and non-empty"

report="target/experiments/report.json"
if ! [ -s "$report" ]; then
    echo "FAIL: $report missing or empty" >&2
    exit 1
fi
echo "==> swip report $report"
cargo run -p swip-cli --release --quiet -- report "$report"
echo "structured run report present and loadable"

echo "All checks passed."
