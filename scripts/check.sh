#!/usr/bin/env sh
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> smoke: swip bench --instructions 20000 --stride 16"
rm -rf target/experiments
start=$(date +%s)
cargo run -p swip-cli --release --quiet -- bench --instructions 20000 --stride 16
echo "smoke run took $(($(date +%s) - start))s"
for f in fig1 fig7 fig8 fig9 fig10 fig11 scenarios; do
    tsv="target/experiments/$f.tsv"
    if ! [ -s "$tsv" ]; then
        echo "FAIL: $tsv missing or empty" >&2
        exit 1
    fi
done
echo "all 7 figure TSVs present and non-empty"

report="target/experiments/report.json"
if ! [ -s "$report" ]; then
    echo "FAIL: $report missing or empty" >&2
    exit 1
fi
echo "==> swip report $report"
cargo run -p swip-cli --release --quiet -- report "$report"
echo "structured run report present and loadable"

echo "==> swip analyze --predict-vs (static prediction vs measured counters)"
# The smoke report embeds each workload's predicted coverage; the diff
# against the measured prefetch counters must stay within the default
# divergence threshold (DESIGN.md §14).
cargo run -p swip-cli --release --quiet -- analyze --predict-vs "$report"
echo "coverage predictions within threshold of measured counters"

echo "==> swip analyze --coverage over a generated corpus"
corpus="target/analyze-corpus"
rm -rf "$corpus"
mkdir -p "$corpus"
for w in public_srv_60 secret_srv12 secret_int_124 secret_crypto52; do
    cargo run -p swip-cli --release --quiet -- gen "$w" \
        --out "$corpus/$w.swip" --instructions 20000
    cargo run -p swip-cli --release --quiet -- asmdb "$corpus/$w.swip" \
        --out "$corpus/$w.rw.swip" >/dev/null
    # Exit 0 = clean or warnings only; 1 would mean a fatal diagnostic
    # (e.g. a dead insertion, rule D001) in a plan our own planner made.
    if ! cargo run -p swip-cli --release --quiet -- analyze \
        "$corpus/$w.rw.swip" --coverage >/dev/null; then
        echo "FAIL: analyze --coverage found fatal diagnostics in $w" >&2
        exit 1
    fi
done
echo "static coverage clean over the corpus (4 rewritten workloads)"

echo "==> swip analyze exit codes"
printf 'not a trace' >"$corpus/garbage.swip"
set +e
cargo run -p swip-cli --release --quiet -- analyze "$corpus/garbage.swip" \
    >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: analyze of an unreadable file must exit 2 (got $code)" >&2
    exit 1
fi
echo "analyze follows the diff(1) exit convention"

echo "==> swip report --diff exit codes"
if ! cargo run -p swip-cli --release --quiet -- report --diff "$report" "$report"; then
    echo "FAIL: diff of a report against itself must exit 0" >&2
    exit 1
fi
set +e
cargo run -p swip-cli --release --quiet -- report --diff "$report" /nonexistent.json
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "FAIL: diff against an unreadable file must exit 2 (got $code)" >&2
    exit 1
fi
echo "report --diff follows the diff(1) exit convention"

echo "==> determinism: re-run one figure and byte-compare its TSV"
cp target/experiments/fig1.tsv target/fig1.first.tsv
cargo run -p swip-cli --release --quiet -- bench --figure fig1 \
    --instructions 20000 --stride 16 >/dev/null
if ! cmp -s target/fig1.first.tsv target/experiments/fig1.tsv; then
    echo "FAIL: fig1.tsv changed between identical runs" >&2
    exit 1
fi
rm -f target/fig1.first.tsv
echo "figure output is byte-stable across runs"

echo "==> smoke: prefetcher zoo sweep (--prefetcher across all four mechanisms)"
# stride 16 → 3 workloads; long-format TSV = workloads × 4 mechanisms + header.
cargo run -p swip-cli --release --quiet -- bench --instructions 20000 --stride 16 \
    --prefetcher fdp --prefetcher asmdb --prefetcher mana --prefetcher shadow_btb
zoo_tsv="target/experiments/prefetchers.tsv"
if ! [ -s "$zoo_tsv" ]; then
    echo "FAIL: $zoo_tsv missing or empty" >&2
    exit 1
fi
rows=$(wc -l <"$zoo_tsv")
workloads=$(tail -n +2 "$zoo_tsv" | cut -f1 | sort -u | wc -l)
expected=$((workloads * 4 + 1))
if [ "$rows" -ne "$expected" ]; then
    echo "FAIL: $zoo_tsv has $rows rows, expected $expected ($workloads workloads x 4 + header)" >&2
    exit 1
fi
# The sweep's schema-v2 report (with prefetcher tags) must load.
cargo run -p swip-cli --release --quiet -- report "$report"
# And the pre-refactor schema-v1 fixture must keep loading (back-compat gate).
cargo run -p swip-cli --release --quiet -- report tests/fixtures/report_v1.json
echo "prefetcher zoo TSV well-formed ($workloads workloads x 4 mechanisms); v1 report still loads"

echo "==> smoke: swip bench --measure (throughput history harness)"
# Run from target/ so the smoke measurement does not clobber the tracked
# BENCH_throughput.json at the repo root (that one is the full sweep).
# Two runs: --measure appends to a schema-v2 history, so the second run
# must grow the entries array rather than overwrite the first.
# 20k instructions (not 2k): the per-config regression gate below
# compares the two entries, and tiny sweeps are too noisy for a 25% gate.
rm -f target/BENCH_throughput.json
(cd target && cargo run -p swip-cli --release --quiet -- bench --measure \
    --instructions 20000 --stride 24)
(cd target && cargo run -p swip-cli --release --quiet -- bench --measure \
    --instructions 20000 --stride 24)
if ! [ -s target/BENCH_throughput.json ]; then
    echo "FAIL: target/BENCH_throughput.json missing or empty" >&2
    exit 1
fi
entries=$(grep -c '"total_instrs_per_sec"' target/BENCH_throughput.json)
if [ "$entries" -ne 2 ]; then
    echo "FAIL: expected 2 history entries after 2 measure runs, got $entries" >&2
    exit 1
fi
# swip report parses the file with the swip-report JSON parser and exits
# nonzero on malformed schema or zero instrs/sec.
cargo run -p swip-cli --release --quiet -- report target/BENCH_throughput.json
echo "throughput history present, well-formed, 2 entries after 2 runs"

echo "==> swip report --check-regression (per-config throughput gate)"
# Two identical back-to-back sweeps must not differ by >25% per config;
# a bigger drop means the simulator hot path genuinely regressed.
cargo run -p swip-cli --release --quiet -- report \
    --check-regression target/BENCH_throughput.json
# The tracked history at the repo root is gated too (its newest entry
# against the one before it; a single-entry history passes vacuously).
cargo run -p swip-cli --release --quiet -- report \
    --check-regression BENCH_throughput.json
# Exit-code contract: a fabricated 50% drop must trip the default gate.
regress_dir="target/regression-gate"
rm -rf "$regress_dir"
mkdir -p "$regress_dir"
cat >"$regress_dir/slow.json" <<'EOF'
{"version": 2, "kind": "swip-throughput-history", "entries": [
  {"version": 1, "kind": "swip-throughput", "instructions": 2000,
   "stride": 24, "workloads": 2,
   "configs": [{"config": "ftq2_fdp", "instructions": 4000, "cycles": 9000,
                "seconds": 0.01, "instrs_per_sec": 400000.0}],
   "total_instructions": 4000, "total_seconds": 0.01,
   "total_instrs_per_sec": 400000.0},
  {"version": 1, "kind": "swip-throughput", "instructions": 2000,
   "stride": 24, "workloads": 2,
   "configs": [{"config": "ftq2_fdp", "instructions": 4000, "cycles": 9000,
                "seconds": 0.02, "instrs_per_sec": 200000.0}],
   "total_instructions": 4000, "total_seconds": 0.02,
   "total_instrs_per_sec": 200000.0}]}
EOF
set +e
cargo run -p swip-cli --release --quiet -- report \
    --check-regression "$regress_dir/slow.json" >/dev/null
code=$?
set -e
if [ "$code" -ne 1 ]; then
    echo "FAIL: a collapsed instrs/sec must exit 1 (got $code)" >&2
    exit 1
fi
echo "regression gate clean; fabricated collapse exits 1"

echo "==> smoke: swip serve (keep-alive probe, connection flood, graceful drain)"
cargo build -q --release -p swip-cli -p swip-serve
serve_log="target/serve-smoke.log"
./target/release/swip serve --addr 127.0.0.1:0 --workers 1 --queue-depth 4 \
    --max-conns 32 --keep-alive-timeout 2 \
    --instructions 20000 --stride 48 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$serve_log")
    [ -n "$addr" ] && break
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "FAIL: server never reported its address" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi

# Flood probe: 82 idle connections against --max-conns 32 must shed the
# overflow with 503 at accept time — and, because connections live in a
# poll loop rather than a thread each, the server's thread count must
# not grow with the flood.
if [ -d "/proc/$serve_pid/task" ]; then
    threads_before=$(ls "/proc/$serve_pid/task" | wc -l)
else
    threads_before=""
fi
flood_log="target/serve-flood.log"
./target/release/serve_probe "$addr" flood 82 >"$flood_log" 2>&1 &
flood_pid=$!
sleep 1
if [ -n "$threads_before" ]; then
    threads_during=$(ls "/proc/$serve_pid/task" | wc -l)
else
    threads_during=""
fi
if ! wait "$flood_pid"; then
    echo "FAIL: flood probe failed" >&2
    cat "$flood_log" "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
cat "$flood_log"
if [ -n "$threads_before" ] && [ "$threads_during" -gt $((threads_before + 2)) ]; then
    echo "FAIL: thread count grew under flood ($threads_before -> $threads_during)" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
[ -n "$threads_before" ] && \
    echo "thread count bounded under flood ($threads_before -> $threads_during)"

# Default probe: health check, then three plan submissions over ONE
# kept-alive socket (the keep-alive smoke), then a drain request.
if ! ./target/release/serve_probe "$addr"; then
    echo "FAIL: serve probe failed" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# The probe requested a drain; the server must exit 0 on its own.
if ! wait "$serve_pid"; then
    echo "FAIL: swip serve did not exit 0 after drain" >&2
    cat "$serve_log" >&2
    exit 1
fi
echo "serve smoke passed (served on $addr, keep-alive + flood probed, drained, exit 0)"

echo "==> smoke: swip fleet (2 workers, byte-identical merge, dead-worker re-dispatch)"
fleet_dir="target/fleet-smoke"
rm -rf "$fleet_dir"
mkdir -p "$fleet_dir"
# Two real worker processes on ephemeral ports. --job-threads is pinned
# on both workers AND the offline reference: the thread count is part of
# the report header, so it must match for the byte-compare below.
./target/release/swip serve --addr 127.0.0.1:0 --workers 2 --job-threads 2 \
    --instructions 20000 --stride 24 >"$fleet_dir/worker1.log" 2>&1 &
fleet_w1_pid=$!
./target/release/swip serve --addr 127.0.0.1:0 --workers 2 --job-threads 2 \
    --instructions 20000 --stride 24 >"$fleet_dir/worker2.log" 2>&1 &
fleet_w2_pid=$!
fleet_w1_addr=""
fleet_w2_addr=""
for _ in $(seq 1 50); do
    fleet_w1_addr=$(sed -n 's/^listening on //p' "$fleet_dir/worker1.log")
    fleet_w2_addr=$(sed -n 's/^listening on //p' "$fleet_dir/worker2.log")
    [ -n "$fleet_w1_addr" ] && [ -n "$fleet_w2_addr" ] && break
    sleep 0.2
done
if [ -z "$fleet_w1_addr" ] || [ -z "$fleet_w2_addr" ]; then
    echo "FAIL: fleet workers never reported their addresses" >&2
    cat "$fleet_dir"/worker*.log >&2
    kill -9 "$fleet_w1_pid" "$fleet_w2_pid" 2>/dev/null || true
    exit 1
fi
# The single-node reference, then the 2-worker sweep of the same plan.
./target/release/swip fleet run --offline --instructions 20000 --stride 24 \
    --job-threads 2 --out "$fleet_dir/single.json" >/dev/null
./target/release/swip fleet run --worker "$fleet_w1_addr" \
    --worker "$fleet_w2_addr" --instructions 20000 --stride 24 \
    --out "$fleet_dir/merged.json"
if ! cmp -s "$fleet_dir/single.json" "$fleet_dir/merged.json"; then
    echo "FAIL: fleet-merged report differs from the single-node report" >&2
    exit 1
fi
# SIGKILL one worker; a re-run with the dead address still configured
# must drop it at registration and complete on the survivor — exit 0,
# same bytes.
kill -9 "$fleet_w2_pid" 2>/dev/null || true
wait "$fleet_w2_pid" 2>/dev/null || true
./target/release/swip fleet run --worker "$fleet_w1_addr" \
    --worker "$fleet_w2_addr" --instructions 20000 --stride 24 \
    --out "$fleet_dir/merged-after-kill.json"
if ! cmp -s "$fleet_dir/single.json" "$fleet_dir/merged-after-kill.json"; then
    echo "FAIL: post-kill fleet report differs from the single-node report" >&2
    exit 1
fi
kill -9 "$fleet_w1_pid" 2>/dev/null || true
wait "$fleet_w1_pid" 2>/dev/null || true
echo "fleet smoke passed (2-worker merge byte-identical, survived a SIGKILL)"

echo "All checks passed."
