//! The [`InstructionPrefetcher`] trait: the L1I/front-end prefetch seam.
//!
//! The paper compares exactly two prefetch mechanisms — FDP's decoupled
//! run-ahead and AsmDB's software hints — but the design space is wider
//! (MANA's metadata record-and-replay, shadow-branch BTB pre-fill, …).
//! This module turns the hard-wired special cases into implementations of
//! one trait so the whole space is sweepable from `swip bench
//! --prefetcher`.
//!
//! # Hook order within a cycle
//!
//! [`Frontend::cycle`](crate::Frontend::cycle) drives the hooks in a fixed
//! order (DESIGN.md §16):
//!
//! 1. **`train_on_fetch`** — once per instruction the fill engine walks
//!    past, *before* the instruction is appended to its FTQ entry. This is
//!    where AsmDB hints fire and where MANA observes line successions.
//! 2. **`train_on_btb_miss`** — when fill walks past a taken branch the
//!    BTB does not know. Shadow-branch prefetching records the branch here.
//! 3. **`issue_prefetch`** — once per *demand* line fetch the front-end is
//!    about to issue (aliased lines excluded), immediately before the L1-I
//!    access. Metadata-directed prefetchers react to the miss stream here.
//! 4. **`tick`** — once per cycle, after fetch issue. Latency-delayed
//!    work (metadata arrivals, replay queues) drains here.
//!
//! Implementations may touch only their own state plus the arguments each
//! hook hands them; the per-cycle hooks must be allocation-free in steady
//! state (pinned by the counting-allocator test in `swip-tests`).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use swip_branch::BranchUnit;
use swip_cache::MemoryHierarchy;
use swip_types::{Addr, BranchKind, Cycle, LineAddr};

use crate::hints::HintTable;
use crate::stats::FtqStats;
use crate::PreloadConfig;

/// A monotone summary of what a prefetcher has done so far.
///
/// Every counter only ever grows over a run (the trait-conformance suite
/// asserts this); the fields are deliberately mechanism-neutral so the
/// report layer can print any implementation the same way.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PrefetcherSnapshot {
    /// Training events absorbed (hint anchors seen, successions recorded,
    /// shadow branches captured).
    pub trained: u64,
    /// Prefetches actually issued into the memory hierarchy.
    pub issued: u64,
    /// Metadata requests sent (zero for mechanisms without a metadata
    /// store).
    pub metadata_requests: u64,
}

/// An instruction-prefetch mechanism plugged in at the L1I/front-end
/// boundary.
///
/// All hooks default to no-ops so a mechanism only implements the seams
/// it uses; `snapshot`/`set_enabled`/`enabled` are the mandatory surface.
/// See the module docs for the in-cycle hook order and the state each
/// hook may touch.
pub trait InstructionPrefetcher: Send {
    /// Per-cycle maintenance, after fetch issue: complete latency-delayed
    /// metadata arrivals and fire their prefetches.
    fn tick(&mut self, now: Cycle, mem: &mut MemoryHierarchy, stats: &mut FtqStats) {
        let _ = (now, mem, stats);
    }

    /// Observes one instruction the fill engine walks past (called before
    /// the instruction enters its FTQ entry).
    fn train_on_fetch(
        &mut self,
        pc: Addr,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        stats: &mut FtqStats,
    ) {
        let _ = (pc, now, mem, stats);
    }

    /// Observes a taken branch the BTB did not know about.
    fn train_on_btb_miss(&mut self, pc: Addr, kind: BranchKind, target: Addr, now: Cycle) {
        let _ = (pc, kind, target, now);
    }

    /// Reacts to a demand line fetch the front-end is about to issue.
    fn issue_prefetch(
        &mut self,
        line: LineAddr,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        branch: &mut BranchUnit,
        stats: &mut FtqStats,
    ) {
        let _ = (line, now, mem, branch, stats);
    }

    /// The mechanism's monotone activity counters.
    fn snapshot(&self) -> PrefetcherSnapshot;

    /// Enables or disables the mechanism. While disabled, no hook may
    /// train state or issue a prefetch.
    fn set_enabled(&mut self, enabled: bool);

    /// True when the mechanism is active (the default).
    fn enabled(&self) -> bool;
}

/// Fetch-directed prefetching: the decoupled FTQ run-ahead *is* the
/// prefetcher, so this implementation is a stateless no-op — it exists so
/// the baseline and FDP configurations route through the same seam as
/// everything else.
#[derive(Debug, Default)]
pub struct FdpPrefetcher {
    disabled: bool,
}

impl FdpPrefetcher {
    /// Creates the (stateless) FDP prefetcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InstructionPrefetcher for FdpPrefetcher {
    fn snapshot(&self) -> PrefetcherSnapshot {
        PrefetcherSnapshot::default()
    }

    fn set_enabled(&mut self, enabled: bool) {
        self.disabled = !enabled;
    }

    fn enabled(&self) -> bool {
        !self.disabled
    }
}

/// AsmDB-style software hints with no insertion overhead: when the fill
/// engine walks past a trigger PC, the planted target lines are
/// prefetched immediately (the paper's "AsmDB — No Insertion Overhead"
/// configuration).
pub struct AsmdbHintPrefetcher {
    /// Trigger PC → target lines, shared across the runs of a sweep.
    table: Arc<HintTable>,
    enabled: bool,
    trained: u64,
    issued: u64,
}

impl AsmdbHintPrefetcher {
    /// Wraps a shared hint table (keyed by trigger PC, as built by
    /// [`HintTable::from_pc_map`]).
    pub fn new(table: Arc<HintTable>) -> Self {
        AsmdbHintPrefetcher {
            table,
            enabled: true,
            trained: 0,
            issued: 0,
        }
    }
}

impl InstructionPrefetcher for AsmdbHintPrefetcher {
    fn train_on_fetch(
        &mut self,
        pc: Addr,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        stats: &mut FtqStats,
    ) {
        if !self.enabled {
            return;
        }
        // The table lookup borrows the shared targets slice — no clone.
        if let Some(targets) = self.table.get(pc.raw()) {
            self.trained += 1;
            for t in targets {
                mem.prefetch_instr(t.line(), now);
                stats.swpf_hinted.incr();
                self.issued += 1;
            }
        }
    }

    fn snapshot(&self) -> PrefetcherSnapshot {
        PrefetcherSnapshot {
            trained: self.trained,
            issued: self.issued,
            metadata_requests: 0,
        }
    }

    fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}

/// The §VI metadata-preloading extension behind the trait seam: an
/// LLC-side table of trigger line → targets, a small L1-side metadata
/// cache (FIFO), and latency-delayed metadata requests.
pub struct PreloadPrefetcher {
    config: PreloadConfig,
    /// The LLC-side table, preloaded at program start. Shared (not
    /// cloned) across the runs of a sweep.
    llc_table: Arc<HintTable>,
    /// The L1-side metadata cache (FIFO over trigger line numbers).
    l1_cache: VecDeque<u64>,
    /// Triggers with an outstanding metadata request: line → ready cycle.
    pending: HashMap<u64, Cycle>,
    /// Reused per-cycle scratch for the drained trigger lines (avoids a
    /// fresh `Vec` allocation on every `tick`).
    ready: Vec<u64>,
    enabled: bool,
    issued: u64,
    metadata_requests: u64,
}

impl PreloadPrefetcher {
    /// Wraps a shared LLC-side table (keyed by trigger line number, as
    /// built by [`HintTable::from_line_map`]).
    pub fn new(table: Arc<HintTable>, config: PreloadConfig) -> Self {
        PreloadPrefetcher {
            config,
            llc_table: table,
            l1_cache: VecDeque::new(),
            pending: HashMap::new(),
            ready: Vec::new(),
            enabled: true,
            issued: 0,
            metadata_requests: 0,
        }
    }
}

impl InstructionPrefetcher for PreloadPrefetcher {
    /// Consults the metadata structures for an L1-I access to `line`: an
    /// L1-side hit fires the prefetches immediately; otherwise a metadata
    /// request is sent to the LLC-side table (if it has an entry).
    fn issue_prefetch(
        &mut self,
        line: LineAddr,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        _branch: &mut BranchUnit,
        stats: &mut FtqStats,
    ) {
        if !self.enabled {
            return;
        }
        let key = line.number();
        if !self.llc_table.contains(key) {
            return;
        }
        if self.l1_cache.contains(&key) {
            stats.preload_l1_hits.incr();
            if let Some(targets) = self.llc_table.get(key) {
                for t in targets {
                    if mem.prefetch_instr(t.line(), now).is_some() {
                        stats.swpf_preloaded.incr();
                        self.issued += 1;
                    }
                }
            }
        } else if !self.pending.contains_key(&key) {
            stats.preload_metadata_requests.incr();
            self.metadata_requests += 1;
            self.pending.insert(key, now + self.config.metadata_latency);
        }
    }

    /// Completes outstanding metadata requests: installs their entries in
    /// the L1-side metadata cache and fires their prefetches.
    fn tick(&mut self, now: Cycle, mem: &mut MemoryHierarchy, stats: &mut FtqStats) {
        if !self.enabled {
            return;
        }
        // Reuse the scratch buffer for the drained lines; the shared
        // table lookup borrows its targets slice — no clones.
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        ready.extend(
            self.pending
                .iter()
                .filter(|&(_, &at)| at <= now)
                .map(|(&l, _)| l),
        );
        for &line in &ready {
            self.pending.remove(&line);
            if self.l1_cache.len() >= self.config.l1_entries {
                self.l1_cache.pop_front();
            }
            self.l1_cache.push_back(line);
            if let Some(targets) = self.llc_table.get(line) {
                for t in targets {
                    if mem.prefetch_instr(t.line(), now).is_some() {
                        stats.swpf_preloaded.incr();
                        self.issued += 1;
                    }
                }
            }
        }
        self.ready = ready;
    }

    fn snapshot(&self) -> PrefetcherSnapshot {
        PrefetcherSnapshot {
            trained: 0,
            issued: self.issued,
            metadata_requests: self.metadata_requests,
        }
    }

    fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}

/// Direct-mapped MANA record slot: one observed trigger line and the
/// successor lines recorded behind it.
#[derive(Copy, Clone, Debug)]
struct ManaRecord {
    tag: u64,
    targets: [u64; MANA_TARGETS],
    len: u8,
}

/// An in-flight MANA metadata arrival: the recorded targets, replayable
/// once the metadata latency elapses.
#[derive(Copy, Clone, Debug)]
struct ManaReplay {
    ready: Cycle,
    targets: [u64; MANA_TARGETS],
    len: u8,
}

/// Successor lines recorded per trigger (MANA packs a handful of spatial
/// regions per record; three successors approximates that footprint).
const MANA_TARGETS: usize = 3;
/// Direct-mapped record-table size (power of two).
const MANA_TABLE: usize = 1024;
/// In-flight metadata arrivals tracked at once.
const MANA_REPLAYS: usize = 16;
/// Cycles between a record-table hit and its replay firing, modeling the
/// metadata access.
const MANA_METADATA_LATENCY: Cycle = 24;

/// MANA-style record-and-replay (Ansari et al.): the fill stream trains a
/// record table of line→successor-lines successions; a demand fetch that
/// hits the table replays the recorded successors as prefetches after a
/// metadata access latency.
///
/// All storage is pre-allocated at construction; the per-cycle hooks do
/// not allocate (pinned by the counting-allocator test).
pub struct ManaPrefetcher {
    records: Vec<Option<ManaRecord>>,
    replays: Vec<Option<ManaReplay>>,
    /// The last instruction line the fill engine walked, i.e. the
    /// predecessor of the next observed succession.
    last_line: Option<u64>,
    enabled: bool,
    trained: u64,
    issued: u64,
    metadata_requests: u64,
}

impl Default for ManaPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ManaPrefetcher {
    /// Creates an empty record table (all storage pre-allocated).
    pub fn new() -> Self {
        ManaPrefetcher {
            records: vec![None; MANA_TABLE],
            replays: vec![None; MANA_REPLAYS],
            last_line: None,
            enabled: true,
            trained: 0,
            issued: 0,
            metadata_requests: 0,
        }
    }

    fn slot(line: u64) -> usize {
        (line as usize) & (MANA_TABLE - 1)
    }
}

impl InstructionPrefetcher for ManaPrefetcher {
    /// Records line successions along the fill path: when the walked line
    /// changes, the new line is appended to the record of the previous one.
    fn train_on_fetch(
        &mut self,
        pc: Addr,
        _now: Cycle,
        _mem: &mut MemoryHierarchy,
        _stats: &mut FtqStats,
    ) {
        if !self.enabled {
            return;
        }
        let line = pc.line().number();
        let Some(last) = self.last_line else {
            self.last_line = Some(line);
            return;
        };
        if last == line {
            return;
        }
        self.last_line = Some(line);
        let rec = &mut self.records[Self::slot(last)];
        let rec = match rec {
            Some(r) if r.tag == last => r,
            _ => {
                // Cold or conflicting slot: the new trigger evicts it.
                *rec = Some(ManaRecord {
                    tag: last,
                    targets: [0; MANA_TARGETS],
                    len: 0,
                });
                rec.as_mut().unwrap()
            }
        };
        let known = rec.targets[..rec.len as usize].contains(&line);
        if !known && (rec.len as usize) < MANA_TARGETS {
            rec.targets[rec.len as usize] = line;
            rec.len += 1;
            self.trained += 1;
        }
    }

    /// A demand fetch that hits the record table requests the record's
    /// replay (modeled as a metadata access of fixed latency).
    fn issue_prefetch(
        &mut self,
        line: LineAddr,
        now: Cycle,
        _mem: &mut MemoryHierarchy,
        _branch: &mut BranchUnit,
        stats: &mut FtqStats,
    ) {
        if !self.enabled {
            return;
        }
        let key = line.number();
        let Some(rec) = &self.records[Self::slot(key)] else {
            return;
        };
        if rec.tag != key || rec.len == 0 {
            return;
        }
        // One outstanding replay per trigger; drop when the queue is full
        // (fixed capacity keeps the hook allocation-free).
        let mut free = None;
        for (i, slot) in self.replays.iter().enumerate() {
            match slot {
                Some(r) if r.targets == rec.targets && r.len == rec.len => return,
                None if free.is_none() => free = Some(i),
                _ => {}
            }
        }
        let Some(free) = free else {
            return;
        };
        self.replays[free] = Some(ManaReplay {
            ready: now + MANA_METADATA_LATENCY,
            targets: rec.targets,
            len: rec.len,
        });
        stats.preload_metadata_requests.incr();
        self.metadata_requests += 1;
    }

    /// Fires the prefetches of every replay whose metadata has arrived.
    fn tick(&mut self, now: Cycle, mem: &mut MemoryHierarchy, stats: &mut FtqStats) {
        if !self.enabled {
            return;
        }
        for slot in self.replays.iter_mut() {
            let Some(replay) = slot else {
                continue;
            };
            if replay.ready > now {
                continue;
            }
            for &target in &replay.targets[..replay.len as usize] {
                if mem
                    .prefetch_instr(LineAddr::from_line_number(target), now)
                    .is_some()
                {
                    stats.swpf_preloaded.incr();
                    self.issued += 1;
                }
            }
            *slot = None;
        }
    }

    fn snapshot(&self) -> PrefetcherSnapshot {
        PrefetcherSnapshot {
            trained: self.trained,
            issued: self.issued,
            metadata_requests: self.metadata_requests,
        }
    }

    fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}

/// Direct-mapped shadow-branch slot: a branch discovered past a BTB miss,
/// keyed by the line it lives in.
#[derive(Copy, Clone, Debug)]
struct ShadowEntry {
    tag: u64,
    pc: Addr,
    kind: BranchKind,
    target: Addr,
}

/// Direct-mapped shadow-branch table size (power of two).
const SHADOW_TABLE: usize = 512;

/// Shadow-branch BTB pre-fill ("Exposing Shadow Branches"): taken
/// branches the BTB missed are recorded by line; the next demand fetch of
/// that line replays the branch into the BTB ahead of decode and prefetches
/// its target line, so the front-end no longer runs straight past it.
///
/// Entries are consumed on replay — the BTB owns the branch from then on,
/// so a stale shadow copy can never fight later BTB updates.
pub struct ShadowBtbPrefetcher {
    entries: Vec<Option<ShadowEntry>>,
    enabled: bool,
    trained: u64,
    issued: u64,
}

impl Default for ShadowBtbPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowBtbPrefetcher {
    /// Creates an empty shadow table (all storage pre-allocated).
    pub fn new() -> Self {
        ShadowBtbPrefetcher {
            entries: vec![None; SHADOW_TABLE],
            enabled: true,
            trained: 0,
            issued: 0,
        }
    }

    fn slot(line: u64) -> usize {
        (line as usize) & (SHADOW_TABLE - 1)
    }
}

impl InstructionPrefetcher for ShadowBtbPrefetcher {
    /// Records a taken branch the BTB ran past, keyed by its line.
    fn train_on_btb_miss(&mut self, pc: Addr, kind: BranchKind, target: Addr, _now: Cycle) {
        if !self.enabled {
            return;
        }
        let tag = pc.line().number();
        self.entries[Self::slot(tag)] = Some(ShadowEntry {
            tag,
            pc,
            kind,
            target,
        });
        self.trained += 1;
    }

    /// Replays the recorded branch (if any) for a demand-fetched line:
    /// pre-fills the BTB and prefetches the branch target's line.
    fn issue_prefetch(
        &mut self,
        line: LineAddr,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        branch: &mut BranchUnit,
        stats: &mut FtqStats,
    ) {
        if !self.enabled {
            return;
        }
        let key = line.number();
        let slot = &mut self.entries[Self::slot(key)];
        let Some(entry) = slot else {
            return;
        };
        if entry.tag != key {
            return;
        }
        branch.train_btb_from_predecode(entry.pc, entry.kind, entry.target);
        if mem.prefetch_instr(entry.target.line(), now).is_some() {
            stats.swpf_hinted.incr();
            self.issued += 1;
        }
        *slot = None;
    }

    fn snapshot(&self) -> PrefetcherSnapshot {
        PrefetcherSnapshot {
            trained: self.trained,
            issued: self.issued,
            metadata_requests: 0,
        }
    }

    fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}
