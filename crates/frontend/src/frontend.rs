//! The fetch-directed-prefetching fill/fetch/decode engine.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use swip_branch::BranchUnit;
use swip_cache::MemoryHierarchy;
use swip_trace::Trace;
use swip_types::{Addr, Cycle, InstrKind, Instruction, SeqNum};

use crate::entry::{FtqEntry, LineState};
use crate::hints::HintTable;
use crate::prefetch::{
    AsmdbHintPrefetcher, FdpPrefetcher, InstructionPrefetcher, PreloadPrefetcher,
};
use crate::stats::{FtqStats, Scenario};
use crate::timeline::{ScenarioTimeline, TimelineConfig};
use crate::{FrontendConfig, PreloadConfig};

/// An instruction handed from the front-end to decode/dispatch.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DecodedInstr {
    /// Trace index of the instruction.
    pub seq: SeqNum,
    /// True if the front-end mispredicted this (branch) instruction and is
    /// stalled waiting for its resolution.
    pub mispredicted: bool,
}

/// Why the fill engine is not producing new FTQ entries.
// The `Until` prefix is the point: each variant names the event that
// unblocks fill.
#[allow(clippy::enum_variant_names)]
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Blocked {
    /// A mispredicted branch must resolve at execute.
    UntilResolve { seq: SeqNum },
    /// A BTB-missed taken branch (or stale BTB hit) awaits pre-decode
    /// confirmation (post-fetch correction).
    UntilPredecode { start_seq: SeqNum },
    /// Redirect accepted; fill resumes at the given cycle.
    UntilCycle { at: Cycle },
}

/// The fetch target queue: an inspection wrapper over the entry deque.
///
/// Exposed read-only so tests and reports can examine occupancy and entry
/// state without reaching into the engine.
#[derive(Clone, Debug, Default)]
pub struct Ftq {
    entries: VecDeque<FtqEntry>,
    capacity: usize,
}

impl Ftq {
    fn new(capacity: usize) -> Self {
        Ftq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further entries fit.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Configured depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The head entry, if any.
    pub fn head(&self) -> Option<&FtqEntry> {
        self.entries.front()
    }

    /// Iterates entries from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &FtqEntry> {
        self.entries.iter()
    }
}

/// The decoupled front-end engine.
///
/// Drive it with [`Frontend::cycle`] once per simulated cycle and feed branch
/// resolutions back through [`Frontend::handle_resolution`]. See the crate
/// docs for an end-to-end example.
pub struct Frontend {
    config: FrontendConfig,
    branch: BranchUnit,
    ftq: Ftq,
    /// Next trace index the fill engine will enqueue.
    cursor: SeqNum,
    blocked: Option<Blocked>,
    /// Lines tracked by current FTQ entries: line → (completion, refcount).
    /// New requests to a tracked line alias instead of accessing the L1-I.
    tracked_lines: HashMap<u64, (Cycle, u32)>,
    /// Count of [`LineState::Pending`] lines across the whole FTQ, so the
    /// per-cycle fetch-issue pass can skip its entry/line scan when nothing
    /// is waiting to issue (the common steady state).
    pending_lines: usize,
    /// Branches the front-end mispredicted, pending resolution.
    mispredicted: HashSet<SeqNum>,
    /// The instruction-prefetch mechanism plugged in at the L1I boundary
    /// (DESIGN.md §16). Defaults to [`FdpPrefetcher`], whose hooks are
    /// no-ops — the decoupled FTQ run-ahead is the prefetcher.
    prefetcher: Box<dyn InstructionPrefetcher>,
    /// Optional strided scenario sampler (telemetry, off by default).
    timeline: Option<ScenarioTimeline>,
    stats: FtqStats,
}

impl fmt::Debug for Frontend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Frontend")
            .field("cursor", &self.cursor)
            .field("ftq_len", &self.ftq.len())
            .field("blocked", &self.blocked)
            .finish_non_exhaustive()
    }
}

impl Frontend {
    /// Creates a front-end from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FrontendConfig::validate`].
    pub fn new(config: FrontendConfig) -> Self {
        config.validate();
        Frontend {
            branch: BranchUnit::new(config.branch.clone()),
            ftq: Ftq::new(config.ftq_entries),
            cursor: 0,
            blocked: None,
            tracked_lines: HashMap::new(),
            pending_lines: 0,
            mispredicted: HashSet::new(),
            prefetcher: Box::new(FdpPrefetcher::new()),
            timeline: None,
            stats: FtqStats::default(),
            config,
        }
    }

    /// Enables the cycle-sampled scenario timeline. Telemetry only: it does
    /// not affect simulation results.
    pub fn enable_timeline(&mut self, config: TimelineConfig) {
        self.timeline = Some(ScenarioTimeline::new(config));
    }

    /// The scenario timeline, if enabled.
    pub fn timeline(&self) -> Option<&ScenarioTimeline> {
        self.timeline.as_ref()
    }

    /// Detaches the scenario timeline (if enabled), leaving it disabled.
    pub fn take_timeline(&mut self) -> Option<ScenarioTimeline> {
        self.timeline.take()
    }

    /// Installs no-overhead software-prefetch hints: when an instruction at
    /// a trigger PC is inserted into the FTQ, the given target lines are
    /// prefetched without any instruction overhead (the paper's
    /// "AsmDB — No Insertion Overhead" configuration).
    ///
    /// Convenience wrapper over [`Frontend::set_hint_table`] that builds a
    /// private table; sweeps should build one [`HintTable`] per workload
    /// and share it.
    pub fn set_prefetch_hints(&mut self, hints: HashMap<Addr, Vec<Addr>>) {
        self.set_hint_table(Arc::new(HintTable::from_pc_map(&hints)));
    }

    /// Installs a shared no-overhead software-prefetch hint table (keyed by
    /// trigger PC, as built by [`HintTable::from_pc_map`]). The `Arc` is
    /// stored as-is — no per-run copy is made.
    ///
    /// Equivalent to `set_prefetcher(Box::new(AsmdbHintPrefetcher::new(table)))`.
    pub fn set_hint_table(&mut self, table: Arc<HintTable>) {
        self.prefetcher = Box::new(AsmdbHintPrefetcher::new(table));
    }

    /// Installs an arbitrary [`InstructionPrefetcher`] implementation,
    /// replacing whatever mechanism was active (the default is
    /// [`FdpPrefetcher`]).
    pub fn set_prefetcher(&mut self, prefetcher: Box<dyn InstructionPrefetcher>) {
        self.prefetcher = prefetcher;
    }

    /// The active prefetch mechanism (for snapshot inspection).
    pub fn prefetcher(&self) -> &dyn InstructionPrefetcher {
        self.prefetcher.as_ref()
    }

    /// Mutable access to the active prefetch mechanism (tests use this to
    /// toggle [`InstructionPrefetcher::set_enabled`] mid-run).
    pub fn prefetcher_mut(&mut self) -> &mut dyn InstructionPrefetcher {
        self.prefetcher.as_mut()
    }

    /// Enables the §VI metadata-preloading extension: `metadata` (trigger
    /// line number → prefetch targets) is preloaded into an LLC-side table;
    /// each L1-I line request consults a small L1-side metadata cache and,
    /// on a miss there, fetches the entry from the LLC table after the
    /// configured latency before firing its prefetches.
    ///
    /// Convenience wrapper over [`Frontend::set_preload_table`] that builds
    /// a private table; sweeps should build one [`HintTable`] per workload
    /// and share it.
    pub fn set_preload_metadata(
        &mut self,
        metadata: HashMap<u64, Vec<Addr>>,
        config: PreloadConfig,
    ) {
        self.set_preload_table(Arc::new(HintTable::from_line_map(&metadata)), config);
    }

    /// Enables the §VI metadata-preloading extension with a shared LLC-side
    /// table (keyed by trigger line number, as built by
    /// [`HintTable::from_line_map`]). The `Arc` is stored as-is — no
    /// per-run copy is made.
    ///
    /// Equivalent to `set_prefetcher(Box::new(PreloadPrefetcher::new(table, config)))`.
    pub fn set_preload_table(&mut self, table: Arc<HintTable>, config: PreloadConfig) {
        self.prefetcher = Box::new(PreloadPrefetcher::new(table, config));
    }

    /// The front-end configuration.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// Front-end statistics.
    pub fn stats(&self) -> &FtqStats {
        &self.stats
    }

    /// Detaches the front-end statistics, leaving zeroed counters behind.
    ///
    /// Report assembly runs once, after the simulation loop; moving the
    /// stats out avoids cloning the whole block per run.
    pub fn take_stats(&mut self) -> FtqStats {
        std::mem::take(&mut self.stats)
    }

    /// Branch-prediction statistics and structures.
    pub fn branch_unit(&self) -> &BranchUnit {
        &self.branch
    }

    /// Read-only view of the FTQ.
    pub fn ftq(&self) -> &Ftq {
        &self.ftq
    }

    /// True once the whole trace has been enqueued and drained to decode.
    pub fn is_done(&self, trace: &Trace) -> bool {
        !cursor_in_bounds(self.cursor, trace.len()) && self.ftq.is_empty()
    }

    /// Runs one front-end cycle: unblock, pre-decode, fill, fetch-issue,
    /// taxonomy accounting, and promotion. Decoded instructions are appended
    /// to `out` in program order. At most `min(decode_width, decode_budget)`
    /// instructions are promoted — pass the backend's free dispatch slots to
    /// model ROB back-pressure, or `usize::MAX` for an unbounded consumer.
    pub fn cycle(
        &mut self,
        now: Cycle,
        trace: &Trace,
        mem: &mut MemoryHierarchy,
        decode_budget: usize,
        out: &mut Vec<DecodedInstr>,
    ) {
        if let Some(Blocked::UntilCycle { at }) = self.blocked {
            if now >= at {
                self.blocked = None;
            }
        }
        self.fill(now, trace, mem);
        self.issue_fetches(now, mem);
        self.prefetcher.tick(now, mem, &mut self.stats);
        // Pre-decode runs after fetch-issue so entries that complete
        // instantly (aliasing an already-fetched line) are still pre-decoded
        // before they can reach decode — promotion is gated on it.
        self.predecode(now, trace, mem);
        self.account(now);
        self.promote(now, decode_budget, out);
    }

    /// Feeds a resolved branch back into the front-end: predictor training
    /// plus (for the branch the fill engine is stalled on) the redirect that
    /// resumes fill after the configured penalty.
    pub fn handle_resolution(&mut self, seq: SeqNum, instr: &Instruction, resolved_at: Cycle) {
        let InstrKind::Branch {
            kind,
            target,
            taken,
        } = instr.kind
        else {
            return;
        };
        let was_mispredicted = self.mispredicted.remove(&seq);
        self.branch
            .resolve(instr.pc, kind, target, taken, was_mispredicted);
        if let Some(Blocked::UntilResolve { seq: s }) = self.blocked {
            if s == seq {
                self.blocked = Some(Blocked::UntilCycle {
                    at: resolved_at + self.config.redirect_penalty,
                });
                self.branch.resync_speculative();
            }
        }
    }

    /// Pre-decodes entries whose fetch completed: fires software instruction
    /// prefetches and applies post-fetch correction.
    fn predecode(&mut self, now: Cycle, trace: &Trace, mem: &mut MemoryHierarchy) {
        for entry in self.ftq.entries.iter_mut() {
            if entry.predecoded {
                continue;
            }
            let Some(done) = entry.completion_cycle() else {
                continue;
            };
            if done > now {
                continue;
            }
            entry.predecoded = true;
            entry.fetch_done_at = Some(done);

            let (start, end) = entry.seq_range();
            for seq in start..end {
                let instr = &trace.instructions()[seq as usize];
                if let InstrKind::PrefetchI { target } = instr.kind {
                    mem.prefetch_instr(target.line(), now);
                    self.stats.swpf_executed.incr();
                }
            }

            if entry.pfc_pending {
                entry.pfc_pending = false;
                if let Some(Blocked::UntilPredecode { start_seq }) = self.blocked {
                    if start_seq == entry.start_seq {
                        self.blocked = Some(Blocked::UntilCycle {
                            at: now + self.config.redirect_penalty,
                        });
                        self.stats.redirects_predecode.incr();
                        // Teach the BTB about the discovered branch and fold
                        // it into the speculative history (the paper's GHR
                        // "flush and update" improvement).
                        let last = &trace.instructions()[(end - 1) as usize];
                        if let InstrKind::Branch {
                            kind,
                            target,
                            taken: true,
                        } = last.kind
                        {
                            self.branch.train_btb_from_predecode(last.pc, kind, target);
                        }
                    }
                }
            }
        }
    }

    /// Appends new basic blocks to the FTQ along the predicted (== trace)
    /// path until bandwidth, capacity, a redirect, or trace end stops it.
    fn fill(&mut self, now: Cycle, trace: &Trace, mem: &mut MemoryHierarchy) {
        if self.blocked.is_some() {
            return;
        }
        let mut blocks = 0;
        while blocks < self.config.fill_blocks_per_cycle
            && !self.ftq.is_full()
            && cursor_in_bounds(self.cursor, trace.len())
            && self.blocked.is_none()
        {
            let entry = self.form_block(now, trace, mem);
            debug_assert!(!entry.is_empty());
            self.stats.blocks_enqueued.incr();
            self.stats.instrs_enqueued.add(entry.count as u64);
            // Every line of a freshly formed block is Pending.
            self.pending_lines += entry.lines.len();
            let becomes_stalling_head = self.ftq.is_empty();
            self.ftq.entries.push_back(entry);
            if becomes_stalling_head {
                // The entry enters the head position with its fetch not yet
                // complete (it has not even issued) — a Fig-11 event.
                self.stats.partially_covered_entries.incr();
                if let Some(head) = self.ftq.entries.front_mut() {
                    head.stalled_at_head = true;
                }
            }
            blocks += 1;
        }
    }

    /// Forms one basic block starting at the cursor, consulting the branch
    /// unit per instruction and recording any redirect condition.
    fn form_block(&mut self, now: Cycle, trace: &Trace, mem: &mut MemoryHierarchy) -> FtqEntry {
        let mut entry = FtqEntry::new(self.cursor, now);
        let instrs = trace.instructions();
        while (entry.count as usize) < self.config.max_block_instrs
            && cursor_in_bounds(self.cursor, instrs.len())
        {
            let seq = self.cursor;
            let instr = &instrs[seq as usize];

            // Prefetcher training fires at FTQ insert (hook 1, DESIGN.md
            // §16): AsmDB hints issue here, MANA observes successions.
            self.prefetcher
                .train_on_fetch(instr.pc, now, mem, &mut self.stats);

            entry.count += 1;
            self.cursor += 1;
            entry.add_line(instr.pc.line());
            entry.add_line(instr.pc.add(instr.size.max(1) as u64 - 1).line());

            let prediction = self.branch.predict_at(instr.pc);
            // Keep the speculative history on the fill path: commit the
            // actual outcome of every branch the fill engine walks past.
            if let InstrKind::Branch {
                kind,
                target,
                taken,
            } = instr.kind
            {
                self.branch.commit_spec(instr.pc, kind, target, taken);
            }
            match (prediction, instr.kind) {
                (
                    None,
                    InstrKind::Branch {
                        kind,
                        target,
                        taken: true,
                    },
                ) => {
                    // The BTB does not know this taken branch: the front-end
                    // would run straight past it. Discovered at pre-decode
                    // (PFC) or, without PFC, at execute. Shadow-branch
                    // prefetching records the miss here (hook 2).
                    self.prefetcher
                        .train_on_btb_miss(instr.pc, kind, target, now);
                    self.mispredicted.insert(seq);
                    entry.mispredicted_seq = Some(seq);
                    if self.config.enable_pfc {
                        entry.pfc_pending = true;
                        self.blocked = Some(Blocked::UntilPredecode {
                            start_seq: entry.start_seq,
                        });
                    } else {
                        self.blocked = Some(Blocked::UntilResolve { seq });
                        self.stats.redirects_execute.incr();
                    }
                    break;
                }
                (None, _) => {
                    // Non-branch, or an invisible not-taken branch: sequential.
                }
                (
                    Some(p),
                    InstrKind::Branch {
                        kind,
                        target,
                        taken,
                    },
                ) => {
                    let correct = p.taken == taken && (!taken || p.target == target);
                    if correct {
                        if taken {
                            break; // block ends at a correctly-predicted taken branch
                        }
                    } else {
                        if p.taken != taken {
                            self.stats.mispredicts_cond.incr();
                        } else {
                            match kind {
                                swip_types::BranchKind::Return => {
                                    self.stats.mispredicts_return.incr()
                                }
                                k if k.is_indirect() => self.stats.mispredicts_indirect.incr(),
                                _ => self.stats.mispredicts_other.incr(),
                            }
                        }
                        self.mispredicted.insert(seq);
                        entry.mispredicted_seq = Some(seq);
                        self.blocked = Some(Blocked::UntilResolve { seq });
                        self.stats.redirects_execute.incr();
                        break;
                    }
                }
                (Some(p), _) => {
                    if p.taken {
                        // Stale BTB entry predicts a taken branch at a
                        // non-branch PC: the front-end diverges until the
                        // pre-decoder sees there is no branch here.
                        entry.pfc_pending = true;
                        self.blocked = Some(Blocked::UntilPredecode {
                            start_seq: entry.start_seq,
                        });
                        break;
                    }
                }
            }
        }
        entry
    }

    /// Issues pending line fetches, bounded by fetch bandwidth, merging with
    /// lines already tracked by the FTQ.
    fn issue_fetches(&mut self, now: Cycle, mem: &mut MemoryHierarchy) {
        if self.pending_lines == 0 {
            return; // nothing Pending anywhere in the FTQ
        }
        let mut budget = self.config.fetch_lines_per_cycle;
        for entry in self.ftq.entries.iter_mut() {
            if budget == 0 {
                break;
            }
            for (line, state) in entry.lines.iter_mut() {
                if budget == 0 {
                    break;
                }
                if *state != LineState::Pending {
                    continue;
                }
                if let Some((done, refs)) = self.tracked_lines.get_mut(&line.number()) {
                    *state = LineState::InFlight {
                        done: *done,
                        aliased: true,
                    };
                    self.pending_lines -= 1;
                    *refs += 1;
                    self.stats.aliased_line_requests.incr();
                    continue; // aliasing consumes no cache port
                }
                // Hook 3: the prefetcher sees every demand line fetch just
                // before the L1-I access (metadata-directed mechanisms and
                // shadow-branch replay key off the miss stream).
                self.prefetcher
                    .issue_prefetch(*line, now, mem, &mut self.branch, &mut self.stats);
                let result = mem.fetch_instr(*line, now);
                if result.complete_at == Cycle::MAX {
                    // MSHR full: port consumed, retry next cycle.
                    self.stats.mshr_stalls.incr();
                    budget -= 1;
                    continue;
                }
                *state = LineState::InFlight {
                    done: result.complete_at,
                    aliased: false,
                };
                self.pending_lines -= 1;
                self.tracked_lines
                    .insert(line.number(), (result.complete_at, 1));
                self.stats.line_requests.incr();
                budget -= 1;
            }
        }
    }

    /// Classifies the FTQ state for this cycle and maintains the Fig-9/10
    /// counters.
    fn account(&mut self, now: Cycle) {
        self.stats.cycles.incr();
        if self.blocked.is_some() {
            self.stats.fill_blocked_cycles.incr();
        }
        let scenario = self.scenario(now);
        if let Some(timeline) = self.timeline.as_mut() {
            timeline.record(now, scenario);
        }
        match scenario {
            Scenario::Empty => self.stats.empty_cycles.incr(),
            Scenario::ShootThrough => self.stats.s1_cycles.incr(),
            Scenario::StallingHead => {
                self.stats.s2_cycles.incr();
                self.note_head_stall(now);
            }
            Scenario::ShadowStall => {
                self.stats.s3_cycles.incr();
                self.note_head_stall(now);
            }
        }
        // Runtime mirrors of the static rule catalog (DESIGN.md §8), active
        // only under the `invariants` feature: the same properties
        // `swip-analyze` proves statically, asserted while simulating.
        #[cfg(feature = "invariants")]
        {
            assert!(
                self.ftq.len() <= self.ftq.capacity(),
                "I001: FTQ occupancy {} exceeds capacity {} at cycle {now}",
                self.ftq.len(),
                self.ftq.capacity()
            );
            let scenario_sum = self.stats.s1_cycles.get()
                + self.stats.s2_cycles.get()
                + self.stats.s3_cycles.get()
                + self.stats.empty_cycles.get();
            assert_eq!(
                self.stats.cycles.get(),
                scenario_sum,
                "I002: scenario classification is not exhaustive/exclusive at cycle {now}"
            );
        }
    }

    fn note_head_stall(&mut self, now: Cycle) {
        self.stats.head_stall_cycles.incr();
        let mut iter = self.ftq.entries.iter_mut();
        if let Some(head) = iter.next() {
            head.stalled_at_head = true;
        }
        for e in iter {
            debug_assert_eq!(e.predecoded, e.is_fetch_complete(now));
            if e.predecoded {
                // Cycle-sum semantics (Fig 10): every cycle an entry spends
                // fetch-complete behind a stalling head counts.
                e.counted_waiting = true;
                self.stats.entries_waiting_on_head.incr();
            }
        }
    }

    /// The FTQ state this cycle, per the paper's taxonomy (operationally:
    /// head-complete ⇒ Scenario 1, since decode is not blocked).
    ///
    /// Must be called after pre-decode has run for `now` (`cycle`
    /// guarantees this): the `predecoded` flag then stands in for
    /// the per-line completion scan, turning classification from
    /// O(entries × lines) into O(entries).
    pub fn scenario(&self, now: Cycle) -> Scenario {
        let Some(head) = self.ftq.head() else {
            return Scenario::Empty;
        };
        debug_assert_eq!(head.predecoded, head.is_fetch_complete(now));
        if head.predecoded {
            return Scenario::ShootThrough;
        }
        let any_incomplete_behind = self.ftq.iter().skip(1).any(|e| {
            debug_assert_eq!(e.predecoded, e.is_fetch_complete(now));
            !e.predecoded
        });
        if any_incomplete_behind {
            Scenario::ShadowStall
        } else {
            Scenario::StallingHead
        }
    }

    /// Promotes up to `decode_width` instructions from fetch-complete head
    /// entries, in program order.
    fn promote(&mut self, now: Cycle, decode_budget: usize, out: &mut Vec<DecodedInstr>) {
        let mut budget = self.config.decode_width.min(decode_budget) as u32;
        while budget > 0 {
            let Some(head) = self.ftq.entries.front_mut() else {
                break;
            };
            // `predecoded` implies fetch-complete: pre-decode only marks an
            // entry once every line has landed, and completion is monotone.
            debug_assert!(!head.predecoded || head.is_fetch_complete(now));
            if !head.predecoded {
                break;
            }
            let take = head.remaining().min(budget);
            for k in 0..take {
                let seq = head.start_seq + (head.consumed + k) as u64;
                out.push(DecodedInstr {
                    seq,
                    mispredicted: head.mispredicted_seq == Some(seq),
                });
            }
            head.consumed += take;
            budget -= take;
            self.stats.instrs_decoded.add(take as u64);
            if head.remaining() == 0 {
                self.retire_head(now);
            }
        }
    }

    /// Pops the fully-consumed head entry, recording its Fig-8 latency
    /// bucket, releasing its tracked lines, and noting whether the new head
    /// arrives with an incomplete fetch (Fig 11).
    fn retire_head(&mut self, now: Cycle) {
        let head = self
            .ftq
            .entries
            .pop_front()
            .expect("retire_head requires a head entry");
        let latency = head
            .fetch_done_at
            .unwrap_or(now)
            .saturating_sub(head.enqueued_at);
        if head.stalled_at_head {
            self.stats.head_fetch_cycles.push(latency);
        } else {
            self.stats.nonhead_fetch_cycles.push(latency);
        }
        for (line, state) in &head.lines {
            if matches!(state, LineState::InFlight { .. }) {
                if let Some((_, refs)) = self.tracked_lines.get_mut(&line.number()) {
                    *refs -= 1;
                    if *refs == 0 {
                        self.tracked_lines.remove(&line.number());
                    }
                }
            }
        }
        if let Some(new_head) = self.ftq.entries.front_mut() {
            debug_assert_eq!(new_head.predecoded, new_head.is_fetch_complete(now));
            if !new_head.predecoded {
                self.stats.partially_covered_entries.incr();
                new_head.stalled_at_head = true;
            }
        }
    }
}

/// True while the fill cursor still points inside the trace.
///
/// The comparison is done in `u64` space: the cursor is a [`SeqNum`] and
/// casting it to `usize` truncates on 32-bit targets once a trace reaches
/// 2^32 instructions, which would wrap the cursor back into bounds and
/// re-enqueue the trace from the start.
fn cursor_in_bounds(cursor: SeqNum, trace_len: usize) -> bool {
    cursor < trace_len as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_cache::HierarchyConfig;
    use swip_trace::TraceBuilder;

    fn tiny_mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::tiny())
    }

    fn config(ftq: usize) -> FrontendConfig {
        FrontendConfig::industry_standard().with_ftq_entries(ftq)
    }

    /// Runs the front-end to completion with immediate branch resolution
    /// (a perfect, single-cycle backend), returning decoded seqs.
    fn run_to_completion(
        fe: &mut Frontend,
        trace: &Trace,
        mem: &mut MemoryHierarchy,
        max_cycles: u64,
    ) -> Vec<DecodedInstr> {
        let mut all = Vec::new();
        let mut now = 0;
        while !fe.is_done(trace) && now < max_cycles {
            let mut out = Vec::new();
            fe.cycle(now, trace, mem, usize::MAX, &mut out);
            for d in &out {
                let instr = &trace.instructions()[d.seq as usize];
                if instr.is_branch() {
                    fe.handle_resolution(d.seq, instr, now + 1);
                }
            }
            all.extend(out);
            now += 1;
        }
        assert!(
            fe.is_done(trace),
            "front-end did not drain in {max_cycles} cycles"
        );
        all
    }

    fn straight_line(n: usize) -> Trace {
        let mut b = TraceBuilder::new("straight");
        for _ in 0..n {
            b.alu();
        }
        b.finish()
    }

    #[test]
    fn delivers_all_instructions_in_order() {
        let trace = straight_line(100);
        let mut fe = Frontend::new(config(24));
        let mut mem = tiny_mem();
        let decoded = run_to_completion(&mut fe, &trace, &mut mem, 100_000);
        assert_eq!(decoded.len(), 100);
        for (i, d) in decoded.iter().enumerate() {
            assert_eq!(d.seq, i as u64);
        }
    }

    #[test]
    fn blocks_respect_max_size() {
        let trace = straight_line(64);
        let mut fe = Frontend::new(config(24));
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 100_000);
        // 64 straight-line instructions => 8 blocks of 8.
        assert_eq!(fe.stats().blocks_enqueued.get(), 8);
        assert_eq!(fe.stats().instrs_enqueued.get(), 64);
    }

    #[test]
    fn loop_trace_with_trained_btb_runs_ahead() {
        // A tight loop: after the first iteration resolves, the BTB knows the
        // back-edge and fill proceeds without execute redirects.
        let mut b = TraceBuilder::new("loop");
        for _ in 0..50 {
            b.set_pc(Addr::new(0x100));
            b.alu();
            b.alu();
            b.cond_branch(Addr::new(0x100), true);
        }
        let trace = b.finish();
        let mut fe = Frontend::new(config(24));
        let mut mem = tiny_mem();
        let decoded = run_to_completion(&mut fe, &trace, &mut mem, 100_000);
        assert_eq!(decoded.len(), 150);
        // The first back-edge is a BTB miss; later ones should mostly be
        // predicted (a few mispredicts while the predictor warms up).
        assert!(fe.stats().redirects_predecode.get() >= 1);
        assert!(
            fe.stats().redirects_execute.get() <= 10,
            "too many execute redirects: {}",
            fe.stats().redirects_execute.get()
        );
    }

    #[test]
    fn ftq_capacity_bounds_occupancy() {
        let trace = straight_line(1000);
        let mut fe = Frontend::new(config(2));
        let mut mem = tiny_mem();
        let mut now = 0;
        while !fe.is_done(&trace) && now < 100_000 {
            let mut out = Vec::new();
            fe.cycle(now, &trace, &mut mem, usize::MAX, &mut out);
            assert!(fe.ftq().len() <= 2);
            now += 1;
        }
    }

    #[test]
    fn aliasing_merges_same_line_blocks() {
        // A tiny loop whose body fits in one line: with a warm BTB the FTQ
        // holds many entries pointing at the same line, which must merge.
        let mut b = TraceBuilder::new("alias");
        for _ in 0..200 {
            b.set_pc(Addr::new(0x100));
            b.alu();
            b.cond_branch(Addr::new(0x100), true);
        }
        let trace = b.finish();
        let mut fe = Frontend::new(config(24));
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 100_000);
        assert!(
            fe.stats().aliased_line_requests.get() > 0,
            "deep FTQ over a one-line loop must alias"
        );
    }

    #[test]
    fn deeper_ftq_aliases_more() {
        let mk = || {
            let mut b = TraceBuilder::new("alias2");
            for _ in 0..300 {
                b.set_pc(Addr::new(0x100));
                b.alu();
                b.alu();
                b.cond_branch(Addr::new(0x100), true);
            }
            b.finish()
        };
        let run = |ftq: usize| {
            let trace = mk();
            let mut fe = Frontend::new(config(ftq));
            let mut mem = tiny_mem();
            run_to_completion(&mut fe, &trace, &mut mem, 200_000);
            fe.stats().alias_fraction()
        };
        assert!(
            run(24) > run(2),
            "24-entry FTQ should alias more than 2-entry"
        );
    }

    #[test]
    fn head_stall_statistics_populate_on_cold_misses() {
        // Straight-line code over many lines: every other block misses cold.
        let trace = straight_line(512);
        let mut fe = Frontend::new(config(24));
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 1_000_000);
        assert!(fe.stats().head_stall_cycles.get() > 0);
        assert!(fe.stats().partially_covered_entries.get() > 0);
        assert!(
            fe.stats().head_fetch_cycles.count() + fe.stats().nonhead_fetch_cycles.count()
                == fe.stats().blocks_enqueued.get()
        );
    }

    #[test]
    fn prefetch_instruction_triggers_hierarchy_prefetch() {
        let far = Addr::new(0x40_000);
        let mut b = TraceBuilder::new("pf");
        b.prefetch_i(far);
        for _ in 0..20 {
            b.alu();
        }
        let trace = b.finish();
        let mut fe = Frontend::new(config(24));
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 100_000);
        assert_eq!(fe.stats().swpf_executed.get(), 1);
        assert!(mem.l1i_contains(far.line()));
    }

    #[test]
    fn hints_fire_without_trace_prefetches() {
        let far = Addr::new(0x40_000);
        let trace = straight_line(20);
        let mut fe = Frontend::new(config(24));
        let mut hints = HashMap::new();
        hints.insert(Addr::new(0x8), vec![far]);
        fe.set_prefetch_hints(hints);
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 100_000);
        assert_eq!(fe.stats().swpf_hinted.get(), 1);
        assert!(mem.l1i_contains(far.line()));
    }

    #[test]
    fn mispredicted_branch_blocks_fill_until_resolution() {
        // Trace alternates taken/not-taken so the predictor cannot be
        // perfect; check that fill stalls are accounted and everything still
        // drains.
        let mut b = TraceBuilder::new("mix");
        for i in 0..100 {
            b.set_pc(Addr::new(0x100 + (i % 7) * 0x40));
            b.alu();
            let taken = i % 3 == 0;
            let target = Addr::new(0x100 + ((i + 1) % 7) * 0x40);
            if taken {
                b.cond_branch(target, true);
            } else {
                b.cond_branch(target, false);
                b.jump(Addr::new(0x100 + ((i + 1) % 7) * 0x40));
            }
        }
        let trace = b.finish();
        let n = trace.len();
        let mut fe = Frontend::new(config(24));
        let mut mem = tiny_mem();
        let decoded = run_to_completion(&mut fe, &trace, &mut mem, 1_000_000);
        assert_eq!(decoded.len(), n);
        assert!(fe.stats().fill_blocked_cycles.get() > 0);
    }

    #[test]
    fn preload_metadata_fires_on_l1i_access() {
        // Straight-line code; trigger = the first line, target = a far line.
        let far = Addr::new(0x40_000);
        let trace = straight_line(64);
        let mut fe = Frontend::new(config(24));
        let mut metadata = HashMap::new();
        metadata.insert(Addr::new(0x0).line().number(), vec![far]);
        // Latency chosen so the metadata arrives once the cold-start misses
        // have drained the tiny MSHR file.
        fe.set_preload_metadata(
            metadata,
            crate::PreloadConfig {
                l1_entries: 8,
                metadata_latency: 90,
            },
        );
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 100_000);
        assert_eq!(fe.stats().preload_metadata_requests.get(), 1);
        assert!(fe.stats().swpf_preloaded.get() >= 1);
        assert!(mem.l1i_contains(far.line()));
    }

    #[test]
    fn preload_l1_cache_hits_skip_metadata_latency() {
        // A loop re-fetching the same trigger line: after the first metadata
        // request installs the entry, later accesses hit the L1-side cache.
        let far = Addr::new(0x40_000);
        let mut b = TraceBuilder::new("preloop");
        for _ in 0..100 {
            b.set_pc(Addr::new(0x100));
            for _ in 0..10 {
                b.alu();
            }
            b.cond_branch(Addr::new(0x100), true);
        }
        let trace = b.finish();
        let mut fe = Frontend::new(config(4));
        let mut metadata = HashMap::new();
        metadata.insert(Addr::new(0x100).line().number(), vec![far]);
        fe.set_preload_metadata(metadata, crate::PreloadConfig::default());
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 200_000);
        assert_eq!(fe.stats().preload_metadata_requests.get(), 1);
        assert!(fe.stats().preload_l1_hits.get() >= 1);
    }

    #[test]
    fn decode_budget_throttles_promotion() {
        let trace = straight_line(64);
        let mut fe = Frontend::new(config(24));
        let mut mem = tiny_mem();
        let mut now = 0;
        let mut total = 0;
        while !fe.is_done(&trace) && now < 100_000 {
            let mut out = Vec::new();
            fe.cycle(now, &trace, &mut mem, 1, &mut out); // 1 slot per cycle
            assert!(out.len() <= 1, "budget of 1 must cap promotion");
            total += out.len();
            now += 1;
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn pfc_disabled_waits_for_execute() {
        // A taken jump unknown to the BTB: without PFC the redirect must be
        // an execute redirect, with PFC a pre-decode redirect.
        let mk = || {
            let mut b = TraceBuilder::new("pfc");
            for _ in 0..20 {
                b.set_pc(Addr::new(0x100));
                b.alu();
                b.jump(Addr::new(0x4000));
                b.set_pc(Addr::new(0x4000));
                b.alu();
                b.jump(Addr::new(0x100));
            }
            b.finish()
        };
        let mut with_pfc = config(24);
        with_pfc.enable_pfc = true;
        let mut without_pfc = config(24);
        without_pfc.enable_pfc = false;

        let trace = mk();
        let mut fe = Frontend::new(without_pfc);
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 200_000);
        assert_eq!(fe.stats().redirects_predecode.get(), 0);
        assert!(fe.stats().redirects_execute.get() > 0);

        let trace = mk();
        let mut fe = Frontend::new(with_pfc);
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 200_000);
        assert!(fe.stats().redirects_predecode.get() > 0);
    }

    #[test]
    fn ftq_inspection_api() {
        let trace = straight_line(128);
        let mut fe = Frontend::new(config(4));
        let mut mem = tiny_mem();
        let mut out = Vec::new();
        fe.cycle(0, &trace, &mut mem, usize::MAX, &mut out);
        let ftq = fe.ftq();
        assert_eq!(ftq.capacity(), 4);
        assert!(!ftq.is_empty());
        assert!(ftq.len() <= 4);
        let head = ftq.head().unwrap();
        assert_eq!(head.seq_range().0, 0);
        assert_eq!(ftq.iter().count(), ftq.len());
    }

    #[test]
    fn timeline_samples_when_enabled() {
        let trace = straight_line(256);
        let mut fe = Frontend::new(config(4));
        fe.enable_timeline(crate::TimelineConfig {
            stride: 2,
            capacity: 64,
        });
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 1_000_000);
        let t = fe.timeline().expect("timeline was enabled");
        assert!(!t.is_empty());
        assert!(t.samples().all(|s| s.cycle % 2 == 0), "stride respected");
        let taken = fe.take_timeline().expect("take returns the sampler");
        assert!(fe.timeline().is_none());
        assert!(taken.len() <= 64);
    }

    #[test]
    fn cursor_bounds_check_survives_the_32_bit_boundary() {
        // Regression: the cursor used to be narrowed with `as usize` before
        // comparing against `trace.len()`. On a 32-bit target a cursor of
        // 2^32 truncates to 0 — "in bounds" again — so fill would loop
        // forever re-enqueueing the trace. Comparing in u64 space is
        // immune; exercise the exact boundary values.
        const B: u64 = 1 << 32;
        assert!(!cursor_in_bounds(B, 0));
        assert!(!cursor_in_bounds(B, 1)); // truncation would say "in bounds"
        assert!(!cursor_in_bounds(B + 5, 10)); // ... and so would B + 5
        assert!(!cursor_in_bounds(u64::MAX, usize::MAX));
        assert!(cursor_in_bounds(0, 1));
        assert!(!cursor_in_bounds(1, 1));
    }

    #[test]
    fn scenario_classification_is_exhaustive() {
        let trace = straight_line(256);
        let mut fe = Frontend::new(config(4));
        let mut mem = tiny_mem();
        run_to_completion(&mut fe, &trace, &mut mem, 1_000_000);
        let s = fe.stats();
        assert_eq!(
            s.cycles.get(),
            s.s1_cycles.get() + s.s2_cycles.get() + s.s3_cycles.get() + s.empty_cycles.get()
        );
    }
}
