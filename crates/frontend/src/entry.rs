//! FTQ entries: basic blocks awaiting fetch.

use swip_types::{Cycle, LineAddr, SeqNum};

/// Fetch progress of one cache line needed by an FTQ entry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LineState {
    /// No request issued yet (bandwidth or MSHR limits).
    Pending,
    /// Request issued (or merged with an FTQ-tracked line); data arrives at
    /// the given cycle.
    InFlight {
        /// Completion cycle of the fill.
        done: Cycle,
        /// True if this request merged with another FTQ entry's request and
        /// generated no L1-I access of its own.
        aliased: bool,
    },
}

/// One FTQ entry: a basic block of consecutive trace instructions plus the
/// fetch state of the cache line(s) it spans.
#[derive(Clone, Debug)]
pub struct FtqEntry {
    /// Trace index of the first instruction in the block.
    pub(crate) start_seq: SeqNum,
    /// Number of instructions in the block.
    pub(crate) count: u32,
    /// Instructions already promoted to decode.
    pub(crate) consumed: u32,
    /// The distinct cache lines the block spans (1 or 2 for 8 × 4-byte
    /// instructions), with per-line fetch state.
    pub(crate) lines: Vec<(LineAddr, LineState)>,
    /// The block ends with a taken branch the BTB did not predict; the
    /// pre-decoder must confirm it (post-fetch correction).
    pub(crate) pfc_pending: bool,
    /// Pre-decode (prefetch triggering + PFC) has run for this entry.
    pub(crate) predecoded: bool,
    /// Cycle the entry entered the FTQ.
    pub(crate) enqueued_at: Cycle,
    /// Cycle the entry's last line completed, once known.
    pub(crate) fetch_done_at: Option<Cycle>,
    /// The entry has (so far) spent at least one cycle stalling at the FTQ
    /// head while its fetch was incomplete.
    pub(crate) stalled_at_head: bool,
    /// The entry has been counted in the Fig-10 "waiting on a stalling
    /// head" statistic (counted at most once per entry).
    pub(crate) counted_waiting: bool,
    /// Sequence number of a front-end-mispredicted branch inside the block
    /// (at most the final instruction).
    pub(crate) mispredicted_seq: Option<SeqNum>,
}

impl FtqEntry {
    pub(crate) fn new(start_seq: SeqNum, enqueued_at: Cycle) -> Self {
        FtqEntry {
            start_seq,
            count: 0,
            consumed: 0,
            lines: Vec::with_capacity(2),
            pfc_pending: false,
            predecoded: false,
            enqueued_at,
            fetch_done_at: None,
            stalled_at_head: false,
            counted_waiting: false,
            mispredicted_seq: None,
        }
    }

    /// Sequence range `[start, end)` of the block's instructions.
    pub fn seq_range(&self) -> (SeqNum, SeqNum) {
        (self.start_seq, self.start_seq + self.count as u64)
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True for a (degenerate) zero-instruction entry; never enqueued.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Registers that the block needs `line`; deduplicates.
    pub(crate) fn add_line(&mut self, line: LineAddr) {
        if !self.lines.iter().any(|(l, _)| *l == line) {
            self.lines.push((line, LineState::Pending));
        }
    }

    /// True once every line has been issued and has arrived by `now`.
    pub fn is_fetch_complete(&self, now: Cycle) -> bool {
        self.lines.iter().all(|(_, s)| match s {
            LineState::Pending => false,
            LineState::InFlight { done, .. } => *done <= now,
        })
    }

    /// Latest completion cycle across lines, if all are issued.
    pub(crate) fn completion_cycle(&self) -> Option<Cycle> {
        let mut max = 0;
        for (_, s) in &self.lines {
            match s {
                LineState::Pending => return None,
                LineState::InFlight { done, .. } => max = max.max(*done),
            }
        }
        Some(max)
    }

    /// Instructions not yet promoted to decode.
    pub(crate) fn remaining(&self) -> u32 {
        self.count - self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn add_line_dedups() {
        let mut e = FtqEntry::new(0, 0);
        e.add_line(line(1));
        e.add_line(line(1));
        e.add_line(line(2));
        assert_eq!(e.lines.len(), 2);
    }

    #[test]
    fn fetch_completion_requires_all_lines() {
        let mut e = FtqEntry::new(0, 0);
        e.add_line(line(1));
        e.add_line(line(2));
        assert!(!e.is_fetch_complete(100));
        e.lines[0].1 = LineState::InFlight {
            done: 10,
            aliased: false,
        };
        assert!(!e.is_fetch_complete(100));
        assert_eq!(e.completion_cycle(), None);
        e.lines[1].1 = LineState::InFlight {
            done: 50,
            aliased: true,
        };
        assert!(!e.is_fetch_complete(49));
        assert!(e.is_fetch_complete(50));
        assert_eq!(e.completion_cycle(), Some(50));
    }

    #[test]
    fn seq_range_and_remaining() {
        let mut e = FtqEntry::new(100, 0);
        e.count = 8;
        e.consumed = 3;
        assert_eq!(e.seq_range(), (100, 108));
        assert_eq!(e.remaining(), 5);
        assert_eq!(e.len(), 8);
        assert!(!e.is_empty());
    }
}
