//! Cycle-sampled scenario timeline.
//!
//! The taxonomy counters ([`crate::FtqStats`]) say how *much* time a run
//! spends in each FTQ state; they cannot say *when*. The timeline records a
//! bounded, strided sample of the per-cycle [`Scenario`] classification so a
//! run's phase behavior (cold-start shadow stalls, steady-state
//! shoot-through, loop transitions) can be inspected after the fact — e.g.
//! exported as a Chrome trace by `swip-report`.

use std::collections::VecDeque;

use swip_types::Cycle;

use crate::stats::Scenario;

/// Configuration of the scenario timeline sampler.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TimelineConfig {
    /// Record one sample every `stride` cycles (1 = every cycle). A stride
    /// of 0 is treated as 1.
    pub stride: u64,
    /// Maximum retained samples; once full, the *oldest* samples are
    /// dropped so the timeline always covers the tail of the run.
    pub capacity: usize,
}

impl Default for TimelineConfig {
    /// 4096 samples at stride 64: ~256 K cycles of coverage for free.
    fn default() -> Self {
        TimelineConfig {
            stride: 64,
            capacity: 4096,
        }
    }
}

/// One retained sample: the scenario observed at a cycle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TimelineSample {
    /// The cycle the sample was taken at.
    pub cycle: Cycle,
    /// The FTQ scenario classification that cycle.
    pub scenario: Scenario,
}

/// A bounded ring buffer of strided scenario samples.
///
/// # Examples
///
/// ```
/// use swip_frontend::{Scenario, ScenarioTimeline, TimelineConfig};
///
/// let mut t = ScenarioTimeline::new(TimelineConfig { stride: 2, capacity: 8 });
/// for c in 0..10 {
///     t.record(c, Scenario::ShootThrough);
/// }
/// assert_eq!(t.samples().count(), 5); // cycles 0, 2, 4, 6, 8
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioTimeline {
    config: TimelineConfig,
    samples: VecDeque<TimelineSample>,
    /// Samples evicted because the buffer was full (not stride-skipped).
    dropped: u64,
}

impl ScenarioTimeline {
    /// Creates an empty timeline with the given sampling policy.
    pub fn new(config: TimelineConfig) -> Self {
        let capacity = config.capacity.max(1);
        ScenarioTimeline {
            config: TimelineConfig {
                stride: config.stride.max(1),
                capacity,
            },
            samples: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// The (normalized) sampling policy.
    pub fn config(&self) -> TimelineConfig {
        self.config
    }

    /// Offers this cycle's classification; retained only on stride
    /// boundaries. Evicts the oldest sample when full.
    pub fn record(&mut self, cycle: Cycle, scenario: Scenario) {
        if !cycle.is_multiple_of(self.config.stride) {
            return;
        }
        if self.samples.len() >= self.config.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(TimelineSample { cycle, scenario });
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TimelineSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted to bound memory (the head of the run is lost first).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the timeline, returning the retained samples oldest-first.
    pub fn into_samples(self) -> Vec<TimelineSample> {
        self.samples.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_skips_between_samples() {
        let mut t = ScenarioTimeline::new(TimelineConfig {
            stride: 4,
            capacity: 100,
        });
        for c in 0..17 {
            t.record(c, Scenario::Empty);
        }
        let cycles: Vec<u64> = t.samples().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![0, 4, 8, 12, 16]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = ScenarioTimeline::new(TimelineConfig {
            stride: 1,
            capacity: 3,
        });
        for c in 0..5 {
            t.record(c, Scenario::StallingHead);
        }
        let cycles: Vec<u64> = t.samples().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]); // tail of the run survives
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn zero_stride_and_capacity_are_normalized() {
        let mut t = ScenarioTimeline::new(TimelineConfig {
            stride: 0,
            capacity: 0,
        });
        assert_eq!(t.config().stride, 1);
        assert_eq!(t.config().capacity, 1);
        t.record(0, Scenario::ShootThrough);
        t.record(1, Scenario::ShadowStall);
        assert_eq!(t.len(), 1);
        assert_eq!(t.samples().next().unwrap().scenario, Scenario::ShadowStall);
    }

    #[test]
    fn into_samples_preserves_order() {
        let mut t = ScenarioTimeline::new(TimelineConfig {
            stride: 1,
            capacity: 8,
        });
        t.record(0, Scenario::ShootThrough);
        t.record(1, Scenario::ShadowStall);
        let v = t.into_samples();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].scenario, Scenario::ShootThrough);
        assert_eq!(v[1].scenario, Scenario::ShadowStall);
    }
}
