//! Shared, immutable software-prefetch hint tables.
//!
//! A sweep runs the same workload through many configurations; the hint
//! table (trigger → prefetch targets) is identical for every run of a
//! workload, so it is built **once** and shared by `Arc` instead of being
//! cloned into each simulation. The targets of all triggers live in one
//! contiguous array and lookups return borrowed slices, so the per-fire
//! hot path neither allocates nor copies.

use std::collections::HashMap;

use swip_types::Addr;

/// An immutable trigger → prefetch-target table.
///
/// Keys are raw u64s: trigger *PCs* for the no-overhead hint path, trigger
/// cache-*line numbers* for the §VI metadata-preloading extension — the
/// constructors [`HintTable::from_pc_map`] and [`HintTable::from_line_map`]
/// fix the interpretation.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use swip_types::Addr;
/// use swip_frontend::HintTable;
///
/// let mut hints = HashMap::new();
/// hints.insert(Addr::new(0x40), vec![Addr::new(0x1000), Addr::new(0x2000)]);
/// let table = HintTable::from_pc_map(&hints);
/// assert_eq!(table.get(0x40), Some(&[Addr::new(0x1000), Addr::new(0x2000)][..]));
/// assert_eq!(table.get(0x44), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HintTable {
    /// Trigger key → `(start, end)` range into `targets`.
    index: HashMap<u64, (usize, usize)>,
    /// All triggers' targets, contiguously.
    targets: Vec<Addr>,
}

impl HintTable {
    /// Builds a table keyed by trigger PC (the no-overhead hint path).
    pub fn from_pc_map(hints: &HashMap<Addr, Vec<Addr>>) -> Self {
        Self::build(hints.iter().map(|(pc, ts)| (pc.raw(), ts.as_slice())))
    }

    /// Builds a table keyed by trigger cache-line number (the §VI
    /// metadata-preloading extension).
    pub fn from_line_map(metadata: &HashMap<u64, Vec<Addr>>) -> Self {
        Self::build(metadata.iter().map(|(&l, ts)| (l, ts.as_slice())))
    }

    fn build<'a>(entries: impl Iterator<Item = (u64, &'a [Addr])>) -> Self {
        let mut index = HashMap::new();
        let mut targets = Vec::new();
        for (key, ts) in entries {
            let start = targets.len();
            targets.extend_from_slice(ts);
            index.insert(key, (start, targets.len()));
        }
        HintTable { index, targets }
    }

    /// The targets registered for trigger `key`, if any.
    pub fn get(&self, key: u64) -> Option<&[Addr]> {
        self.index
            .get(&key)
            .map(|&(start, end)| &self.targets[start..end])
    }

    /// Whether `key` is a trigger (no target slice is materialized).
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Number of triggers.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no triggers are registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_map_round_trips() {
        let mut hints = HashMap::new();
        hints.insert(Addr::new(0x8), vec![Addr::new(0x100)]);
        hints.insert(Addr::new(0x10), vec![Addr::new(0x200), Addr::new(0x300)]);
        let t = HintTable::from_pc_map(&hints);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0x8), Some(&[Addr::new(0x100)][..]));
        assert_eq!(t.get(0x10), Some(&[Addr::new(0x200), Addr::new(0x300)][..]));
        assert_eq!(t.get(0x18), None);
        assert!(t.contains(0x8) && !t.contains(0x18));
    }

    #[test]
    fn line_map_keys_are_taken_verbatim() {
        let mut meta = HashMap::new();
        meta.insert(7u64, vec![Addr::new(0x40)]);
        let t = HintTable::from_line_map(&meta);
        assert_eq!(t.get(7), Some(&[Addr::new(0x40)][..]));
    }

    #[test]
    fn empty_tables_answer_cheaply() {
        let t = HintTable::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(0), None);
    }

    #[test]
    fn empty_target_lists_survive() {
        let mut hints = HashMap::new();
        hints.insert(Addr::new(0x8), Vec::new());
        let t = HintTable::from_pc_map(&hints);
        assert_eq!(t.get(0x8), Some(&[][..]));
        assert!(!t.is_empty());
    }
}
