//! The decoupled, fetch-directed-prefetching front-end model.
//!
//! This crate implements the paper's simulation subject: an
//! industry-standard FDP front-end in the style of Ishii et al. (ISPASS'21),
//! as modified by Chacon et al. for their characterization. The moving
//! parts:
//!
//! * a [`Ftq`] (fetch target queue) of basic-block entries (≤ 8
//!   instructions each) filled speculatively by the branch-prediction unit;
//! * out-of-order issue of the FTQ entries' cache-line fetches to the L1-I,
//!   with merging of requests to lines already tracked by the FTQ
//!   (the "positive aliasing" that gives deeper FTQs fewer L1-I accesses);
//! * strictly in-order promotion of fetched instructions to decode;
//! * post-fetch correction: taken branches the BTB did not know about are
//!   discovered when their block's line arrives and redirect the fill engine
//!   without waiting for execute;
//! * the paper's FTQ-state taxonomy (Scenarios 1/2/3) measured per cycle,
//!   plus every per-figure counter (head stalls, waiting entries, partially
//!   covered entries, head vs non-head fetch latency).
//!
//! The front-end is trace-driven and correct-path-only: a misprediction
//! stops FTQ fill until the branch resolves (or pre-decode corrects it)
//! rather than fetching wrong-path instructions. This matches the ChampSim
//! methodology the paper uses.
//!
//! # Examples
//!
//! ```
//! use swip_trace::TraceBuilder;
//! use swip_types::Addr;
//! use swip_cache::{HierarchyConfig, MemoryHierarchy};
//! use swip_frontend::{Frontend, FrontendConfig};
//!
//! let mut b = TraceBuilder::new("tiny");
//! for _ in 0..32 { b.alu(); }
//! let trace = b.finish();
//!
//! let mut fe = Frontend::new(FrontendConfig::industry_standard());
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::tiny());
//! let mut decoded = Vec::new();
//! let mut now = 0;
//! while !fe.is_done(&trace) && now < 10_000 {
//!     fe.cycle(now, &trace, &mut mem, usize::MAX, &mut decoded);
//!     now += 1;
//! }
//! assert_eq!(decoded.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod entry;
mod frontend;
mod hints;
mod prefetch;
mod stats;
mod timeline;

pub use config::{FrontendConfig, PreloadConfig};
pub use entry::{FtqEntry, LineState};
pub use frontend::{DecodedInstr, Frontend, Ftq};
pub use hints::HintTable;
pub use prefetch::{
    AsmdbHintPrefetcher, FdpPrefetcher, InstructionPrefetcher, ManaPrefetcher, PrefetcherSnapshot,
    PreloadPrefetcher, ShadowBtbPrefetcher,
};
pub use stats::{FtqStats, Scenario};
pub use timeline::{ScenarioTimeline, TimelineConfig, TimelineSample};
