//! Front-end statistics: the paper's taxonomy and per-figure counters.

use swip_types::{Counter, RunningMean};

/// The three FTQ states of Section III, plus the empty queue.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Scenario 1 — "shoot through": the head entry has completed its fetch;
    /// decode is limited only by its own bandwidth.
    ShootThrough,
    /// Scenario 2 — "stalling head": the head entry is still fetching while
    /// every entry behind it has completed.
    StallingHead,
    /// Scenario 3 — "shadow stalls": the head entry is still fetching and at
    /// least one entry behind it is also still fetching (its latency only
    /// partially covered by the head's).
    ShadowStall,
    /// The FTQ holds no entries (fill blocked or drained).
    Empty,
}

/// Every counter the paper's figures are built from.
///
/// Counter semantics (figure mapping in parentheses):
///
/// * `head_stall_cycles` — cycles the head entry was present but not fetch
///   complete (Fig 9).
/// * `entries_waiting_on_head` — cycle-sum of fetch-complete entries queued
///   behind a stalling head (one count per entry per stall cycle, matching
///   the paper's millions-per-run magnitudes) (Fig 10).
/// * `partially_covered_entries` — entries promoted to the head position
///   before their fetch completed (Fig 11).
/// * `head_fetch_cycles` / `nonhead_fetch_cycles` — per-entry fetch latency,
///   bucketed by whether the entry ever stalled the head (Fig 8).
#[derive(Clone, Debug, Default)]
pub struct FtqStats {
    /// Total front-end cycles observed.
    pub cycles: Counter,
    /// Cycles classified Scenario 1.
    pub s1_cycles: Counter,
    /// Cycles classified Scenario 2.
    pub s2_cycles: Counter,
    /// Cycles classified Scenario 3.
    pub s3_cycles: Counter,
    /// Cycles with an empty FTQ.
    pub empty_cycles: Counter,
    /// Cycles the fill engine was blocked on a redirect.
    pub fill_blocked_cycles: Counter,

    /// Fig 9: cycles a not-yet-fetched head entry stalled the FTQ.
    pub head_stall_cycles: Counter,
    /// Fig 10: cycle-sum of fetch-complete entries waiting behind a
    /// stalling head.
    pub entries_waiting_on_head: Counter,
    /// Fig 11: entries that reached the head position while still fetching.
    pub partially_covered_entries: Counter,
    /// Fig 8: fetch latency of entries that stalled the head.
    pub head_fetch_cycles: RunningMean,
    /// Fig 8: fetch latency of entries that completed before reaching the head.
    pub nonhead_fetch_cycles: RunningMean,

    /// Basic blocks enqueued.
    pub blocks_enqueued: Counter,
    /// Instructions enqueued.
    pub instrs_enqueued: Counter,
    /// Instructions promoted to decode.
    pub instrs_decoded: Counter,
    /// L1-I line requests actually issued to the cache hierarchy.
    pub line_requests: Counter,
    /// Line requests satisfied by merging with a line already tracked by the
    /// FTQ (the paper's positive aliasing).
    pub aliased_line_requests: Counter,
    /// Issue attempts rejected by a full MSHR file (retried later).
    pub mshr_stalls: Counter,

    /// Fill redirects caused by direction/target mispredictions (resolved at
    /// execute).
    pub redirects_execute: Counter,
    /// Execute redirects from conditional-direction mispredictions.
    pub mispredicts_cond: Counter,
    /// Execute redirects from indirect-target mispredictions (jumps/calls).
    pub mispredicts_indirect: Counter,
    /// Execute redirects from return-target mispredictions.
    pub mispredicts_return: Counter,
    /// Execute redirects from stale direct-branch targets.
    pub mispredicts_other: Counter,
    /// Fill redirects caused by BTB-missed taken branches corrected at
    /// pre-decode (post-fetch correction).
    pub redirects_predecode: Counter,
    /// Software instruction prefetches triggered by `prefetch.i`
    /// instructions at pre-decode.
    pub swpf_executed: Counter,
    /// Software instruction prefetches triggered by no-overhead hints at
    /// FTQ-insert time.
    pub swpf_hinted: Counter,
    /// Prefetches triggered by the §VI metadata-preloading extension.
    pub swpf_preloaded: Counter,
    /// Metadata-preload lookups that hit the L1-side metadata cache.
    pub preload_l1_hits: Counter,
    /// Metadata requests sent to the LLC-side table.
    pub preload_metadata_requests: Counter,
}

impl FtqStats {
    /// Fraction of cycles in each scenario `(s1, s2, s3, empty)`.
    pub fn scenario_fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.cycles.get().max(1) as f64;
        (
            self.s1_cycles.get() as f64 / total,
            self.s2_cycles.get() as f64 / total,
            self.s3_cycles.get() as f64 / total,
            self.empty_cycles.get() as f64 / total,
        )
    }

    /// Fraction of line requests saved by FTQ-level aliasing.
    pub fn alias_fraction(&self) -> f64 {
        let total = self.line_requests.get() + self.aliased_line_requests.get();
        if total == 0 {
            0.0
        } else {
            self.aliased_line_requests.get() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_at_most_one() {
        let mut s = FtqStats::default();
        s.cycles.add(100);
        s.s1_cycles.add(50);
        s.s2_cycles.add(25);
        s.s3_cycles.add(5);
        s.empty_cycles.add(20);
        let (a, b, c, d) = s.scenario_fractions();
        assert!((a + b + c + d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alias_fraction_handles_zero() {
        let s = FtqStats::default();
        assert_eq!(s.alias_fraction(), 0.0);
    }

    #[test]
    fn alias_fraction_counts_merges() {
        let mut s = FtqStats::default();
        s.line_requests.add(86);
        s.aliased_line_requests.add(14);
        assert!((s.alias_fraction() - 0.14).abs() < 1e-12);
    }
}
