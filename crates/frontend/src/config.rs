//! Front-end configuration.

use swip_branch::BranchConfig;

/// Configuration of the metadata-preloading extension (the paper's §VI
/// first proposed direction).
///
/// Instead of inserting `prefetch.i` instructions into the binary, the
/// prefetch metadata ("a portion of the binary") is preloaded into a
/// dedicated table at the LLC when the application starts. Every L1-I
/// access consults a small L1-side metadata cache; on an L1-side miss, a
/// metadata request is sent to the LLC-side table and the entry is
/// installed after `metadata_latency` cycles, firing its prefetches then.
#[derive(Clone, Debug)]
pub struct PreloadConfig {
    /// Capacity of the L1-side metadata cache, in trigger entries.
    pub l1_entries: usize,
    /// Cycles for a metadata request to the LLC-side table.
    pub metadata_latency: u64,
}

impl Default for PreloadConfig {
    fn default() -> Self {
        PreloadConfig {
            l1_entries: 256,
            metadata_latency: 34,
        }
    }
}

/// Configuration of the decoupled front-end.
#[derive(Clone, Debug)]
pub struct FrontendConfig {
    /// FTQ depth in basic-block entries (2 = the paper's conservative
    /// front-end, 24 = the industry-standard one).
    pub ftq_entries: usize,
    /// Maximum instructions per FTQ entry (basic block size; the paper uses
    /// 8, i.e. one entry can cover "eight 32-bit instructions").
    pub max_block_instrs: usize,
    /// Basic blocks the branch-prediction unit can append per cycle.
    pub fill_blocks_per_cycle: usize,
    /// Cache-line fetch requests the fetch engine can issue per cycle.
    pub fetch_lines_per_cycle: usize,
    /// Instructions promoted to decode per cycle.
    pub decode_width: usize,
    /// Enable post-fetch correction: BTB-missed taken branches redirect the
    /// fill engine at pre-decode instead of waiting for execute.
    pub enable_pfc: bool,
    /// Cycles between a redirect trigger (resolve or pre-decode) and fill
    /// resumption.
    pub redirect_penalty: u64,
    /// Branch-prediction complex configuration.
    pub branch: BranchConfig,
}

impl FrontendConfig {
    /// The paper's conservative front-end: 2-entry FTQ (the configuration
    /// "similar to that used in AsmDB's original evaluation").
    pub fn conservative() -> Self {
        FrontendConfig {
            ftq_entries: 2,
            ..Self::industry_standard()
        }
    }

    /// The paper's industry-standard front-end: 24-entry FTQ
    /// ("192, 32-bit instructions"), PFC enabled, taken-only history.
    pub fn industry_standard() -> Self {
        FrontendConfig {
            ftq_entries: 24,
            max_block_instrs: 8,
            fill_blocks_per_cycle: 2,
            fetch_lines_per_cycle: 2,
            decode_width: 6,
            enable_pfc: true,
            redirect_penalty: 2,
            branch: BranchConfig::default(),
        }
    }

    /// A copy of this configuration with a different FTQ depth (parameter
    /// sweeps).
    #[must_use]
    pub fn with_ftq_entries(mut self, n: usize) -> Self {
        self.ftq_entries = n;
        self
    }

    /// Validates structural parameters.
    ///
    /// # Panics
    ///
    /// Panics if any width or depth is zero.
    pub fn validate(&self) {
        assert!(self.ftq_entries > 0, "ftq must have at least one entry");
        assert!(self.max_block_instrs > 0, "blocks must hold instructions");
        assert!(
            self.fill_blocks_per_cycle > 0,
            "fill bandwidth must be nonzero"
        );
        assert!(
            self.fetch_lines_per_cycle > 0,
            "fetch bandwidth must be nonzero"
        );
        assert!(self.decode_width > 0, "decode width must be nonzero");
    }
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self::industry_standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(FrontendConfig::conservative().ftq_entries, 2);
        assert_eq!(FrontendConfig::industry_standard().ftq_entries, 24);
        assert_eq!(FrontendConfig::industry_standard().max_block_instrs, 8);
    }

    #[test]
    fn sweep_helper() {
        let c = FrontendConfig::industry_standard().with_ftq_entries(12);
        assert_eq!(c.ftq_entries, 12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_ftq_rejected() {
        FrontendConfig::industry_standard()
            .with_ftq_entries(0)
            .validate();
    }
}
