//! Microbenchmarks for the front-end's hot kernel: the per-cycle FTQ
//! fill/fetch/decode loop, with and without a shared prefetch-hint
//! table, over a branchy synthetic kernel.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use swip_cache::{HierarchyConfig, MemoryHierarchy};
use swip_frontend::{Frontend, FrontendConfig, HintTable};
use swip_trace::{Trace, TraceBuilder};
use swip_types::Addr;

/// A small loopy kernel: straight-line bodies joined by taken branches,
/// looping over a footprint a few times the L1-I capacity.
fn branchy_trace(instrs: usize) -> Trace {
    let mut b = TraceBuilder::new("hot_frontend");
    let blocks = 64u64;
    let mut block = 0u64;
    while b.len() < instrs {
        for _ in 0..7 {
            b.alu();
        }
        block = (block + 1) % blocks;
        // Spread blocks a cache-line-rich 4 KiB apart so fetch exercises
        // the hierarchy, not just the same resident lines.
        b.jump(Addr::new(0x10_0000 + block * 0x1000));
    }
    b.finish()
}

fn drain(trace: &Trace, hints: Option<Arc<HintTable>>) -> u64 {
    let mut fe = Frontend::new(FrontendConfig::industry_standard());
    if let Some(t) = hints {
        fe.set_hint_table(t);
    }
    let mut mem = MemoryHierarchy::new(HierarchyConfig::sunny_cove_like());
    let mut out = Vec::new();
    let mut now = 0u64;
    while !fe.is_done(trace) && now < 10_000_000 {
        out.clear();
        fe.cycle(now, trace, &mut mem, usize::MAX, &mut out);
        for d in &out {
            let i = &trace.instructions()[d.seq as usize];
            if i.is_branch() {
                fe.handle_resolution(d.seq, i, now + 1);
            }
        }
        now += 1;
    }
    now
}

fn bench_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend_hot");
    g.sample_size(20);
    let trace = branchy_trace(10_000);
    g.bench_function("drain_10k_no_hints", |b| {
        b.iter_batched(|| (), |()| drain(&trace, None), BatchSize::SmallInput);
    });

    // Hint every basic-block head at the next block — forces the shared
    // table's lookup on the form-block path every entry.
    let mut map: HashMap<Addr, Vec<Addr>> = HashMap::new();
    for i in trace.instructions() {
        if i.is_branch() {
            map.entry(i.pc)
                .or_default()
                .push(Addr::new(i.pc.raw() + 0x1000));
        }
    }
    let table = Arc::new(HintTable::from_pc_map(&map));
    g.bench_function("drain_10k_hinted", |b| {
        b.iter_batched(
            || table.clone(),
            |t| drain(&trace, Some(t)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
