//! The static program model: functions, blocks, terminators, layout.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swip_types::{Addr, Reg};

use crate::WorkloadSpec;

/// One instruction slot in a basic block body.
#[derive(Clone, Debug)]
pub(crate) enum Slot {
    /// Computation with register dependences.
    Alu { dst: Reg, srcs: [Option<Reg>; 2] },
    /// Load from a data region; `site` identifies the static access site.
    Load { dst: Reg, site: u32, stride: u64 },
    /// Store to a data region.
    Store { site: u32, stride: u64 },
}

/// How a basic block ends.
#[derive(Clone, Debug)]
pub enum Terminator {
    /// No control instruction; execution continues at the next block.
    FallThrough,
    /// A conditional branch that, when taken, skips the next block.
    CondSkip {
        /// Probability the skip is taken on a given execution.
        bias: f64,
    },
    /// A conditional back-edge to the block at index `back_to` (possibly this
    /// block itself); the region executes `trips` times per visit. Region
    /// loops (back_to < current) give iterations distinct branch histories,
    /// which is what makes their exits learnable by history-based predictors.
    Loop {
        /// Index of the block the back edge targets.
        back_to: usize,
        /// Trip count per visit (stable per site, like real loop bounds).
        trips: u32,
    },
    /// A call to one of `targets` (function indices); indirect sites carry
    /// several targets and rotate among them.
    Call {
        /// Candidate callee function indices.
        targets: Vec<usize>,
        /// True for register-indirect call sites.
        indirect: bool,
    },
    /// Function return (only the final block).
    Return,
}

impl Terminator {
    /// Instruction slots the terminator occupies (0 for fall-through).
    pub fn instr_count(&self) -> usize {
        match self {
            Terminator::FallThrough => 0,
            _ => 1,
        }
    }
}

/// One basic block: a body of [`Slot`]s plus a [`Terminator`].
#[derive(Clone, Debug)]
pub struct Block {
    /// Address of the first body instruction.
    pub start: Addr,
    pub(crate) slots: Vec<Slot>,
    /// The block's terminator.
    pub term: Terminator,
}

impl Block {
    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.slots.len() + self.term.instr_count()
    }

    /// True if the block holds no instructions (never generated).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte size of the block.
    pub fn byte_len(&self) -> u64 {
        self.len() as u64 * 4
    }

    /// Address of the terminator instruction.
    ///
    /// # Panics
    ///
    /// Panics for fall-through blocks, which have no terminator instruction.
    pub fn term_pc(&self) -> Addr {
        assert!(
            self.term.instr_count() > 0,
            "fall-through blocks have no terminator instruction"
        );
        self.start.add(self.slots.len() as u64 * 4)
    }

    /// Address just past the block.
    pub fn end(&self) -> Addr {
        self.start.add(self.byte_len())
    }
}

/// One function: a layer in the call DAG plus its basic blocks.
#[derive(Clone, Debug)]
pub struct Function {
    /// Address of the first block.
    pub base: Addr,
    /// Call-graph layer (0 = dispatcher; layer *l* calls layer *l + 1*).
    pub layer: usize,
    /// Basic blocks in layout order.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Total instructions in the function.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }
}

/// A complete synthetic program: a dispatcher loop over hot-weighted root
/// functions plus a layered call DAG.
///
/// The call graph is a DAG by construction (layer *l* only calls layer
/// *l + 1*), which bounds dynamic call depth at `max_call_depth` and keeps
/// the instruction kind at every PC stable across executions — the property
/// AsmDB's profile-and-rewrite loop depends on.
#[derive(Clone, Debug)]
pub struct Program {
    /// All functions; index 0 conventionally unused (dispatcher is separate).
    pub functions: Vec<Function>,
    /// Address of the dispatcher's indirect-call instruction.
    pub dispatcher_call_pc: Addr,
    /// Address of the dispatcher's loop-back jump.
    pub dispatcher_jump_pc: Addr,
    /// Layer-1 function indices in hot-first order (dispatch distribution).
    pub hot_roots: Vec<usize>,
}

impl Program {
    /// Generates the static program implied by `spec` (deterministic in
    /// `spec.seed`).
    pub fn generate(spec: &WorkloadSpec) -> Program {
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let layers = spec.max_call_depth.max(2);

        // Assign functions to layers 1..=layers round-robin, then generate
        // structure. Layout happens afterwards so block addresses are final.
        // (layer, blocks-as-(body, terminator)) per function, pre-layout.
        type ProtoBlock = (Vec<Slot>, Terminator);
        let mut protos: Vec<(usize, Vec<ProtoBlock>)> = Vec::new();
        for f in 0..spec.functions {
            let layer = 1 + f % layers;
            let nblocks = rng.gen_range((spec.avg_blocks / 2).max(2)..=spec.avg_blocks * 2);
            let mut blocks = Vec::with_capacity(nblocks);
            let mut calls = 0usize;
            for b in 0..nblocks {
                let body = gen_body(spec, &mut rng);
                let term = if b + 1 == nblocks {
                    Terminator::Return
                } else {
                    gen_terminator(
                        spec, &mut rng, f, layer, layers, b, nblocks, &mut calls, &blocks,
                    )
                };
                blocks.push((body, term));
            }
            protos.push((layer, blocks));
        }

        // Lay functions out at irregular, non-power-of-two offsets.
        let mut functions = Vec::with_capacity(spec.functions);
        let mut cursor = Addr::new(0x0001_0000);
        for (layer, blocks) in protos {
            let base = cursor;
            let mut block_addr = base;
            let mut laid = Vec::with_capacity(blocks.len());
            for (slots, term) in blocks {
                let b = Block {
                    start: block_addr,
                    slots,
                    term,
                };
                block_addr = b.end();
                laid.push(b);
            }
            cursor = block_addr.add(4 * rng.gen_range(1..=13));
            functions.push(Function {
                base,
                layer,
                blocks: laid,
            });
        }

        // Dispatcher: indirect call + loop-back jump, placed after all code.
        let dispatcher_call_pc = cursor;
        let dispatcher_jump_pc = cursor.add(4);

        // Hot ordering of the layer-1 roots.
        let mut roots: Vec<usize> = functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.layer == 1)
            .map(|(i, _)| i)
            .collect();
        // Fisher–Yates with the structural RNG: the hot set differs per seed.
        for i in (1..roots.len()).rev() {
            let j = rng.gen_range(0..=i);
            roots.swap(i, j);
        }

        Program {
            functions,
            dispatcher_call_pc,
            dispatcher_jump_pc,
            hot_roots: roots,
        }
    }

    /// Static instruction footprint in bytes (excluding padding).
    pub fn code_bytes(&self) -> u64 {
        self.functions
            .iter()
            .map(|f| f.instr_count() as u64 * 4)
            .sum::<u64>()
            + 8 // dispatcher
    }
}

fn gen_body(spec: &WorkloadSpec, rng: &mut SmallRng) -> Vec<Slot> {
    let n = rng.gen_range((spec.avg_block_instrs / 2).max(1)..=spec.avg_block_instrs * 2);
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let r: f64 = rng.gen();
        let slot = if r < spec.load_fraction {
            Slot::Load {
                dst: Reg::new(rng.gen_range(1..32)),
                site: rng.gen(),
                stride: pick_stride(rng),
            }
        } else if r < spec.load_fraction + spec.store_fraction {
            Slot::Store {
                site: rng.gen(),
                stride: pick_stride(rng),
            }
        } else {
            let s1 = Reg::new(rng.gen_range(1..32));
            let s2 = (rng.gen_range(0..4usize) == 0).then(|| Reg::new(rng.gen_range(1..32)));
            Slot::Alu {
                dst: Reg::new(rng.gen_range(1..32)),
                srcs: [Some(s1), s2],
            }
        };
        slots.push(slot);
    }
    slots
}

/// Data-access stride per static site: overwhelmingly cache-friendly so the
/// D-side does not mask the front-end behavior the paper characterizes
/// (CVP-1's front-end-bound traces behave the same way).
fn pick_stride(rng: &mut SmallRng) -> u64 {
    match rng.gen_range(0..100u32) {
        0..=79 => 0,    // revisits one address: L1-D hit
        80..=92 => 8,   // walks within a line: mostly hits
        93..=98 => 64,  // streaming: misses amortized by spatial reuse
        _ => 4096 + 64, // page-crossing: rare long-latency load
    }
}

#[allow(clippy::too_many_arguments)]
fn gen_terminator(
    spec: &WorkloadSpec,
    rng: &mut SmallRng,
    caller: usize,
    layer: usize,
    layers: usize,
    block: usize,
    nblocks: usize,
    calls: &mut usize,
    prior: &[(Vec<Slot>, Terminator)],
) -> Terminator {
    let can_skip = block + 2 < nblocks;
    // Cap call sites per function so the call tree's branching factor stays
    // near 1.3 — otherwise a single dispatcher iteration explodes
    // exponentially across the layered DAG.
    let can_call = layer < layers && *calls < 2;
    let r: f64 = rng.gen();
    if r < 0.16 && can_call {
        // Callees live in the next layer; round-robin base plus jitter.
        let next_layer: Vec<usize> = (0..spec.functions)
            .filter(|f| 1 + f % layers == layer + 1 && *f != caller)
            .collect();
        if next_layer.is_empty() {
            return Terminator::FallThrough;
        }
        *calls += 1;
        let indirect = rng.gen::<f64>() < spec.indirect_call_fraction;
        let ntargets = if indirect {
            rng.gen_range(2..=4usize)
        } else {
            1
        };
        let targets = (0..ntargets)
            .map(|_| next_layer[rng.gen_range(0..next_layer.len())])
            .collect();
        Terminator::Call { targets, indirect }
    } else if r < 0.51 && can_skip {
        let bias = if rng.gen::<f64>() < spec.predictable_branch_fraction {
            if rng.gen::<bool>() {
                0.99
            } else {
                0.01
            }
        } else {
            rng.gen_range(0.30..0.70)
        };
        Terminator::CondSkip { bias }
    } else if r < 0.51 + spec.loop_fraction {
        // Prefer region loops (back edge over the last few blocks) so
        // iterations carry distinct branch histories; regions must not
        // contain call sites, or the call tree would multiply per trip.
        let mut back_to = block;
        if block > 0 && rng.gen_bool(0.85) {
            let lo = block.saturating_sub(3);
            let candidate = rng.gen_range(lo..=block.saturating_sub(1));
            let region_is_call_free = prior[candidate..block]
                .iter()
                .all(|(_, t)| !matches!(t, Terminator::Call { .. }));
            if region_is_call_free {
                back_to = candidate;
            }
        }
        // Tight loops get realistic high trip counts so their (hard to
        // predict) exit mispredictions amortize; region loops stay short so
        // their bodies do not dominate the dynamic mix.
        // Short, per-site-constant trip counts keep loop exits within the
        // reach of history-based prediction (a taken-only GHR sees one bit
        // per iteration).
        let trips = if back_to == block {
            rng.gen_range(4..=8u32)
        } else {
            rng.gen_range(2..=4u32)
        };
        Terminator::Loop { back_to, trips }
    } else {
        Terminator::FallThrough
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvp1_suite;

    fn sample_spec() -> WorkloadSpec {
        cvp1_suite(10_000).remove(16) // a server workload
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = sample_spec();
        let a = Program::generate(&spec);
        let b = Program::generate(&spec);
        assert_eq!(a.code_bytes(), b.code_bytes());
        assert_eq!(a.hot_roots, b.hot_roots);
        assert_eq!(a.functions.len(), b.functions.len());
    }

    #[test]
    fn layout_is_disjoint_and_ordered() {
        let p = Program::generate(&sample_spec());
        let mut prev_end = Addr::ZERO;
        for f in &p.functions {
            assert!(f.base >= prev_end, "function overlaps predecessor");
            let mut addr = f.base;
            for b in &f.blocks {
                assert_eq!(b.start, addr, "block not contiguous");
                addr = b.end();
            }
            prev_end = addr;
        }
        assert!(p.dispatcher_call_pc >= prev_end);
    }

    #[test]
    fn every_function_ends_with_return() {
        let p = Program::generate(&sample_spec());
        for f in &p.functions {
            assert!(matches!(f.blocks.last().unwrap().term, Terminator::Return));
        }
    }

    #[test]
    fn calls_respect_layering() {
        let p = Program::generate(&sample_spec());
        for f in &p.functions {
            for b in &f.blocks {
                if let Terminator::Call { targets, .. } = &b.term {
                    for &t in targets {
                        assert_eq!(
                            p.functions[t].layer,
                            f.layer + 1,
                            "call crosses layers incorrectly"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cond_skips_never_jump_past_return() {
        let p = Program::generate(&sample_spec());
        for f in &p.functions {
            for (i, b) in f.blocks.iter().enumerate() {
                if matches!(b.term, Terminator::CondSkip { .. }) {
                    assert!(i + 2 < f.blocks.len(), "skip would bypass return");
                }
            }
        }
    }

    #[test]
    fn footprint_tracks_spec() {
        let spec = sample_spec();
        let p = Program::generate(&spec);
        let kib = p.code_bytes() / 1024;
        let approx = spec.approx_footprint_kib() as u64;
        assert!(
            kib > approx / 4 && kib < approx * 4,
            "footprint {kib} KiB far from spec estimate {approx} KiB"
        );
    }

    #[test]
    fn hot_roots_are_layer_one() {
        let p = Program::generate(&sample_spec());
        assert!(!p.hot_roots.is_empty());
        for &r in &p.hot_roots {
            assert_eq!(p.functions[r].layer, 1);
        }
    }
}
