//! Workload specifications: the 48-trace CVP-1-like suite.

/// Workload family, mirroring the CVP-1 categories in the paper's Figure 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// Server workloads (`*_srv*`): very large instruction footprints, deep
    /// call stacks, indirect dispatch — the front-end-bound regime.
    Server,
    /// Integer workloads (`*_int_*`): moderate footprints, loopier control
    /// flow.
    Integer,
    /// Crypto workloads (`*_crypto*`): small hot kernels with high reuse and
    /// low L1-I pressure.
    Crypto,
}

/// Parameters from which a synthetic workload's program and trace are
/// generated.
///
/// All structure is derived deterministically from `seed`, so a spec fully
/// identifies its trace.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkloadSpec {
    /// Workload name (the paper's Figure 1 trace names).
    pub name: String,
    /// Workload family.
    pub family: Family,
    /// RNG seed for both program structure and execution.
    pub seed: u64,
    /// Number of functions in the program.
    pub functions: usize,
    /// Mean basic blocks per function.
    pub avg_blocks: usize,
    /// Mean instructions per basic block.
    pub avg_block_instrs: usize,
    /// Maximum call depth during execution.
    pub max_call_depth: usize,
    /// Probability that a block's conditional skip is strongly biased
    /// (predictable); the rest are weakly biased (hard to predict).
    pub predictable_branch_fraction: f64,
    /// Fraction of call sites using indirect dispatch.
    pub indirect_call_fraction: f64,
    /// Fraction of block instructions that are loads.
    pub load_fraction: f64,
    /// Fraction of block instructions that are stores.
    pub store_fraction: f64,
    /// Dispatch-concentration exponent: roots are sampled as
    /// `hot_roots[n * u^hot_exponent]`. Lower values flatten the dispatch
    /// distribution and raise the live instruction footprint.
    pub hot_exponent: f64,
    /// Fraction of non-final blocks ending in a loop back-edge. Server code
    /// is call/branch-heavy; crypto kernels are loop-heavy.
    pub loop_fraction: f64,
    /// Probability a dispatch stays on the current root (request
    /// clustering). The complement mostly follows a fixed successor chain
    /// (predictable, but cold in the L1-I), occasionally jumping randomly.
    pub root_persistence: f64,
    /// Dynamic instructions to emit (the trace may end slightly past this
    /// once the current function unwinds).
    pub instructions: u64,
}

impl WorkloadSpec {
    /// Approximate static footprint in KiB implied by the structure
    /// parameters (functions × blocks × instructions × 4 B).
    pub fn approx_footprint_kib(&self) -> usize {
        self.functions * self.avg_blocks * self.avg_block_instrs * 4 / 1024
    }
}

/// The names of the paper's 48 CVP-1 traces (Figure 1, left to right).
pub const CVP1_NAMES: [&str; 48] = [
    "public_srv_60",
    "secret_crypto52",
    "secret_crypto80",
    "secret_crypto90",
    "secret_int_124",
    "secret_int_155",
    "secret_int_290",
    "secret_int_327",
    "secret_int_44",
    "secret_int_624",
    "secret_int_678",
    "secret_int_706",
    "secret_int_83",
    "secret_int_86",
    "secret_int_948",
    "secret_int_965",
    "secret_srv12",
    "secret_srv128",
    "secret_srv194",
    "secret_srv207",
    "secret_srv21",
    "secret_srv222",
    "secret_srv225",
    "secret_srv255",
    "secret_srv259",
    "secret_srv32",
    "secret_srv408",
    "secret_srv41",
    "secret_srv426",
    "secret_srv442",
    "secret_srv48",
    "secret_srv495",
    "secret_srv504",
    "secret_srv537",
    "secret_srv540",
    "secret_srv582",
    "secret_srv61",
    "secret_srv617",
    "secret_srv641",
    "secret_srv669",
    "secret_srv702",
    "secret_srv727",
    "secret_srv73",
    "secret_srv742",
    "secret_srv757",
    "secret_srv764",
    "secret_srv771",
    "secret_srv85",
];

fn family_of(name: &str) -> Family {
    if name.contains("crypto") {
        Family::Crypto
    } else if name.contains("int") {
        Family::Integer
    } else {
        Family::Server
    }
}

/// Splitmix64, used to derive stable per-workload parameters from the name
/// index without coupling them to the structural RNG.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Builds the 48-workload suite, each emitting ~`instructions` dynamic
/// instructions. The paper simulates 100 M instructions per trace; pass a
/// smaller budget for laptop-scale runs — steady state is reached quickly.
pub fn cvp1_suite(instructions: u64) -> Vec<WorkloadSpec> {
    CVP1_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| spec_for(i, name, instructions))
        .collect()
}

fn spec_for(index: usize, name: &str, instructions: u64) -> WorkloadSpec {
    let family = family_of(name);
    let h = mix(index as u64 + 1);
    // Parameter ranges per family, jittered per workload so the suite spans
    // the paper's 2–28 MPKI band.
    let pick = |lo: usize, hi: usize, salt: u64| -> usize {
        lo + (mix(h ^ salt) % (hi - lo + 1) as u64) as usize
    };
    let pick_f = |lo: f64, hi: f64, salt: u64| -> f64 {
        lo + (mix(h ^ salt) % 1000) as f64 / 1000.0 * (hi - lo)
    };
    let (functions, avg_blocks, predictable) = match family {
        Family::Server => (pick(900, 2000, 11), pick(7, 12, 13), pick_f(0.96, 0.99, 17)),
        Family::Integer => (pick(250, 650, 11), pick(8, 14, 13), pick_f(0.94, 0.98, 17)),
        Family::Crypto => (pick(24, 64, 11), pick(10, 20, 13), pick_f(0.97, 0.995, 17)),
    };
    WorkloadSpec {
        name: name.to_string(),
        family,
        seed: 0xc0ffee ^ (index as u64) << 8,
        functions,
        avg_blocks,
        avg_block_instrs: pick(4, 9, 19),
        max_call_depth: match family {
            Family::Server => pick(6, 10, 23),
            Family::Integer => pick(3, 6, 23),
            Family::Crypto => pick(2, 4, 23),
        },
        predictable_branch_fraction: predictable,
        indirect_call_fraction: match family {
            Family::Server => pick_f(0.10, 0.25, 29),
            Family::Integer => pick_f(0.02, 0.10, 29),
            Family::Crypto => pick_f(0.0, 0.04, 29),
        },
        load_fraction: pick_f(0.20, 0.30, 31),
        store_fraction: pick_f(0.08, 0.15, 37),
        hot_exponent: match family {
            Family::Server => pick_f(1.0, 1.25, 41),
            Family::Integer => pick_f(1.2, 1.8, 41),
            Family::Crypto => pick_f(2.2, 3.0, 41),
        },
        loop_fraction: match family {
            Family::Server => pick_f(0.03, 0.08, 43),
            Family::Integer => pick_f(0.10, 0.18, 43),
            Family::Crypto => pick_f(0.22, 0.35, 43),
        },
        root_persistence: match family {
            Family::Server => pick_f(0.35, 0.60, 47),
            Family::Integer => pick_f(0.55, 0.80, 47),
            Family::Crypto => pick_f(0.85, 0.95, 47),
        },
        instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_48_unique_names() {
        let suite = cvp1_suite(1000);
        assert_eq!(suite.len(), 48);
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 48);
    }

    #[test]
    fn families_assigned_by_name() {
        let suite = cvp1_suite(1000);
        assert_eq!(suite[1].family, Family::Crypto);
        assert_eq!(suite[4].family, Family::Integer);
        assert_eq!(suite[16].family, Family::Server);
        assert_eq!(
            suite.iter().filter(|s| s.family == Family::Crypto).count(),
            3
        );
        assert_eq!(
            suite.iter().filter(|s| s.family == Family::Integer).count(),
            12
        );
        assert_eq!(
            suite.iter().filter(|s| s.family == Family::Server).count(),
            33
        );
    }

    #[test]
    fn server_footprints_exceed_l1i() {
        for s in cvp1_suite(1000) {
            if s.family == Family::Server {
                assert!(
                    s.approx_footprint_kib() > 64,
                    "{} footprint only {} KiB",
                    s.name,
                    s.approx_footprint_kib()
                );
            }
        }
    }

    #[test]
    fn suite_is_deterministic() {
        assert_eq!(cvp1_suite(5000), cvp1_suite(5000));
    }
}
