//! Synthetic CVP-1-like workload generation for `swip-fe`.
//!
//! The paper evaluates on a 48-trace subset of the First Value Prediction
//! Championship (CVP-1) traces — proprietary server, integer, and crypto
//! workloads with instruction working sets large enough to stress the L1-I
//! (2–28 MPKI). Those traces are not redistributable, so this crate builds
//! the closest synthetic equivalent: each workload is a randomly generated
//! *program* (functions laid out at irregular addresses, basic blocks,
//! biased conditional branches, loops, direct/indirect calls and returns)
//! that is then *executed* by a deterministic interpreter to produce a
//! dynamic [`swip_trace::Trace`].
//!
//! What makes the substitution behavior-preserving (see DESIGN.md §4):
//!
//! * instruction footprints span tens of KiB to MiB — the same L1-I-thrashing
//!   regime as the paper's traces;
//! * control flow is *statistically stable*: per-branch biases and per-site
//!   call patterns recur, so a profile of run 1 predicts run 2 (the property
//!   AsmDB relies on);
//! * the same seed always yields the same trace, so AsmDB's
//!   profile-and-rewrite loop operates on exactly the program it profiled.
//!
//! # Examples
//!
//! ```
//! use swip_workloads::{cvp1_suite, generate};
//!
//! let specs = cvp1_suite(10_000);
//! assert_eq!(specs.len(), 48);
//! let trace = generate(&specs[0]);
//! assert_eq!(trace.name(), specs[0].name);
//! assert!(trace.len() >= 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod program;
mod spec;

pub use generator::generate;
pub use program::{Block, Function, Program, Terminator};
pub use spec::{cvp1_suite, Family, WorkloadSpec};
