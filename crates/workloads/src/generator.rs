//! The trace emitter: executes a synthetic [`Program`] into a dynamic trace.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swip_trace::Trace;
use swip_types::{Addr, Instruction, Reg};

use crate::program::{Block, Slot, Terminator};
use crate::{Program, WorkloadSpec};

/// Base of the synthetic data heap (far from the code segment).
const DATA_BASE: u64 = 0x1000_0000;

/// Generates the dynamic trace for `spec`.
///
/// Deterministic: the same spec always yields byte-identical traces, which
/// lets the AsmDB pipeline profile a run and rewrite exactly the program it
/// profiled. The trace ends at the first dispatcher-loop boundary after
/// `spec.instructions` instructions.
pub fn generate(spec: &WorkloadSpec) -> Trace {
    let program = Program::generate(spec);
    generate_from(spec, &program)
}

/// Generates the trace for an already-built program (exposed so callers can
/// inspect the static program alongside its trace).
pub(crate) fn generate_from(spec: &WorkloadSpec, program: &Program) -> Trace {
    let mut e = Emitter {
        program,
        rng: SmallRng::seed_from_u64(spec.seed ^ 0x5eed_1234_abcd_ef00),
        out: Vec::with_capacity(spec.instructions as usize + 4096),
        site_visits: HashMap::new(),
        budget: spec.instructions,
        hot_exponent: spec.hot_exponent,
        root_persistence: spec.root_persistence,
        current_root: None,
    };
    e.run();
    Trace::from_instructions(spec.name.clone(), e.out)
}

struct Emitter<'a> {
    program: &'a Program,
    rng: SmallRng,
    out: Vec<Instruction>,
    site_visits: HashMap<u32, u64>,
    budget: u64,
    hot_exponent: f64,
    root_persistence: f64,
    /// Index into `hot_roots` of the root currently being dispatched.
    current_root: Option<usize>,
}

impl Emitter<'_> {
    fn run(&mut self) {
        while (self.out.len() as u64) < self.budget {
            let root = self.sample_root();
            let call_pc = self.program.dispatcher_call_pc;
            let root_base = self.program.functions[root].base;
            self.out
                .push(Instruction::indirect_call(call_pc, root_base).with_srcs(&[Reg::new(1)]));
            self.walk(root, self.program.dispatcher_jump_pc);
            self.out
                .push(Instruction::jump(self.program.dispatcher_jump_pc, call_pc));
        }
    }

    /// Root selection with three regimes, mirroring how server request
    /// streams behave: *stay* on the current handler (warm, clustered),
    /// *chain* to a fixed successor handler (cold in the L1-I but a
    /// predictable indirect target — a request pipeline), or *jump* to a
    /// Zipf-weighted random handler. The stay probability is the workload's
    /// `root_persistence`; lowering it raises the L1-I miss rate without
    /// making the dispatcher's indirect call unpredictable.
    fn sample_root(&mut self) -> usize {
        let n = self.program.hot_roots.len();
        let idx = match self.current_root {
            Some(cur) if self.rng.gen::<f64>() < self.root_persistence => cur,
            Some(cur) if self.rng.gen::<f64>() < 0.85 => (cur + 1) % n,
            _ => {
                let u: f64 = self.rng.gen();
                (((n as f64) * u.powf(self.hot_exponent)) as usize).min(n - 1)
            }
        };
        self.current_root = Some(idx);
        self.program.hot_roots[idx]
    }

    fn walk(&mut self, func_idx: usize, ret_to: Addr) {
        let func = &self.program.functions[func_idx];
        let mut loop_counters: HashMap<usize, u32> = HashMap::new();
        let mut b = 0usize;
        while b < func.blocks.len() {
            let block = &func.blocks[b];
            self.emit_body(block);
            match &block.term {
                Terminator::FallThrough => b += 1,
                Terminator::Return => {
                    self.out.push(Instruction::ret(block.term_pc(), ret_to));
                    return;
                }
                Terminator::CondSkip { bias } => {
                    let taken = self.rng.gen::<f64>() < *bias;
                    let target = func.blocks[b + 2].start;
                    self.out
                        .push(Instruction::cond_branch(block.term_pc(), target, taken));
                    b += if taken { 2 } else { 1 };
                }
                Terminator::Loop { back_to, trips } => {
                    let pc = block.term_pc();
                    let target = func.blocks[*back_to].start;
                    let counter = loop_counters.entry(b).or_insert(0);
                    *counter += 1;
                    if *counter < *trips {
                        self.out.push(Instruction::cond_branch(pc, target, true));
                        b = *back_to;
                    } else {
                        *counter = 0;
                        self.out.push(Instruction::cond_branch(pc, target, false));
                        b += 1;
                    }
                }
                Terminator::Call { targets, indirect } => {
                    let pc = block.term_pc();
                    // Virtual-dispatch sites are mostly monomorphic in
                    // practice: a dominant target with occasional megamorphic
                    // excursions (learnable by a last-target predictor).
                    let callee = if *indirect {
                        if self.rng.gen::<f64>() < 0.10 {
                            targets[self.rng.gen_range(0..targets.len())]
                        } else {
                            targets[0]
                        }
                    } else {
                        targets[0]
                    };
                    let callee_base = self.program.functions[callee].base;
                    let call = if *indirect {
                        Instruction::indirect_call(pc, callee_base).with_srcs(&[Reg::new(2)])
                    } else {
                        Instruction::call(pc, callee_base)
                    };
                    self.out.push(call);
                    self.walk(callee, pc.add(4));
                    b += 1;
                }
            }
        }
        // Structurally unreachable: the final block always returns.
        unreachable!("function fell off its final block");
    }

    fn emit_body(&mut self, block: &Block) {
        let mut pc = block.start;
        for slot in &block.slots {
            let instr = match slot {
                Slot::Alu { dst, srcs } => {
                    let mut i = Instruction::alu(pc).with_dst(*dst);
                    i.srcs = [srcs[0], srcs[1], None];
                    i
                }
                Slot::Load { dst, site, stride } => {
                    let addr = self.data_address(*site, *stride);
                    Instruction::load(pc, addr)
                        .with_dst(*dst)
                        .with_srcs(&[Reg::new(3)])
                }
                Slot::Store { site, stride } => {
                    let addr = self.data_address(*site, *stride);
                    Instruction::store(pc, addr).with_srcs(&[Reg::new(4)])
                }
            };
            self.out.push(instr);
            pc = pc.add(4);
        }
    }

    /// Per-site data addresses: a static base spread over a 2 MiB region,
    /// advanced by the site's stride within a 64 KiB window per visit.
    fn data_address(&mut self, site: u32, stride: u64) -> Addr {
        let visits = self.site_visits.entry(site).or_insert(0);
        *visits += 1;
        let base = DATA_BASE + (site as u64 % 32768) * 64;
        Addr::new(base + (*visits * stride) % 0x1_0000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvp1_suite;
    use swip_types::{BranchKind, InstrKind};

    fn small_suite() -> Vec<WorkloadSpec> {
        cvp1_suite(20_000)
    }

    #[test]
    fn traces_meet_budget_and_are_deterministic() {
        let spec = &small_suite()[16];
        let a = generate(spec);
        let b = generate(spec);
        assert!(a.len() >= 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn overshoot_is_bounded() {
        let spec = &small_suite()[16];
        let t = generate(spec);
        assert!(
            t.len() < 20_000 + 100_000,
            "overshoot too large: {}",
            t.len()
        );
    }

    #[test]
    fn calls_and_returns_pair_like_a_stack() {
        let spec = &small_suite()[20];
        let t = generate(spec);
        let mut stack: Vec<Addr> = Vec::new();
        for i in t.iter() {
            if let InstrKind::Branch { kind, target, .. } = i.kind {
                match kind {
                    BranchKind::DirectCall | BranchKind::IndirectCall => {
                        stack.push(i.pc.add(4));
                    }
                    BranchKind::Return => {
                        let expected = stack.pop().expect("return without call");
                        assert_eq!(target, expected, "return target mismatch at {}", i.pc);
                    }
                    _ => {}
                }
            }
        }
        assert!(stack.is_empty(), "unbalanced calls at trace end");
    }

    #[test]
    fn every_pc_has_a_stable_instruction_kind() {
        let spec = &small_suite()[5];
        let t = generate(spec);
        let mut kinds: HashMap<u64, std::mem::Discriminant<InstrKind>> = HashMap::new();
        for i in t.iter() {
            let d = std::mem::discriminant(&i.kind);
            if let Some(prev) = kinds.insert(i.pc.raw(), d) {
                assert_eq!(prev, d, "instruction kind changed at {}", i.pc);
            }
        }
    }

    #[test]
    fn control_flow_is_sequential_or_explained_by_branches() {
        let spec = &small_suite()[30];
        let t = generate(spec);
        let instrs = t.instructions();
        for w in instrs.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert_eq!(a.next_pc(), b.pc, "discontinuity between {} and {}", a, b);
        }
    }

    #[test]
    fn branch_density_is_realistic() {
        for idx in [1usize, 5, 16] {
            let spec = &small_suite()[idx];
            let s = generate(spec).summary();
            let d = s.branch_density();
            assert!(
                (0.05..0.45).contains(&d),
                "{}: branch density {d:.2} out of range",
                spec.name
            );
        }
    }

    #[test]
    fn server_footprint_larger_than_crypto() {
        let suite = small_suite();
        let srv = generate(&suite[16]).summary();
        let crypto = generate(&suite[1]).summary();
        assert!(
            srv.unique_lines > crypto.unique_lines * 2,
            "srv {} lines vs crypto {} lines",
            srv.unique_lines,
            crypto.unique_lines
        );
    }
}
