//! Request dispatch: paths, methods, and admission control.
//!
//! The admission pipeline for `POST /v1/jobs` is strict and fully typed:
//! the body must decode as a [`PlanSpec`] (400 otherwise), the spec must
//! resolve against the session's workload suite (400 with the
//! [`PlanError`](swip_bench::PlanError) message), the prefetch plan must
//! pass static coverage admission (400 with the fatal `D`-rule ids — see
//! [`admit`](crate::admit)), and only then does the job contend for a
//! queue slot — so a typo'd workload name or a provably dead insertion
//! can never occupy capacity or reach a worker. Backpressure (429 +
//! `Retry-After`) and drain (503) are the only ways a sound plan is
//! refused.

use std::sync::Arc;

use swip_bench::ExperimentPlan;
use swip_report::{Json, PlanSpec};

use crate::http::{Request, Response};
use crate::job::JobState;
use crate::metrics::metrics_json;
use crate::queue::SubmitError;
use crate::server::ServeContext;
use crate::worker::QueuedJob;

/// Routes one request to its handler.
pub(crate) fn route(ctx: &Arc<ServeContext>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(ctx),
        ("GET", "/metrics") => Response::json(200, metrics_json(ctx).render_pretty()),
        ("POST", "/v1/jobs") => submit(ctx, req),
        ("POST", "/v1/shutdown") => {
            ctx.begin_drain();
            Response::json(202, r#"{"status":"draining"}"#)
        }
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                if method != "GET" {
                    return Response::error(405, "job resources are read-only (use GET)");
                }
                return job_resource(ctx, rest);
            }
            if let Some(fingerprint) = path.strip_prefix("/v1/cache/") {
                return match method {
                    "GET" => cache_get(ctx, fingerprint),
                    "PUT" => cache_put(ctx, fingerprint, &req.body),
                    _ => Response::error(405, "cache entries support GET and PUT"),
                };
            }
            if matches!(path, "/healthz" | "/metrics") {
                return Response::error(405, "use GET here");
            }
            if matches!(path, "/v1/jobs" | "/v1/shutdown") {
                return Response::error(405, "use POST here");
            }
            Response::error(404, "no such resource")
        }
    }
}

fn healthz(ctx: &ServeContext) -> Response {
    let obj = Json::Obj(vec![
        ("status".to_string(), Json::Str("ok".to_string())),
        ("draining".to_string(), Json::Bool(ctx.is_draining())),
    ]);
    Response::json(200, obj.render())
}

/// `POST /v1/jobs`: decode → resolve → enqueue.
fn submit(ctx: &Arc<ServeContext>, req: &Request) -> Response {
    if ctx.is_draining() {
        return Response::error(503, "server is draining; not accepting new jobs");
    }
    let Some(body) = req.body_str() else {
        return Response::error(400, "body is not UTF-8");
    };
    let spec = match PlanSpec::from_json_str(body) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &format!("invalid plan: {e}")),
    };
    let plan = match ExperimentPlan::from_spec(&spec, &ctx.session.workloads()) {
        Ok(plan) => plan,
        Err(e) => return Response::error(400, &format!("unresolvable plan: {e}")),
    };
    // Static coverage admission (family D): a plan whose prefetches are
    // provably dead is refused before it can occupy queue capacity.
    if let Err(r) = ctx.admission.admit(&ctx.session, &plan, &spec.insertions) {
        let obj = Json::Obj(vec![
            (
                "error".to_string(),
                Json::Str(format!(
                    "plan rejected by static admission: {} trip fatal coverage rules on \
                     workload {}",
                    r.what, r.workload
                )),
            ),
            ("workload".to_string(), Json::Str(r.workload)),
            (
                "rules".to_string(),
                Json::Arr(r.rules.into_iter().map(Json::Str).collect()),
            ),
        ]);
        return Response::json(400, obj.render());
    }
    // Store the *resolved* spec so the job resource shows exactly what
    // will run, even when the submission left an axis empty.
    let id = ctx.registry.create(plan.to_spec());
    match ctx.queue.push(QueuedJob { id, plan }) {
        Ok(()) => {
            let obj = Json::Obj(vec![
                ("id".to_string(), Json::U64(id)),
                ("state".to_string(), Json::Str("queued".to_string())),
                ("url".to_string(), Json::Str(format!("/v1/jobs/{id}"))),
            ]);
            Response::json(202, obj.render())
        }
        Err(SubmitError::Full) => {
            ctx.registry.remove(id);
            ctx.count_rejection();
            Response::error(429, "job queue is full; retry later").with_header("Retry-After", "1")
        }
        Err(SubmitError::Closed) => {
            ctx.registry.remove(id);
            Response::error(503, "server is draining; not accepting new jobs")
        }
    }
}

/// `GET /v1/cache/{fingerprint}`: the content-addressed trace-cache
/// entry for one of this session's workloads, as raw `SWIP` bytes.
///
/// 404 covers every "not here" case — no cache directory, a fingerprint
/// no session workload owns, or an entry not yet materialized — so a
/// coordinator can treat 404 uniformly as "ship it".
fn cache_get(ctx: &ServeContext, fingerprint: &str) -> Response {
    let Some(spec) = ctx.session.spec_for_fingerprint(fingerprint) else {
        return Response::error(404, "no session workload has that trace fingerprint");
    };
    let Some(path) = ctx.session.trace_cache_path(&spec) else {
        return Response::error(404, "server has no trace cache directory");
    };
    match std::fs::read(&path) {
        Ok(bytes) => Response::bytes(200, bytes),
        Err(_) => Response::error(404, "trace not cached yet"),
    }
}

/// `PUT /v1/cache/{fingerprint}`: installs trace bytes shipped by a
/// coordinator under their content address, after validating that they
/// decode to the right workload's trace. 409 without a cache directory
/// (the entry can never be stored), 404 for unknown fingerprints, 400
/// for bytes that fail validation.
fn cache_put(ctx: &ServeContext, fingerprint: &str, body: &[u8]) -> Response {
    if ctx.session.cache_dir().is_none() {
        return Response::error(409, "server has no trace cache directory");
    }
    let Some(spec) = ctx.session.spec_for_fingerprint(fingerprint) else {
        return Response::error(404, "no session workload has that trace fingerprint");
    };
    match ctx.session.import_cached_trace(&spec, body) {
        Ok(()) => {
            let obj = Json::Obj(vec![
                ("status".to_string(), Json::Str("stored".to_string())),
                ("workload".to_string(), Json::Str(spec.name.clone())),
                ("bytes".to_string(), Json::U64(body.len() as u64)),
            ]);
            Response::json(200, obj.render())
        }
        Err(e) => Response::error(400, &format!("rejected cache entry: {e}")),
    }
}

/// `GET /v1/jobs/{id}` and `GET /v1/jobs/{id}/report`.
fn job_resource(ctx: &ServeContext, rest: &str) -> Response {
    let (id_text, want_report) = match rest.strip_suffix("/report") {
        Some(prefix) => (prefix, true),
        None => (rest, false),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, "job ids are decimal integers");
    };
    if want_report {
        match ctx.registry.with(id, |j| (j.state, j.report_json.clone())) {
            None => Response::error(404, "no such job"),
            Some((JobState::Done, Some(report))) => Response::json(200, report),
            Some((JobState::Failed, _)) => {
                Response::error(409, "job failed; see the job resource for the reason")
            }
            Some((state, _)) => Response::error(
                409,
                &format!("job is {}; report not available yet", state.label()),
            ),
        }
    } else {
        match ctx.registry.with(id, |j| j.to_json()) {
            Some(json) => Response::json(200, json.render_pretty()),
            None => Response::error(404, "no such job"),
        }
    }
}
