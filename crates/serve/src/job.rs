//! Job records and the in-memory registry behind `/v1/jobs`.
//!
//! Every submission gets a monotonically increasing id and a record that
//! walks the state machine `queued → running → done | failed`. Records
//! are never evicted for the life of the process — the service exists to
//! run bounded batches of simulations, not to be a long-lived job store,
//! and a finished [`RunReport`](swip_report::RunReport) for a small plan
//! is a few KiB.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use swip_report::{Json, PlanSpec};

/// Where a job is in its lifecycle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Accepted and waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; its report is available.
    Done,
    /// Rejected by the engine or poisoned by a panic; `error` says why.
    Failed,
}

impl JobState {
    /// The wire label used in job JSON (`queued` / `running` / `done` /
    /// `failed`).
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// All states, for counting.
    pub const ALL: [JobState; 4] = [
        JobState::Queued,
        JobState::Running,
        JobState::Done,
        JobState::Failed,
    ];
}

/// One job's full record.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The job id (also its path segment under `/v1/jobs/`).
    pub id: u64,
    /// The *resolved* plan (both axes explicit), as accepted.
    pub spec: PlanSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Failure reason, for [`JobState::Failed`].
    pub error: Option<String>,
    /// The rendered plan report JSON, for [`JobState::Done`].
    pub report_json: Option<String>,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
}

impl JobRecord {
    fn new(id: u64, spec: PlanSpec) -> Self {
        JobRecord {
            id,
            spec,
            state: JobState::Queued,
            error: None,
            report_json: None,
            submitted: Instant::now(),
            started: None,
            finished: None,
        }
    }

    /// Seconds spent queued (up to now while still waiting).
    pub fn queue_seconds(&self) -> f64 {
        let until = self.started.unwrap_or_else(Instant::now);
        until.duration_since(self.submitted).as_secs_f64()
    }

    /// Seconds spent running (up to now while still running); `None`
    /// before the job starts.
    pub fn run_seconds(&self) -> Option<f64> {
        let started = self.started?;
        let until = self.finished.unwrap_or_else(Instant::now);
        Some(until.duration_since(started).as_secs_f64())
    }

    /// The job resource as served by `GET /v1/jobs/{id}`.
    ///
    /// Wall-clock timings live here — deliberately *not* in the report,
    /// which stays byte-deterministic (see
    /// [`build_plan_report`](swip_bench::build_plan_report)).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_string(), Json::U64(self.id)),
            ("state".to_string(), Json::Str(self.state.label().into())),
            ("plan".to_string(), self.spec.to_json_value()),
            ("queue_seconds".to_string(), Json::F64(self.queue_seconds())),
            (
                "run_seconds".to_string(),
                match self.run_seconds() {
                    Some(s) => Json::F64(s),
                    None => Json::Null,
                },
            ),
        ];
        match &self.error {
            Some(e) => pairs.push(("error".to_string(), Json::Str(e.clone()))),
            None => pairs.push(("error".to_string(), Json::Null)),
        }
        if self.state == JobState::Done {
            pairs.push((
                "report_url".to_string(),
                Json::Str(format!("/v1/jobs/{}/report", self.id)),
            ));
        }
        Json::Obj(pairs)
    }
}

/// The registry: id allocation plus a lock around every record.
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, JobRecord>>,
}

impl Default for JobRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl JobRegistry {
    /// An empty registry; ids start at 1.
    pub fn new() -> Self {
        JobRegistry {
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a new queued job for `spec` and returns its id.
    pub fn create(&self, spec: PlanSpec) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = JobRecord::new(id, spec);
        self.jobs.lock().unwrap().insert(id, record);
        id
    }

    /// Removes a record again — the submission rollback when the queue
    /// rejects the push that was supposed to follow `create`.
    pub fn remove(&self, id: u64) {
        self.jobs.lock().unwrap().remove(&id);
    }

    /// Marks `id` running and stamps its start time.
    pub fn mark_running(&self, id: u64) {
        if let Some(j) = self.jobs.lock().unwrap().get_mut(&id) {
            j.state = JobState::Running;
            j.started = Some(Instant::now());
        }
    }

    /// Marks `id` done and stores its rendered report.
    pub fn mark_done(&self, id: u64, report_json: String) {
        if let Some(j) = self.jobs.lock().unwrap().get_mut(&id) {
            j.state = JobState::Done;
            j.report_json = Some(report_json);
            j.finished = Some(Instant::now());
        }
    }

    /// Marks `id` failed with a reason.
    pub fn mark_failed(&self, id: u64, error: String) {
        if let Some(j) = self.jobs.lock().unwrap().get_mut(&id) {
            j.state = JobState::Failed;
            j.error = Some(error);
            j.finished = Some(Instant::now());
        }
    }

    /// Runs `f` on the record for `id` under the lock; `None` for an
    /// unknown id.
    pub fn with<R>(&self, id: u64, f: impl FnOnce(&JobRecord) -> R) -> Option<R> {
        self.jobs.lock().unwrap().get(&id).map(f)
    }

    /// Jobs per state, in [`JobState::ALL`] order.
    pub fn counts(&self) -> [u64; 4] {
        let jobs = self.jobs.lock().unwrap();
        let mut counts = [0u64; 4];
        for j in jobs.values() {
            counts[JobState::ALL.iter().position(|&s| s == j.state).unwrap()] += 1;
        }
        counts
    }

    /// Total records currently registered.
    pub fn len(&self) -> usize {
        self.jobs.lock().unwrap().len()
    }

    /// True when no jobs have been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_walks_the_state_machine() {
        let reg = JobRegistry::new();
        let id = reg.create(PlanSpec::default());
        assert_eq!(reg.with(id, |j| j.state), Some(JobState::Queued));
        reg.mark_running(id);
        assert_eq!(reg.with(id, |j| j.state), Some(JobState::Running));
        reg.mark_done(id, "{}".into());
        let (state, report) = reg.with(id, |j| (j.state, j.report_json.clone())).unwrap();
        assert_eq!(state, JobState::Done);
        assert_eq!(report.as_deref(), Some("{}"));
        assert_eq!(reg.counts(), [0, 0, 1, 0]);
    }

    #[test]
    fn rollback_and_unknown_ids() {
        let reg = JobRegistry::new();
        let id = reg.create(PlanSpec::default());
        reg.remove(id);
        assert!(reg.with(id, |_| ()).is_none());
        assert!(reg.is_empty());
        reg.mark_failed(999, "nope".into()); // unknown id is a no-op
        assert_eq!(reg.counts(), [0, 0, 0, 0]);
    }

    #[test]
    fn job_json_shape() {
        let reg = JobRegistry::new();
        let id = reg.create(PlanSpec {
            workloads: vec!["w0".into()],
            configs: vec!["ftq2_fdp".into()],
            prefetchers: Vec::new(),
            insertions: Vec::new(),
        });
        reg.mark_running(id);
        reg.mark_done(id, "{}".into());
        let json = reg.with(id, |j| j.to_json()).unwrap();
        assert_eq!(json.get("state").and_then(|v| v.as_str()), Some("done"));
        assert_eq!(json.get("id").and_then(|v| v.as_u64()), Some(id));
        assert_eq!(
            json.get("report_url").and_then(|v| v.as_str()),
            Some(format!("/v1/jobs/{id}/report").as_str())
        );
        assert!(json.get("run_seconds").and_then(|v| v.as_f64()).is_some());
    }
}
