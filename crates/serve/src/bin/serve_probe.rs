//! End-to-end smoke probe for a running `swip serve` instance, used by
//! `scripts/check.sh`: health check, one tiny job to completion, report
//! fetch, then a graceful shutdown request.
//!
//! Usage: `serve_probe HOST:PORT`. Exits 0 only if every step succeeds.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::{Duration, Instant};

use swip_report::Json;
use swip_serve::client;

const POLL: Duration = Duration::from_millis(100);
const DEADLINE: Duration = Duration::from_secs(120);

fn main() -> ExitCode {
    let Some(addr) = std::env::args().nth(1) else {
        eprintln!("usage: serve_probe HOST:PORT");
        return ExitCode::from(2);
    };
    match probe(&addr) {
        Ok(id) => {
            println!("serve probe ok (job {id} done, report fetched, drain requested)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve probe failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn probe(addr: &str) -> Result<u64, String> {
    let (status, body) = get(addr, "/healthz")?;
    expect(200, status, "/healthz", &body)?;
    if !body.contains("\"ok\"") {
        return Err(format!("/healthz body looks unhealthy: {body}"));
    }

    // The cheapest possible job: the baseline config across the
    // session's (stride-reduced) suite.
    let (status, body) = client::request(
        addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"configs": ["ftq2_fdp"]}"#),
    )
    .map_err(|e| format!("POST /v1/jobs: {e}"))?;
    expect(202, status, "POST /v1/jobs", &body)?;
    let id = Json::parse(&body)
        .ok()
        .and_then(|j| j.get("id").and_then(Json::as_u64))
        .ok_or_else(|| format!("job id missing from submission response: {body}"))?;

    let started = Instant::now();
    loop {
        let (status, body) = get(addr, &format!("/v1/jobs/{id}"))?;
        expect(200, status, "job status", &body)?;
        let state = Json::parse(&body)
            .ok()
            .and_then(|j| j.get("state").and_then(|s| s.as_str().map(String::from)))
            .ok_or_else(|| format!("job state missing: {body}"))?;
        match state.as_str() {
            "done" => break,
            "failed" => return Err(format!("job {id} failed: {body}")),
            _ if started.elapsed() > DEADLINE => {
                return Err(format!("job {id} still {state} after {DEADLINE:?}"))
            }
            _ => std::thread::sleep(POLL),
        }
    }

    let (status, body) = get(addr, &format!("/v1/jobs/{id}/report"))?;
    expect(200, status, "job report", &body)?;
    let report = Json::parse(&body).map_err(|e| format!("report is not JSON: {e}"))?;
    if report.get("figure").and_then(Json::as_str) != Some("plan") {
        return Err(format!("report is not a plan report: {body}"));
    }

    let (status, body) =
        client::request(addr, "POST", "/v1/shutdown", None).map_err(|e| e.to_string())?;
    expect(202, status, "POST /v1/shutdown", &body)?;
    Ok(id)
}

fn get(addr: &str, path: &str) -> Result<(u16, String), String> {
    client::request(addr, "GET", path, None).map_err(|e| format!("GET {path}: {e}"))
}

fn expect(want: u16, got: u16, what: &str, body: &str) -> Result<(), String> {
    if want == got {
        Ok(())
    } else {
        Err(format!("{what}: expected {want}, got {got}: {body}"))
    }
}
