//! End-to-end smoke probe for a running `swip serve` instance, used by
//! `scripts/check.sh`.
//!
//! Default mode: health check, then **three** plan submissions over one
//! kept-alive socket (the keep-alive smoke) — distinct job ids, all
//! polled to completion and their reports fetched on the same
//! connection — then a graceful shutdown request.
//!
//! Flood mode (`serve_probe ADDR flood N`): opens `N` idle connections
//! and reports how many were shed with `503` at accept time, asserting
//! the connection table is bounded. The caller checks the server's
//! thread count separately (it must not scale with `N`).
//!
//! Usage: `serve_probe HOST:PORT [flood N]`. Exits 0 only if every step
//! succeeds.

#![forbid(unsafe_code)]

use std::io::Read;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use swip_report::Json;
use swip_serve::client;

const POLL: Duration = Duration::from_millis(100);
const DEADLINE: Duration = Duration::from_secs(120);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.as_slice() {
        [addr] => probe(addr).map(|id| {
            println!("serve probe ok (3 keep-alive jobs done through job {id}, drain requested)");
        }),
        [addr, mode, n] if mode == "flood" => match n.parse::<usize>() {
            Ok(n) => flood(addr, n),
            Err(_) => Err(format!("flood count is not a number: {n}")),
        },
        _ => {
            eprintln!("usage: serve_probe HOST:PORT [flood N]");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve probe failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn probe(addr: &str) -> Result<u64, String> {
    let (status, body) =
        client::request(addr, "GET", "/healthz", None).map_err(|e| format!("GET /healthz: {e}"))?;
    expect(200, status, "/healthz", &body)?;
    if !body.contains("\"ok\"") {
        return Err(format!("/healthz body looks unhealthy: {body}"));
    }

    // The keep-alive smoke: one socket, three submissions of the
    // cheapest possible job (the baseline config across the
    // stride-reduced suite), polled and fetched on that same socket.
    let mut conn =
        client::Connection::connect(addr).map_err(|e| format!("keep-alive connect: {e}"))?;
    let mut ids = Vec::new();
    for i in 0..3 {
        let (status, body) = conn
            .request("POST", "/v1/jobs", Some(r#"{"configs": ["ftq2_fdp"]}"#))
            .map_err(|e| format!("keep-alive POST /v1/jobs #{i}: {e}"))?;
        expect(202, status, "POST /v1/jobs", &body)?;
        let id = Json::parse(&body)
            .ok()
            .and_then(|j| j.get("id").and_then(Json::as_u64))
            .ok_or_else(|| format!("job id missing from submission response: {body}"))?;
        if ids.contains(&id) {
            return Err(format!(
                "duplicate job id {id} across pipelined submissions"
            ));
        }
        ids.push(id);
    }

    let mut reports = Vec::new();
    for &id in &ids {
        let started = Instant::now();
        loop {
            let (status, body) = conn
                .request("GET", &format!("/v1/jobs/{id}"), None)
                .map_err(|e| format!("keep-alive job poll: {e}"))?;
            expect(200, status, "job status", &body)?;
            let state = Json::parse(&body)
                .ok()
                .and_then(|j| j.get("state").and_then(|s| s.as_str().map(String::from)))
                .ok_or_else(|| format!("job state missing: {body}"))?;
            match state.as_str() {
                "done" => break,
                "failed" => return Err(format!("job {id} failed: {body}")),
                _ if started.elapsed() > DEADLINE => {
                    return Err(format!("job {id} still {state} after {DEADLINE:?}"))
                }
                _ => std::thread::sleep(POLL),
            }
        }
        let (status, body) = conn
            .request("GET", &format!("/v1/jobs/{id}/report"), None)
            .map_err(|e| format!("keep-alive report fetch: {e}"))?;
        expect(200, status, "job report", &body)?;
        let report = Json::parse(&body).map_err(|e| format!("report is not JSON: {e}"))?;
        if report.get("figure").and_then(Json::as_str) != Some("plan") {
            return Err(format!("report is not a plan report: {body}"));
        }
        reports.push(body);
    }
    // Same plan, same session: every report must be byte-identical.
    if reports.windows(2).any(|w| w[0] != w[1]) {
        return Err("reports for identical plans differ across keep-alive jobs".into());
    }

    let (status, body) =
        client::request(addr, "POST", "/v1/shutdown", None).map_err(|e| e.to_string())?;
    expect(202, status, "POST /v1/shutdown", &body)?;
    Ok(*ids.last().unwrap())
}

/// Opens `n` idle connections and counts accept-time 503 sheds. The
/// accepted sockets are held open for the whole run so the table stays
/// full; they are never written to, so a bounded server spends no
/// thread on them.
fn flood(addr: &str, n: usize) -> Result<(), String> {
    let mut held: Vec<TcpStream> = Vec::new();
    let mut shed = 0usize;
    for i in 0..n {
        let stream = TcpStream::connect(addr).map_err(|e| format!("flood connect #{i}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .map_err(|e| e.to_string())?;
        held.push(stream);
    }
    // Shed sockets got an immediate 503 + close; held ones stay silent
    // until their keep-alive deadline. A short read disambiguates.
    for stream in &mut held {
        let mut buf = [0u8; 512];
        match stream.read(&mut buf) {
            Ok(k) if k > 0 => {
                let text = String::from_utf8_lossy(&buf[..k]);
                if text.starts_with("HTTP/1.1 503") {
                    shed += 1;
                } else {
                    return Err(format!("unexpected unsolicited response: {text}"));
                }
            }
            Ok(_) => {}  // EOF after shed body already read
            Err(_) => {} // timeout: the socket is being held open
        }
    }
    println!(
        "flood: {n} connections, {shed} shed with 503, {} held",
        n - shed
    );
    if shed == 0 {
        return Err(format!("{n} idle connections but none were shed with 503"));
    }
    Ok(())
}

fn expect(want: u16, got: u16, what: &str, body: &str) -> Result<(), String> {
    if want == got {
        Ok(())
    } else {
        Err(format!("{what}: expected {want}, got {got}: {body}"))
    }
}
