//! Static plan admission for `POST /v1/jobs` (coverage family D,
//! DESIGN.md §14).
//!
//! Before a submission contends for a queue slot, its prefetch plan is
//! evaluated against each selected workload's reconstructed CFG with
//! `swip-analyze`'s coverage rules. Two plans can be in play:
//!
//! * **custom insertions** carried by the spec's `insertions` key —
//!   evaluated verbatim on every submission (they are the client's claim,
//!   so they change per request); and
//! * the **session's own AsmDB plan**, when the job will run an AsmDB
//!   configuration — memoized per workload, since the session's plans are
//!   immutable for the life of the process.
//!
//! A plan tripping a *fatal* rule (`D001`: the prefetch provably can never
//! fire usefully) is rejected with HTTP 400 and the rule ids before it
//! ever occupies queue capacity — the static analogue of the resolver's
//! unknown-name 400s. Warning-level classes (redundant / late /
//! clobbering) only shape the report's predicted coverage; they never
//! refuse a job.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use swip_analyze::CoverageConfig;
use swip_asmdb::{Cfg, Insertion, Plan};
use swip_bench::{ExperimentPlan, Session};
use swip_report::InsertionSpec;
use swip_types::Addr;
use swip_workloads::WorkloadSpec;

/// A rejected submission: which workload tripped which fatal rules.
pub(crate) struct AdmissionRejection {
    /// The workload whose CFG refuted the plan.
    pub workload: String,
    /// Which plan was refuted (`"custom insertions"` / `"session plan"`).
    pub what: &'static str,
    /// The fatal rule ids, sorted and deduplicated.
    pub rules: Vec<String>,
}

/// Admission state: the per-workload memo of the session plan's verdict.
#[derive(Default)]
pub(crate) struct AdmissionCache {
    session_plan_rules: Mutex<HashMap<String, Vec<String>>>,
}

impl AdmissionCache {
    /// Statically admits `plan` (plus any custom `insertions`) against
    /// every selected workload.
    ///
    /// # Errors
    ///
    /// The first [`AdmissionRejection`], in the plan's workload order.
    pub fn admit(
        &self,
        session: &Session,
        plan: &ExperimentPlan,
        insertions: &[InsertionSpec],
    ) -> Result<(), AdmissionRejection> {
        if insertions.is_empty() && !plan.wants_asmdb() {
            return Ok(()); // nothing prefetches; nothing to refute
        }
        let custom = (!insertions.is_empty()).then(|| custom_plan(insertions));
        for spec in plan.workloads() {
            if let Some(custom) = &custom {
                let rules = fatal_rules(session, spec, custom);
                if !rules.is_empty() {
                    return Err(AdmissionRejection {
                        workload: spec.name.clone(),
                        what: "custom insertions",
                        rules,
                    });
                }
            }
            if plan.wants_asmdb() {
                let cached = self
                    .session_plan_rules
                    .lock()
                    .unwrap()
                    .get(&spec.name)
                    .cloned();
                let rules = match cached {
                    Some(rules) => rules,
                    None => {
                        let out = session.asmdb(spec);
                        let rules = fatal_rules(session, spec, &out.plan);
                        self.session_plan_rules
                            .lock()
                            .unwrap()
                            .insert(spec.name.clone(), rules.clone());
                        rules
                    }
                };
                if !rules.is_empty() {
                    return Err(AdmissionRejection {
                        workload: spec.name.clone(),
                        what: "session plan",
                        rules,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Evaluates `plan` on `spec`'s CFG and returns the fatal rule ids.
fn fatal_rules(session: &Session, spec: &WorkloadSpec, plan: &Plan) -> Vec<String> {
    let trace = session.trace(spec);
    let cfg = Cfg::from_trace(&trace);
    let entry = trace
        .instructions()
        .first()
        .and_then(|i| cfg.block_of(i.pc));
    let eval = swip_analyze::evaluate_plan(&cfg, entry, plan, &CoverageConfig::default());
    eval.fatal_rules().iter().map(|r| r.to_string()).collect()
}

/// Lifts wire [`InsertionSpec`]s into an AsmDB [`Plan`] the evaluator
/// understands. The claimed distance/reach are carried through verbatim —
/// the evaluator re-derives its own distances from the CFG anyway.
fn custom_plan(specs: &[InsertionSpec]) -> Plan {
    let insertions: Vec<Insertion> = specs
        .iter()
        .map(|s| Insertion {
            anchor: Addr::new(s.anchor),
            before: true,
            target_pc: Addr::new(s.target),
            distance: s.distance,
            reach: s.reach,
        })
        .collect();
    let targeted: HashSet<u64> = insertions
        .iter()
        .map(|i| i.target_pc.line().number())
        .collect();
    Plan {
        targeted_lines: targeted.len(),
        uncovered_lines: 0,
        insertions,
    }
}
