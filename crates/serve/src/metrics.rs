//! The `/metrics` document: queue depth, job states, connection-table
//! telemetry, and the warm session's cumulative cache counters.
//!
//! This is where the *volatile* telemetry lives. Job reports are
//! byte-deterministic (see
//! [`build_plan_report`](swip_bench::build_plan_report)), so anything
//! scheduling- or wall-clock-dependent — queue occupancy, per-state job
//! counts, connection gauges, the session's memo hit counters, uptime —
//! is exposed here instead, as one flat JSON object rendered with
//! `swip-report`'s value type.

use std::sync::atomic::{AtomicU64, Ordering};

use swip_bench::session_counter_pairs;
use swip_report::Json;

use crate::conn::{CloseReason, Conn};
use crate::job::JobState;
use crate::server::ServeContext;

/// Histogram bucket upper bounds for requests-per-connection (the last
/// bucket is unbounded). Recorded when a connection closes.
const REQS_PER_CONN_BUCKETS: [u64; 4] = [1, 2, 4, 8];

/// Connection-table counters and gauges, updated by the event loop.
///
/// The gauges (`open` / `active` / `keepalive`) are snapshots the loop
/// stores once per iteration — exact at the instant of the store, which
/// is all a scrape can ask of a single-threaded loop. The counters are
/// cumulative since process start.
#[derive(Default)]
pub(crate) struct ConnMetrics {
    /// Gauge: connections currently in the table.
    pub(crate) open: AtomicU64,
    /// Gauge: connections with a request or response in flight.
    pub(crate) active: AtomicU64,
    /// Gauge: open connections that have already served ≥ 1 request
    /// (i.e. being kept alive for a follow-up).
    pub(crate) keepalive: AtomicU64,
    /// Counter: connections closed for stalling mid-request or
    /// mid-response (read deadline, hangup, socket error).
    pub(crate) timeouts: AtomicU64,
    /// Counter: connections shed at accept time (`503`, table full).
    pub(crate) shed: AtomicU64,
    /// Counter: idle kept-alive connections closed by the keep-alive
    /// timeout (or by drain).
    pub(crate) idle_closed: AtomicU64,
    /// Counter: total connections closed, any reason.
    pub(crate) closed: AtomicU64,
    /// Histogram of requests served per closed connection; buckets are
    /// `≤1, ≤2, ≤4, ≤8, >8`.
    pub(crate) reqs_per_conn: [AtomicU64; 5],
}

impl ConnMetrics {
    /// Books a connection's death: its close reason plus its
    /// requests-served histogram sample.
    pub(crate) fn record_close(&self, conn: &Conn, reason: CloseReason) {
        self.closed.fetch_add(1, Ordering::Relaxed);
        match reason {
            CloseReason::MidRequest => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            CloseReason::Idle => {
                self.idle_closed.fetch_add(1, Ordering::Relaxed);
            }
            CloseReason::Done => {}
        }
        let bucket = REQS_PER_CONN_BUCKETS
            .iter()
            .position(|&cap| conn.requests_served <= cap)
            .unwrap_or(REQS_PER_CONN_BUCKETS.len());
        self.reqs_per_conn[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Stores the per-iteration gauge snapshot.
    pub(crate) fn store_gauges(&self, conns: &[Conn]) {
        self.open.store(conns.len() as u64, Ordering::Relaxed);
        let active = conns
            .iter()
            .filter(|c| c.mid_request() || c.has_pending_write())
            .count();
        self.active.store(active as u64, Ordering::Relaxed);
        let keepalive = conns.iter().filter(|c| c.requests_served > 0).count();
        self.keepalive.store(keepalive as u64, Ordering::Relaxed);
    }
}

/// Builds the flat `/metrics` object for the current instant.
pub(crate) fn metrics_json(ctx: &ServeContext) -> Json {
    let mut pairs = vec![
        (
            "uptime_seconds".to_string(),
            Json::F64(ctx.started.elapsed().as_secs_f64()),
        ),
        ("draining".to_string(), Json::Bool(ctx.is_draining())),
        ("workers".to_string(), Json::U64(ctx.workers as u64)),
        ("queue_depth".to_string(), Json::U64(ctx.queue.len() as u64)),
        (
            "queue_capacity".to_string(),
            Json::U64(ctx.queue.capacity() as u64),
        ),
    ];
    let counts = ctx.registry.counts();
    for (state, count) in JobState::ALL.iter().zip(counts) {
        pairs.push((format!("jobs_{}", state.label()), Json::U64(count)));
    }
    pairs.push(("jobs_rejected".to_string(), Json::U64(ctx.rejected())));

    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let conns = &ctx.conns;
    pairs.push(("max_conns".to_string(), Json::U64(ctx.max_conns as u64)));
    pairs.push(("conns_open".to_string(), Json::U64(load(&conns.open))));
    pairs.push(("conns_active".to_string(), Json::U64(load(&conns.active))));
    pairs.push((
        "conns_keepalive".to_string(),
        Json::U64(load(&conns.keepalive)),
    ));
    pairs.push(("conns_closed".to_string(), Json::U64(load(&conns.closed))));
    pairs.push(("conns_shed".to_string(), Json::U64(load(&conns.shed))));
    pairs.push((
        "conns_idle_closed".to_string(),
        Json::U64(load(&conns.idle_closed)),
    ));
    pairs.push((
        "conn_timeouts".to_string(),
        Json::U64(load(&conns.timeouts)),
    ));
    for (i, bucket) in conns.reqs_per_conn.iter().enumerate() {
        let label = match REQS_PER_CONN_BUCKETS.get(i) {
            Some(cap) => format!("requests_per_conn_le{cap}"),
            None => "requests_per_conn_gt8".to_string(),
        };
        pairs.push((label, Json::U64(load(bucket))));
    }

    for (name, value) in session_counter_pairs(&ctx.session) {
        pairs.push((format!("session_{name}"), Json::U64(value)));
    }
    Json::Obj(pairs)
}
