//! The `/metrics` document: queue depth, job states, and the warm
//! session's cumulative cache counters.
//!
//! This is where the *volatile* telemetry lives. Job reports are
//! byte-deterministic (see
//! [`build_plan_report`](swip_bench::build_plan_report)), so anything
//! scheduling- or wall-clock-dependent — queue occupancy, per-state job
//! counts, the session's memo hit counters, uptime — is exposed here
//! instead, as one flat JSON object rendered with `swip-report`'s value
//! type.

use swip_bench::session_counter_pairs;
use swip_report::Json;

use crate::job::JobState;
use crate::server::ServeContext;

/// Builds the flat `/metrics` object for the current instant.
pub(crate) fn metrics_json(ctx: &ServeContext) -> Json {
    let mut pairs = vec![
        (
            "uptime_seconds".to_string(),
            Json::F64(ctx.started.elapsed().as_secs_f64()),
        ),
        ("draining".to_string(), Json::Bool(ctx.is_draining())),
        ("workers".to_string(), Json::U64(ctx.workers as u64)),
        ("queue_depth".to_string(), Json::U64(ctx.queue.len() as u64)),
        (
            "queue_capacity".to_string(),
            Json::U64(ctx.queue.capacity() as u64),
        ),
    ];
    let counts = ctx.registry.counts();
    for (state, count) in JobState::ALL.iter().zip(counts) {
        pairs.push((format!("jobs_{}", state.label()), Json::U64(count)));
    }
    pairs.push(("jobs_rejected".to_string(), Json::U64(ctx.rejected())));
    for (name, value) in session_counter_pairs(&ctx.session) {
        pairs.push((format!("session_{name}"), Json::U64(value)));
    }
    Json::Obj(pairs)
}
