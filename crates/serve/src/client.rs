//! A tiny std-only HTTP client, good for exactly one thing: talking to
//! `swip serve` over loopback from tests, the `serve_probe` binary, and
//! scripts.
//!
//! One request per connection (`Connection: close`), response read to
//! EOF — mirroring the server's own single-request connection model.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Sends one request and returns `(status, body)`.
///
/// # Errors
///
/// I/O errors from the socket, plus `InvalidData` when the peer's
/// response is not parseable HTTP.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<(u16, String)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let text = std::str::from_utf8(raw).map_err(|_| bad("response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no head/body separator"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("response status line is unparsable"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let (status, body) =
            parse_response(b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n{\"e\":1}")
                .unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, "{\"e\":1}");
    }

    #[test]
    fn rejects_non_http_bytes() {
        assert!(parse_response(b"ceci n'est pas une reponse").is_err());
    }
}
