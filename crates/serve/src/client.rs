//! A tiny std-only HTTP client, good for exactly one thing: talking to
//! `swip serve` over loopback from tests, the `serve_probe` binary, and
//! scripts.
//!
//! Two flavors: the one-shot [`request`] (sends `Connection: close`,
//! reads to EOF) and the keep-alive [`Connection`], which holds one
//! socket open across requests and frames responses by
//! `Content-Length` — the client-side mirror of the server's
//! readiness-loop connection model.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Sends one request on a fresh connection and returns `(status, body)`.
///
/// # Errors
///
/// I/O errors from the socket, plus `InvalidData` when the peer's
/// response is not parseable HTTP.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let (status, _, body) = parse_response(&raw)?;
    Ok((status, body))
}

/// A kept-alive connection: many requests, one socket.
///
/// Requests are sent without `Connection: close`, so an HTTP/1.1 server
/// keeps the socket open; responses are framed by their
/// `Content-Length` rather than EOF. Dropping the `Connection` closes
/// the socket.
pub struct Connection {
    stream: TcpStream,
    /// Bytes read past the previous response (the server may flush
    /// pipelined responses in one burst).
    carry: Vec<u8>,
}

impl Connection {
    /// Connects to `addr` with 30-second socket timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: &str) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(Connection {
            stream,
            carry: Vec::new(),
        })
    }

    /// Sends one request on the kept-alive socket and returns
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// Socket I/O errors, plus `InvalidData` for unparseable responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let raw = self.request_raw(method, path, body)?;
        let (status, _, body) = parse_response(&raw)?;
        Ok((status, body))
    }

    /// Sends one request and returns the complete raw response bytes
    /// (head + body), for byte-identity assertions in tests.
    ///
    /// # Errors
    ///
    /// Socket I/O errors, plus `InvalidData` for unframeable responses.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Vec<u8>> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: swip-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_framed_response()
    }

    /// Sends one request with a binary body and returns
    /// `(status, body bytes)` — the transfer flavor for the
    /// `/v1/cache/{fingerprint}` routes, whose payloads are raw `SWIP`
    /// trace bytes rather than UTF-8 JSON.
    ///
    /// # Errors
    ///
    /// Socket I/O errors, plus `InvalidData` for unframeable responses.
    pub fn request_bytes(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: swip-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        let raw = self.read_framed_response()?;
        split_response_bytes(&raw)
    }

    /// Writes raw bytes to the socket without awaiting a response
    /// (pipelining aid for tests).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads the next complete response off the socket (head to the
    /// end of its `Content-Length` body) and returns its raw bytes.
    ///
    /// # Errors
    ///
    /// Socket I/O errors, plus `InvalidData` when the response has no
    /// parseable head or length.
    pub fn read_framed_response(&mut self) -> io::Result<Vec<u8>> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut chunk = [0u8; 4096];
        // Head: accumulate to the blank line.
        let head_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-response-head"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.carry[..head_end])
            .map_err(|_| bad("response head is not UTF-8"))?;
        let content_length = head
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse::<usize>().ok())?
            })
            .ok_or_else(|| bad("response has no Content-Length"))?;
        let total = head_end + 4 + content_length;
        while self.carry.len() < total {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-response-body"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let response = self.carry[..total].to_vec();
        self.carry.drain(..total);
        Ok(response)
    }
}

/// Splits raw response bytes into `(status, body bytes)` without
/// requiring the body to be UTF-8 (the head still must be).
fn split_response_bytes(raw: &[u8]) -> io::Result<(u16, Vec<u8>)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no head/body separator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let status = head
        .lines()
        .next()
        .unwrap_or("")
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("response status line is unparsable"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

/// Splits raw response bytes into `(status, head, body)`.
fn parse_response(raw: &[u8]) -> io::Result<(u16, String, String)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let text = std::str::from_utf8(raw).map_err(|_| bad("response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no head/body separator"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("response status line is unparsable"))?;
    Ok((status, head.to_string(), body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let (status, head, body) =
            parse_response(b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n{\"e\":1}")
                .unwrap();
        assert_eq!(status, 429);
        assert!(head.contains("Retry-After: 1"));
        assert_eq!(body, "{\"e\":1}");
    }

    #[test]
    fn rejects_non_http_bytes() {
        assert!(parse_response(b"ceci n'est pas une reponse").is_err());
    }

    #[test]
    fn splits_binary_bodies_without_utf8() {
        let mut raw = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\n".to_vec();
        raw.extend_from_slice(&[0x00, 0xff, 0x80, 0x01]);
        let (status, body) = split_response_bytes(&raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, vec![0x00, 0xff, 0x80, 0x01]);
        // The same bytes would fail the UTF-8-only parser.
        assert!(parse_response(&raw).is_err());
        assert!(split_response_bytes(b"junk").is_err());
    }
}
