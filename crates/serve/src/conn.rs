//! Per-connection state machine for the readiness loop.
//!
//! Each accepted socket gets a [`Conn`]: a read buffer whose unparsed
//! bytes carry over across requests (pipelining), an incremental
//! [`RequestParser`], a write queue, and activity timestamps the server
//! turns into idle/read/write deadlines. All parsing and routing happens
//! on the event-loop thread; only job execution leaves it (via the
//! bounded queue and the worker pool).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use crate::http::{RequestParser, Response};
use crate::router;
use crate::server::ServeContext;

/// Why a connection was closed — the event loop maps this to metrics.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum CloseReason {
    /// Normal end of life: negotiated close, client EOF between
    /// requests, or drain.
    Done,
    /// The peer vanished or the socket failed mid-request, or a read
    /// deadline expired with a partial request buffered.
    MidRequest,
    /// An idle kept-alive connection outlived the keep-alive timeout.
    Idle,
}

/// What the connection wants from the poller next.
pub(crate) struct Interest {
    pub(crate) read: bool,
    pub(crate) write: bool,
}

/// One live connection.
pub(crate) struct Conn {
    stream: TcpStream,
    fd: i32,
    parser: RequestParser,
    /// Read-side carryover: bytes received but not yet parsed. Survives
    /// across requests so pipelined submissions are never dropped.
    buf: Vec<u8>,
    /// Write queue (already-serialized responses) and its send cursor.
    out: Vec<u8>,
    out_pos: usize,
    /// Once set, no further requests are parsed; the connection closes
    /// as soon as `out` flushes.
    close_after_flush: bool,
    /// Requests fully served on this connection (the per-connection
    /// histogram sample).
    pub(crate) requests_served: u64,
    /// Last moment bytes moved in either direction (or the accept
    /// instant); deadlines are measured from here.
    pub(crate) last_activity: Instant,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, fd: i32, now: Instant) -> Self {
        Conn {
            stream,
            fd,
            parser: RequestParser::new(),
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            close_after_flush: false,
            requests_served: 0,
            last_activity: now,
        }
    }

    pub(crate) fn fd(&self) -> i32 {
        self.fd
    }

    /// True while a request prefix sits in the buffer — the difference
    /// between an idle keep-alive connection and a stalled sender.
    pub(crate) fn mid_request(&self) -> bool {
        self.parser.mid_request(&self.buf)
    }

    /// Unflushed response bytes remain.
    pub(crate) fn has_pending_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// An idle kept-alive connection: nothing buffered either way.
    /// These are the ones drain closes outright.
    pub(crate) fn is_idle(&self) -> bool {
        !self.mid_request() && !self.has_pending_write() && !self.close_after_flush
    }

    /// Poll interest for the next wait: stop reading once the
    /// connection is closing (drain semantics: a closing or draining
    /// connection must not buffer further requests).
    pub(crate) fn interest(&self) -> Interest {
        Interest {
            read: !self.close_after_flush,
            write: self.has_pending_write(),
        }
    }

    /// Drains the socket's receive buffer and services every complete
    /// request in it. `Err(reason)` means the connection is dead and
    /// must be dropped without further writes.
    pub(crate) fn on_readable(&mut self, ctx: &Arc<ServeContext>) -> Result<(), CloseReason> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF. Mid-request it's a hangup; between requests
                    // it's the client's normal close. Either way no
                    // response can be delivered.
                    return Err(if self.mid_request() {
                        CloseReason::MidRequest
                    } else {
                        CloseReason::Done
                    });
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    if n < chunk.len() {
                        break; // socket drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    return Err(if self.mid_request() {
                        CloseReason::MidRequest
                    } else {
                        CloseReason::Done
                    })
                }
            }
        }
        self.service(ctx);
        self.flush()
    }

    /// Parses and routes every complete request currently buffered
    /// (pipelining: one readable event can finish several requests).
    fn service(&mut self, ctx: &Arc<ServeContext>) {
        while !self.close_after_flush {
            match self.parser.try_parse(&mut self.buf) {
                Ok(Some(request)) => {
                    // Drain forces closure: kept-alive connections must
                    // not park on a draining server.
                    let keep_alive = request.wants_keep_alive() && !ctx.is_draining();
                    let response = router::route(ctx, &request);
                    let close = !keep_alive || response.close;
                    response.write_connection(&mut self.out, !close);
                    self.requests_served += 1;
                    if close {
                        self.close_after_flush = true;
                    }
                }
                Ok(None) => break, // need more bytes
                Err(e) => {
                    // Parse errors are the client's fault: answer 400
                    // and hang up. (I/O errors never come out of the
                    // in-memory parser.)
                    Response::error(400, &e.to_string()).write_connection(&mut self.out, false);
                    self.close_after_flush = true;
                }
            }
        }
    }

    /// Expires a deadline: answers `408 Request Timeout` if a partial
    /// request is buffered (the client started talking and stalled),
    /// then closes.
    pub(crate) fn expire(&mut self) -> CloseReason {
        if self.mid_request() && !self.close_after_flush {
            Response::error(408, "request timed out mid-transfer")
                .write_connection(&mut self.out, false);
            self.close_after_flush = true;
            // Best effort: push the 408 out now; the conn drops either way.
            let _ = self.flush();
            CloseReason::MidRequest
        } else {
            CloseReason::Idle
        }
    }

    /// Pushes queued response bytes to the socket until it would block.
    /// `Err(reason)` means the connection is finished — either flushed
    /// and marked for close, or the socket died.
    pub(crate) fn flush(&mut self) -> Result<(), CloseReason> {
        while self.has_pending_write() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(CloseReason::MidRequest),
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(CloseReason::MidRequest),
            }
        }
        if self.out_pos == self.out.len() && !self.out.is_empty() {
            // Fully flushed: reclaim the queue.
            self.out.clear();
            self.out_pos = 0;
        }
        if self.close_after_flush {
            return Err(CloseReason::Done);
        }
        Ok(())
    }
}
