//! A deliberately small HTTP/1.1 subset: enough for a loopback control
//! plane, nothing more.
//!
//! The workspace carries no external dependencies, so requests are parsed
//! by hand. The subset is strict where it keeps the server simple:
//!
//! * HTTP/1.1 keep-alive with pipelining (`Connection` negotiation per
//!   request; HTTP/1.0 defaults to close);
//! * bodies require `Content-Length` (no chunked transfer encoding);
//! * exactly one `Content-Length` header — duplicates, even agreeing
//!   ones, are rejected as a request-smuggling vector;
//! * the head is capped at 16 KiB and bodies at 1 MiB — a plan
//!   submission is a few hundred bytes, so anything larger is a client
//!   bug, rejected with a typed [`HttpError`] before buffering it.
//!
//! Parsing is incremental: [`RequestParser`] consumes complete requests
//! from a caller-owned byte buffer and leaves pipelined leftovers in
//! place, so the same parser serves both the blocking [`read_request`]
//! used by tests and the readiness loop's per-connection state machine
//! (see `conn`).

use std::io::{self, Read, Write};

/// Maximum bytes in the request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum bytes in a request body. Public because clients (the fleet
/// coordinator's cache shipping, notably) must know what the server will
/// refuse to buffer.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parse-level rejection, mapped to `400 Bad Request` by the server.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed while reading the request.
    Io(io::Error),
    /// The bytes were not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// The head or body exceeded its size cap.
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error reading request: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge => write!(f, "request exceeds size limits"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request: method, path, version, headers, and body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path, as sent (no query-string splitting — the API has
    /// no query parameters).
    pub path: String,
    /// Protocol version, as sent (`HTTP/1.1` or `HTTP/1.0`).
    pub version: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The connection this request negotiates: `true` to keep the
    /// connection open for the next request.
    ///
    /// HTTP/1.1 defaults to keep-alive unless the client sends
    /// `Connection: close`; HTTP/1.0 defaults to close unless the
    /// client asks for `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => self.version != "HTTP/1.0",
        }
    }
}

/// Incremental single-request parser over a caller-owned buffer.
///
/// `try_parse` either consumes one complete request from the front of
/// the buffer (leaving any pipelined bytes after it in place — nothing
/// is ever discarded), reports that more bytes are needed, or rejects
/// the prefix as malformed. The parser remembers how far the
/// `\r\n\r\n` head scan got, so feeding a head in N chunks costs O(head)
/// total, not O(head·N).
#[derive(Default, Debug)]
pub struct RequestParser {
    /// Resume offset for the head-terminator scan: everything before it
    /// is known not to start `\r\n\r\n`.
    scan_from: usize,
    /// Head length (offset of `\r\n\r\n`) once found, so body
    /// accumulation does not rescan.
    head_end: Option<usize>,
}

impl RequestParser {
    /// A fresh parser (equivalent to `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when a request prefix is buffered but incomplete — the
    /// distinction between an idle connection and one that died
    /// mid-request.
    pub fn mid_request(&self, buf: &[u8]) -> bool {
        !buf.is_empty() || self.head_end.is_some()
    }

    /// Tries to parse one complete request from the front of `buf`.
    ///
    /// On success the request's bytes are drained from `buf` (pipelined
    /// followers stay) and the parser resets for the next request.
    /// `Ok(None)` means the buffer holds only a request prefix.
    ///
    /// # Errors
    ///
    /// [`HttpError::Malformed`] on syntax errors (including duplicate
    /// `Content-Length` headers), [`HttpError::TooLarge`] when a size
    /// cap is exceeded — both before buffering past the cap.
    pub fn try_parse(&mut self, buf: &mut Vec<u8>) -> Result<Option<Request>, HttpError> {
        let head_end = match self.head_end {
            Some(pos) => pos,
            None => {
                let from = self.scan_from;
                match buf[from..].windows(4).position(|w| w == b"\r\n\r\n") {
                    Some(rel) => {
                        let pos = from + rel;
                        if pos > MAX_HEAD {
                            return Err(HttpError::TooLarge);
                        }
                        self.head_end = Some(pos);
                        pos
                    }
                    None => {
                        // A head this long can never terminate legally,
                        // so fail before buffering any further.
                        if buf.len() >= MAX_HEAD {
                            return Err(HttpError::TooLarge);
                        }
                        // The last 3 bytes may be a partial terminator.
                        self.scan_from = buf.len().saturating_sub(3);
                        return Ok(None);
                    }
                }
            }
        };

        let (request, content_length) = parse_head(&buf[..head_end])?;
        if content_length > MAX_BODY {
            return Err(HttpError::TooLarge);
        }
        let body_start = head_end + 4;
        if buf.len() < body_start + content_length {
            return Ok(None); // body still arriving
        }
        let mut request = request;
        request.body = buf[body_start..body_start + content_length].to_vec();
        // Drain exactly this request; pipelined bytes after it carry
        // over to the next try_parse.
        buf.drain(..body_start + content_length);
        self.scan_from = 0;
        self.head_end = None;
        Ok(Some(request))
    }
}

/// Parses the request line and headers (everything before `\r\n\r\n`),
/// returning the body length separately.
fn parse_head(head: &[u8]) -> Result<(Request, usize), HttpError> {
    let head = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("request line has no path"))?
        .to_string();
    let version = match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => v.to_string(),
        _ => return Err(HttpError::Malformed("not an HTTP/1.x request")),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without a colon"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    // Exactly one Content-Length (or none). Accepting duplicates —
    // even matching ones — is how request smuggling starts once
    // responses share a connection.
    let mut content_length = None;
    for (k, v) in &headers {
        if k.eq_ignore_ascii_case("content-length") {
            if content_length.is_some() {
                return Err(HttpError::Malformed("duplicate Content-Length header"));
            }
            content_length = Some(
                v.parse::<usize>()
                    .map_err(|_| HttpError::Malformed("unparsable Content-Length"))?,
            );
        }
    }

    Ok((
        Request {
            method,
            path,
            version,
            headers,
            body: Vec::new(),
        },
        content_length.unwrap_or(0),
    ))
}

/// Reads and parses one request from `stream`, carrying leftover bytes
/// across calls.
///
/// `carry` holds bytes already read from the stream but not yet
/// consumed: pipelined requests accumulate there and are parsed on the
/// next call without touching the socket. On return, `carry` holds
/// exactly the bytes past the parsed request — nothing is discarded.
///
/// # Errors
///
/// [`HttpError::Io`] on socket failure, [`HttpError::Malformed`] on
/// syntax errors, [`HttpError::TooLarge`] when a size cap is exceeded.
pub fn read_request(stream: &mut impl Read, carry: &mut Vec<u8>) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(request) = parser.try_parse(carry)? {
            return Ok(request);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(if parser.head_end.is_some() {
                HttpError::Malformed("connection closed mid-body")
            } else {
                HttpError::Malformed("connection closed mid-head")
            });
        }
        carry.extend_from_slice(&chunk[..n]);
    }
}

/// A response under construction.
///
/// The `Connection` header is decided at serialization time: the
/// connection layer negotiates keep-alive per request and passes the
/// verdict to [`write_connection`](Response::write_connection);
/// [`write_to`](Response::write_to) is the one-shot flavor that always
/// closes. A handler can force closure regardless of negotiation by
/// setting [`close`](Response::close) (e.g. accept-time shedding).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (200, 400, 429, …).
    pub status: u16,
    /// Extra headers beyond the always-present content/connection set.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value (`application/json` unless built with
    /// [`Response::bytes`]).
    pub content_type: &'static str,
    /// Force `Connection: close` even on a kept-alive connection.
    pub close: bool,
}

impl Response {
    /// A JSON response with the given status and body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "application/json",
            close: false,
        }
    }

    /// A binary `application/octet-stream` response (cache shipping).
    pub fn bytes(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body,
            content_type: "application/octet-stream",
            close: false,
        }
    }

    /// A JSON error body `{"error": …}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let obj = swip_report::Json::Obj(vec![(
            "error".to_string(),
            swip_report::Json::Str(message.to_string()),
        )]);
        Response::json(status, obj.render())
    }

    /// Adds a header (e.g. `Retry-After` on a 429).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Marks the response as connection-terminating regardless of what
    /// the request negotiated.
    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    /// Serializes the response into `out` with the negotiated
    /// `Connection` header (`keep_alive = false`, or a set
    /// [`close`](Response::close) flag, emits `close`).
    pub fn write_connection(&self, out: &mut Vec<u8>, keep_alive: bool) {
        let connection = if keep_alive && !self.close {
            "keep-alive"
        } else {
            "close"
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            connection,
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
    }

    /// Serializes the response to `stream` with `Connection: close` —
    /// the one-shot flavor for contexts without a connection state
    /// machine (shedding, tests).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the caller logs and drops them —
    /// a client that hung up mid-response is not a server error).
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(128 + self.body.len());
        self.write_connection(&mut bytes, false);
        stream.write_all(&bytes)?;
        stream.flush()
    }
}

/// The reason phrase for every status the router produces.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor, &mut Vec::new())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"a\":\"b\"}xx",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_str(), Some("{\"a\":\"b\"}xx"));
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse(b"nonsense\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: zero\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Agreeing duplicates are rejected too: the smuggling vector is
        // two parsers disagreeing about which one counts.
        for second in ["3", "5"] {
            let raw = format!(
                "POST /v1/jobs HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: {second}\r\n\r\nabcde"
            );
            let err = parse(raw.as_bytes()).unwrap_err();
            assert!(
                matches!(err, HttpError::Malformed(m) if m.contains("duplicate Content-Length")),
                "{err}"
            );
        }
    }

    #[test]
    fn pipelined_bytes_carry_over() {
        // Two requests in one burst: the bytes past the first body must
        // survive in `carry` and parse as the second request without
        // touching the stream again.
        let raw =
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /healthz HTTP/1.1\r\n\r\n";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let mut carry = Vec::new();
        let first = read_request(&mut cursor, &mut carry).unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body_str(), Some("hi"));
        assert!(!carry.is_empty(), "pipelined bytes were destroyed");
        let second = read_request(&mut cursor, &mut carry).unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(carry.is_empty());
    }

    #[test]
    fn incremental_parser_resumes_without_rescanning() {
        let raw: &[u8] = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut parser = RequestParser::new();
        let mut buf = Vec::new();
        for (i, &b) in raw.iter().enumerate() {
            buf.push(b);
            let parsed = parser.try_parse(&mut buf).unwrap();
            if i + 1 < raw.len() {
                assert!(parsed.is_none(), "parsed early at byte {i}");
                assert!(parser.mid_request(&buf));
                // The scan cursor must track the buffer, never rescan
                // from zero (the O(n²) regression).
                assert!(parser.scan_from + 3 >= buf.len().min(raw.len() - 4));
            } else {
                let req = parsed.expect("complete request must parse");
                assert_eq!(req.path, "/healthz");
            }
        }
        assert!(buf.is_empty());
        assert!(!parser.mid_request(&buf));
    }

    #[test]
    fn oversized_head_fails_before_buffering_past_the_cap() {
        let mut parser = RequestParser::new();
        let mut buf = b"GET /x HTTP/1.1\r\n".to_vec();
        buf.resize(MAX_HEAD, b'a'); // no terminator in sight
        assert!(matches!(
            parser.try_parse(&mut buf),
            Err(HttpError::TooLarge)
        ));
        assert!(buf.len() <= MAX_HEAD, "buffered past the head cap");
    }

    #[test]
    fn keep_alive_negotiation_follows_version_defaults() {
        let req = parse(b"GET /x HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive(), "1.1 defaults to keep-alive");
        let req = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive(), "1.0 defaults to close");
        let req = parse(b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn responses_carry_length_and_negotiated_connection() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut kept = Vec::new();
        Response::json(200, "{}").write_connection(&mut kept, true);
        assert!(String::from_utf8(kept)
            .unwrap()
            .contains("Connection: keep-alive\r\n"));

        // A forced close wins over keep-alive negotiation (shedding).
        let mut shed = Vec::new();
        Response::error(503, "full")
            .with_close()
            .write_connection(&mut shed, true);
        assert!(String::from_utf8(shed)
            .unwrap()
            .contains("Connection: close\r\n"));
    }
}
