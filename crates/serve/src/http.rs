//! A deliberately small HTTP/1.1 subset: enough for a loopback control
//! plane, nothing more.
//!
//! The workspace carries no external dependencies, so requests are parsed
//! by hand. The subset is strict where it keeps the server simple:
//!
//! * one request per connection (`Connection: close` on every response);
//! * bodies require `Content-Length` (no chunked transfer encoding);
//! * the head is capped at 16 KiB and bodies at 1 MiB — a plan
//!   submission is a few hundred bytes, so anything larger is a client
//!   bug, rejected with a typed [`HttpError`] before buffering it.

use std::io::{self, Read, Write};

/// Maximum bytes in the request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum bytes in a request body.
const MAX_BODY: usize = 1024 * 1024;

/// A parse-level rejection, mapped to `400 Bad Request` by the server.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed while reading the request.
    Io(io::Error),
    /// The bytes were not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// The head or body exceeded its size cap.
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error reading request: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge => write!(f, "request exceeds size limits"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request: method, path, headers, and (possibly empty) body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path, as sent (no query-string splitting — the API has
    /// no query parameters).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// [`HttpError::Io`] on socket failure, [`HttpError::Malformed`] on
/// syntax errors, [`HttpError::TooLarge`] when a size cap is exceeded.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("request line has no path"))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("not an HTTP/1.x request")),
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without a colon"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    // Body: exactly Content-Length bytes, some of which may already be
    // in `buf` past the head terminator.
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("unparsable Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response under construction; always sent with `Connection: close`.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (200, 400, 429, …).
    pub status: u16,
    /// Extra headers beyond the always-present content/connection set.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status and body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error body `{"error": …}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let obj = swip_report::Json::Obj(vec![(
            "error".to_string(),
            swip_report::Json::Str(message.to_string()),
        )]);
        Response::json(status, obj.render())
    }

    /// Adds a header (e.g. `Retry-After` on a 429).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response to `stream`.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the caller logs and drops them —
    /// a client that hung up mid-response is not a server error).
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The reason phrase for every status the router produces.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"a\":\"b\"}xx",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_str(), Some("{\"a\":\"b\"}xx"));
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse(b"nonsense\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: zero\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
