//! The server proper: shared context, accept loop, and graceful drain.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use swip_bench::Session;

use crate::admit::AdmissionCache;
use crate::http::{read_request, Response};
use crate::job::{JobRegistry, JobState};
use crate::queue::BoundedQueue;
use crate::worker::{spawn_workers, QueuedJob};
use crate::{router, shutdown};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-connection socket timeout: a stalled client cannot pin a handler
/// thread forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// Knobs for [`Server::bind`]; session knobs live on
/// [`SessionBuilder`](swip_bench::SessionBuilder) instead.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing jobs (each job additionally fans out on
    /// the session's own thread pool).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it get 429.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 2,
            queue_depth: 16,
        }
    }
}

/// State shared by the accept loop, connection handlers, and workers.
///
/// Obtainable via [`Server::context`] and alive after
/// [`Server::run`] returns, so embedders (and the integration tests)
/// can inspect final job states post-drain.
pub struct ServeContext {
    pub(crate) session: Session,
    pub(crate) queue: BoundedQueue<QueuedJob>,
    pub(crate) registry: JobRegistry,
    pub(crate) admission: AdmissionCache,
    pub(crate) started: Instant,
    pub(crate) workers: usize,
    draining: AtomicBool,
    rejected: AtomicU64,
}

impl ServeContext {
    /// The warm session executing this server's jobs.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// True once the server stopped accepting jobs (drain in progress
    /// or finished).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Total submissions rejected for backpressure (429) since start.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Jobs per state, in [`JobState::ALL`] order.
    pub fn job_counts(&self) -> [u64; 4] {
        self.registry.counts()
    }

    /// The state of job `id`, if it exists.
    pub fn job_state(&self, id: u64) -> Option<JobState> {
        self.registry.with(id, |j| j.state)
    }

    pub(crate) fn count_rejection(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Stops admission and closes the queue; queued jobs still drain.
    /// Idempotent.
    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }
}

/// A bound, not-yet-running service instance.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    ctx: Arc<ServeContext>,
}

impl Server {
    /// Binds the listen socket and assembles the shared context around
    /// `session`. The server does not accept connections until
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures (address in use, permission).
    pub fn bind(config: &ServeConfig, session: Session) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let ctx = Arc::new(ServeContext {
            session,
            queue: BoundedQueue::new(config.queue_depth.max(1)),
            registry: JobRegistry::new(),
            admission: AdmissionCache::default(),
            started: Instant::now(),
            workers: config.workers.max(1),
            draining: AtomicBool::new(false),
            rejected: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            local_addr,
            ctx,
        })
    }

    /// The actual bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle to the shared state; clone-cheap and valid after
    /// [`run`](Self::run) returns.
    pub fn context(&self) -> Arc<ServeContext> {
        Arc::clone(&self.ctx)
    }

    /// Serves until shutdown, then drains and returns.
    ///
    /// Shutdown triggers are SIGINT/SIGTERM (via [`shutdown`]) and
    /// `POST /v1/shutdown`. From that point new submissions get 503
    /// while status/metrics requests keep working; once the workers
    /// finish every accepted job the loop exits and the workers are
    /// joined — the "graceful drain, exit 0" contract.
    ///
    /// # Errors
    ///
    /// Propagates fatal accept-loop I/O errors. Per-connection errors
    /// (malformed requests, client hangups) are contained and answered
    /// with 400 where possible.
    pub fn run(self) -> io::Result<()> {
        shutdown::install_handlers();
        self.listener.set_nonblocking(true)?;
        let workers = spawn_workers(&self.ctx, self.ctx.workers);
        loop {
            if shutdown::requested() {
                self.ctx.begin_drain();
            }
            if self.ctx.is_draining() && workers.iter().all(|w| w.is_finished()) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let ctx = Arc::clone(&self.ctx);
                    thread::spawn(move || handle_connection(stream, &ctx));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serves one request on `stream`; all errors are contained here.
fn handle_connection(mut stream: TcpStream, ctx: &Arc<ServeContext>) {
    // Accepted sockets must block (with a bound): the listener is
    // nonblocking and some platforms make children inherit that.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let response = match read_request(&mut stream) {
        Ok(request) => router::route(ctx, &request),
        Err(e) => Response::error(400, &e.to_string()),
    };
    // A client that hung up before the response is its problem, not ours.
    let _ = response.write_to(&mut stream);
}
