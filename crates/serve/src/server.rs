//! The server proper: shared context, the `poll(2)` readiness loop, and
//! graceful drain.
//!
//! One thread owns every socket. The listener and all connections are
//! nonblocking and multiplexed through [`poll`](crate::poll); requests
//! are parsed and routed on the loop thread (admission is cheap), and
//! only job execution crosses to the worker pool via the bounded queue.
//! The connection table is bounded by `max_conns` — connections past the
//! cap are shed at accept time with `503` + `Connection: close`, so the
//! process never grows a thread (or an fd table) proportional to client
//! count.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use swip_bench::Session;

use crate::admit::AdmissionCache;
use crate::conn::{CloseReason, Conn};
use crate::http::Response;
use crate::job::{JobRegistry, JobState};
use crate::metrics::ConnMetrics;
use crate::poll::{self, PollFd};
use crate::queue::BoundedQueue;
use crate::shutdown;
use crate::worker::{spawn_workers, QueuedJob};

/// Upper bound on one poll wait, so the loop re-checks the shutdown
/// flag and worker liveness even with no socket activity.
const POLL_CAP: Duration = Duration::from_millis(100);
/// Tighter cap while draining: worker completion has no fd to wake on.
const DRAIN_POLL_CAP: Duration = Duration::from_millis(25);

/// Knobs for [`Server::bind`]; session knobs live on
/// [`SessionBuilder`](swip_bench::SessionBuilder) instead.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing jobs (each job additionally fans out on
    /// the session's own thread pool).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it get 429.
    pub queue_depth: usize,
    /// Connection-table bound; accepts past it are shed with `503` +
    /// `Connection: close`.
    pub max_conns: usize,
    /// How long an idle kept-alive connection may sit between requests
    /// before the server closes it.
    pub keep_alive_timeout: Duration,
    /// How long a connection may stall mid-request (or mid-response)
    /// before it gets `408 Request Timeout` (or is dropped).
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 2,
            queue_depth: 16,
            max_conns: 256,
            keep_alive_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// State shared by the event loop, the router, and the workers.
///
/// Obtainable via [`Server::context`] and alive after
/// [`Server::run`] returns, so embedders (and the integration tests)
/// can inspect final job states post-drain.
pub struct ServeContext {
    pub(crate) session: Session,
    pub(crate) queue: BoundedQueue<QueuedJob>,
    pub(crate) registry: JobRegistry,
    pub(crate) admission: AdmissionCache,
    pub(crate) started: Instant,
    pub(crate) workers: usize,
    pub(crate) conns: ConnMetrics,
    pub(crate) max_conns: usize,
    pub(crate) keep_alive_timeout: Duration,
    pub(crate) read_timeout: Duration,
    draining: AtomicBool,
    rejected: AtomicU64,
}

impl ServeContext {
    /// The warm session executing this server's jobs.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// True once the server stopped accepting jobs (drain in progress
    /// or finished).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Total submissions rejected for backpressure (429) since start.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Connections shed at accept time (`503`) because the table was
    /// at `max_conns`.
    pub fn conns_shed(&self) -> u64 {
        self.conns.shed.load(Ordering::Relaxed)
    }

    /// Connections closed for stalling mid-request (read deadline,
    /// hangup, or socket error with a partial request buffered).
    pub fn conn_timeouts(&self) -> u64 {
        self.conns.timeouts.load(Ordering::Relaxed)
    }

    /// Jobs per state, in [`JobState::ALL`] order.
    pub fn job_counts(&self) -> [u64; 4] {
        self.registry.counts()
    }

    /// The state of job `id`, if it exists.
    pub fn job_state(&self, id: u64) -> Option<JobState> {
        self.registry.with(id, |j| j.state)
    }

    pub(crate) fn count_rejection(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Stops admission and closes the queue; queued jobs still drain.
    /// Idempotent.
    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }
}

/// A bound, not-yet-running service instance.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    ctx: Arc<ServeContext>,
}

impl Server {
    /// Binds the listen socket and assembles the shared context around
    /// `session`. The server does not accept connections until
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures (address in use, permission).
    pub fn bind(config: &ServeConfig, session: Session) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let ctx = Arc::new(ServeContext {
            session,
            queue: BoundedQueue::new(config.queue_depth.max(1)),
            registry: JobRegistry::new(),
            admission: AdmissionCache::default(),
            started: Instant::now(),
            workers: config.workers.max(1),
            conns: ConnMetrics::default(),
            max_conns: config.max_conns.max(1),
            keep_alive_timeout: config.keep_alive_timeout,
            read_timeout: config.read_timeout,
            draining: AtomicBool::new(false),
            rejected: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            local_addr,
            ctx,
        })
    }

    /// The actual bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle to the shared state; clone-cheap and valid after
    /// [`run`](Self::run) returns.
    pub fn context(&self) -> Arc<ServeContext> {
        Arc::clone(&self.ctx)
    }

    /// Serves until shutdown, then drains and returns.
    ///
    /// Shutdown triggers are SIGINT/SIGTERM (via [`shutdown`]) and
    /// `POST /v1/shutdown`. From that point new submissions get 503
    /// while status/metrics requests keep working, idle kept-alive
    /// connections are closed (and no longer read from), and once the
    /// workers finish every accepted job the loop exits and the workers
    /// are joined — the "graceful drain, exit 0" contract.
    ///
    /// # Errors
    ///
    /// Propagates fatal `poll`/`accept` I/O errors. Per-connection
    /// errors (malformed requests, hangups, stalls) are contained in
    /// the connection state machine.
    pub fn run(self) -> io::Result<()> {
        shutdown::install_handlers();
        self.listener.set_nonblocking(true)?;
        let listener_fd = fd_of_listener(&self.listener);
        let workers = spawn_workers(&self.ctx, self.ctx.workers);
        let mut conns: Vec<Conn> = Vec::new();
        let mut fds: Vec<PollFd> = Vec::new();

        loop {
            if shutdown::requested() {
                self.ctx.begin_drain();
            }
            let draining = self.ctx.is_draining();
            if draining {
                // Drain stops *reading*, not just admitting: idle
                // kept-alive connections are closed outright instead of
                // parking in the poll set. Fresh connections (no request
                // served yet) stay — status/metrics must keep answering
                // during drain — and cannot delay exit, which only waits
                // on pending writes.
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].is_idle() && conns[i].requests_served > 0 {
                        let conn = conns.swap_remove(i);
                        self.ctx.conns.record_close(&conn, CloseReason::Done);
                    } else {
                        i += 1;
                    }
                }
            }
            let workers_done = draining && workers.iter().all(|w| w.is_finished());
            if workers_done && conns.iter().all(|c| !c.has_pending_write()) {
                break;
            }

            // Assemble the poll set: listener first, then every
            // connection with its current interest.
            fds.clear();
            fds.push(PollFd::new(listener_fd, true, false));
            for conn in &conns {
                let interest = conn.interest();
                fds.push(PollFd::new(conn.fd(), interest.read, interest.write));
            }
            let timeout = self.poll_timeout(&conns, draining);
            poll::wait(&mut fds, timeout)?;

            if fds[0].readable() {
                self.accept_burst(&mut conns)?;
            }

            // Service events. `fds[i + 1]` corresponds to `conns[i]`
            // (new accepts sit past the polled range and wait a turn).
            let mut closed: Vec<(usize, CloseReason)> = Vec::new();
            for (i, fd) in fds.iter().enumerate().skip(1) {
                let conn = &mut conns[i - 1];
                if fd.failed() {
                    closed.push((
                        i - 1,
                        if conn.mid_request() {
                            CloseReason::MidRequest
                        } else {
                            CloseReason::Done
                        },
                    ));
                    continue;
                }
                let outcome = if fd.readable() {
                    conn.on_readable(&self.ctx)
                } else if fd.writable() {
                    conn.flush()
                } else {
                    Ok(())
                };
                if let Err(reason) = outcome {
                    closed.push((i - 1, reason));
                }
            }

            // Deadlines: 408 a stalled sender, drop a stalled reader,
            // close an expired idle kept-alive connection.
            let now = Instant::now();
            for (i, conn) in conns.iter_mut().enumerate() {
                if closed.iter().any(|&(j, _)| j == i) {
                    continue;
                }
                if now >= self.deadline_of(conn) {
                    let reason = if conn.has_pending_write() {
                        CloseReason::MidRequest // peer stopped reading
                    } else {
                        conn.expire()
                    };
                    closed.push((i, reason));
                }
            }

            // Remove closed connections, highest index first so
            // swap_remove cannot disturb a pending removal.
            closed.sort_by_key(|c| std::cmp::Reverse(c.0));
            for (i, reason) in closed {
                let conn = conns.swap_remove(i);
                self.ctx.conns.record_close(&conn, reason);
            }

            self.ctx.conns.store_gauges(&conns);
        }

        self.ctx.conns.store_gauges(&conns);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Accepts until the listener would block, shedding past the
    /// connection-table bound.
    fn accept_burst(&self, conns: &mut Vec<Conn>) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if conns.len() >= self.ctx.max_conns {
                        shed(stream, &self.ctx);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue; // socket died between accept and setup
                    }
                    let fd = fd_of_stream(&stream);
                    conns.push(Conn::new(stream, fd, Instant::now()));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The instant at which `conn` times out under the current config.
    fn deadline_of(&self, conn: &Conn) -> Instant {
        let grace = if conn.mid_request() || conn.has_pending_write() {
            self.ctx.read_timeout
        } else {
            self.ctx.keep_alive_timeout
        };
        conn.last_activity + grace
    }

    /// Sleep no longer than the nearest connection deadline (capped so
    /// the loop stays responsive to signals and worker completion).
    fn poll_timeout(&self, conns: &[Conn], draining: bool) -> Duration {
        let mut timeout = if draining { DRAIN_POLL_CAP } else { POLL_CAP };
        let now = Instant::now();
        for conn in conns {
            timeout = timeout.min(self.deadline_of(conn).saturating_duration_since(now));
        }
        timeout
    }
}

/// Accept-time shedding: the table is full, so the connection gets an
/// immediate `503` + `Connection: close` and is dropped. Bounded
/// best-effort write — a shed connection is not worth waiting on.
fn shed(stream: TcpStream, ctx: &ServeContext) {
    ctx.conns.shed.fetch_add(1, Ordering::Relaxed);
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = Response::error(503, "connection table is full; retry later")
        .with_header("Retry-After", "1")
        .write_to(&mut stream);
    let _ = stream.flush();
}

#[cfg(unix)]
fn fd_of_stream(stream: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(unix)]
fn fd_of_listener(listener: &TcpListener) -> i32 {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

// Off Unix the poll shim reports every fd ready regardless, so the fd
// value is never dereferenced — any placeholder works.
#[cfg(not(unix))]
fn fd_of_stream(_stream: &TcpStream) -> i32 {
    -1
}

#[cfg(not(unix))]
fn fd_of_listener(_listener: &TcpListener) -> i32 {
    -1
}
