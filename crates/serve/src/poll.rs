//! Readiness notification for the connection loop: a minimal `poll(2)`
//! shim, mirroring the `signal(2)` island in [`shutdown`](crate::shutdown).
//!
//! The workspace has no event-loop dependency, so this module wraps the
//! one syscall the server needs behind a safe API: build a list of
//! [`PollFd`]s, call [`wait`], inspect readiness. The unsafe block is
//! confined here (the crate is otherwise `deny(unsafe_code)`); the
//! non-Unix fallback degrades to a timed sleep that reports every fd
//! ready, which is correct (if busier) against nonblocking sockets.

use std::io;
use std::time::Duration;

/// Interest and readiness for one file descriptor, layout-compatible
/// with `struct pollfd`.
#[repr(C)]
#[derive(Copy, Clone, Debug)]
pub(crate) struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

impl PollFd {
    /// Interest in `fd`: readable and/or writable.
    pub(crate) fn new(fd: i32, read: bool, write: bool) -> Self {
        let mut events = 0;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Readable, or hung up (a read will observe EOF without blocking).
    pub(crate) fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP) != 0
    }

    /// Writable without blocking.
    pub(crate) fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Error or invalid-fd condition; the connection is beyond saving.
    pub(crate) fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

/// Blocks until at least one fd is ready or `timeout` elapses; returns
/// the number of ready fds (0 on timeout).
///
/// # Errors
///
/// Propagates `poll(2)` failures other than `EINTR` (which reports as a
/// zero-ready wakeup so the caller re-checks its shutdown flag).
pub(crate) fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    ffi::wait(fds, timeout)
}

#[cfg(unix)]
mod ffi {
    #![allow(unsafe_code)]

    use super::PollFd;
    use std::io;
    use std::time::Duration;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub(super) fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // repr(C) pollfd-compatible structs; the kernel writes only to
        // `revents` within its bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, millis) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            // A signal landed (likely SIGINT/SIGTERM); surface as a
            // timeout so the loop polls its shutdown flag.
            return Ok(0);
        }
        Err(err)
    }
}

#[cfg(not(unix))]
mod ffi {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    pub(super) fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        // No poll(2): sleep briefly and report everything ready. The
        // sockets are nonblocking, so spurious readiness costs one
        // WouldBlock each.
        std::thread::sleep(timeout.min(Duration::from_millis(10)));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[cfg(unix)]
    fn fd_of(s: &TcpStream) -> i32 {
        use std::os::unix::io::AsRawFd;
        s.as_raw_fd()
    }

    #[cfg(unix)]
    #[test]
    fn reports_readable_only_after_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(fd_of(&server), true, false)];
        let n = wait(&mut fds, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0, "nothing written yet");
        assert!(!fds[0].readable());

        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        let n = wait(&mut fds, Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());

        // A writable socket with room in its send buffer is ready
        // immediately.
        let mut wfds = [PollFd::new(fd_of(&server), false, true)];
        assert_eq!(wait(&mut wfds, Duration::from_secs(5)).unwrap(), 1);
        assert!(wfds[0].writable());
    }

    #[cfg(unix)]
    #[test]
    fn timeout_is_honored_with_no_fds() {
        let started = Instant::now();
        let n = wait(&mut [], Duration::from_millis(30)).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(25));
    }
}
