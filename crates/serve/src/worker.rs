//! The fixed worker pool that turns queued jobs into reports.
//!
//! Workers pull from the bounded queue and execute plans through the
//! shared warm [`Session`](swip_bench::Session) — every job after the
//! first reuses the session's memoized traces and AsmDB outputs, which
//! is the whole point of serving from one process. A worker exits when
//! [`pop`](crate::queue::BoundedQueue::pop) returns `None`, i.e. the
//! queue is closed *and* drained, so shutdown naturally finishes
//! accepted work first.
//!
//! Panic containment is two-layered: the engine already catches panics
//! on its own pool (surfacing them as
//! [`EngineError::JobPanicked`](swip_bench::EngineError)), and the
//! worker wraps the whole job in `catch_unwind` besides — a poisoned job
//! becomes a `failed` record with a reason, never a dead server.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use swip_bench::{build_plan_report, ExperimentPlan};

use crate::server::ServeContext;

/// One accepted unit of work: the job id plus its resolved plan.
pub(crate) struct QueuedJob {
    pub(crate) id: u64,
    pub(crate) plan: ExperimentPlan,
}

/// Spawns `n` workers against the context's queue.
pub(crate) fn spawn_workers(ctx: &Arc<ServeContext>, n: usize) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let ctx = Arc::clone(ctx);
            thread::Builder::new()
                .name(format!("swip-serve-worker-{i}"))
                .spawn(move || worker_loop(&ctx))
                .expect("spawning a worker thread")
        })
        .collect()
}

fn worker_loop(ctx: &ServeContext) {
    while let Some(job) = ctx.queue.pop() {
        ctx.registry.mark_running(job.id);
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(ctx, &job.plan)));
        match outcome {
            Ok(Ok(report_json)) => ctx.registry.mark_done(job.id, report_json),
            Ok(Err(reason)) => ctx.registry.mark_failed(job.id, reason),
            Err(payload) => ctx
                .registry
                .mark_failed(job.id, format!("job panicked: {}", panic_text(&payload))),
        }
    }
}

/// Runs one plan to a rendered deterministic report.
fn execute(ctx: &ServeContext, plan: &ExperimentPlan) -> Result<String, String> {
    let results = ctx.session.run(plan).map_err(|e| e.to_string())?;
    Ok(build_plan_report(&ctx.session, &results).to_json())
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}
