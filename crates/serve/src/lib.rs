//! `swip serve`: the experiment engine as a dependency-free HTTP/1.1
//! service.
//!
//! One process holds one warm [`Session`](swip_bench::Session) for its
//! whole lifetime, so every job after the first reuses the session's
//! memoized traces and AsmDB pipeline outputs — the serving analogue of
//! a long-lived `swip bench` sweep. Everything is `std`: the listener is
//! a [`TcpListener`](std::net::TcpListener), the HTTP/1.1 subset is
//! hand-rolled, readiness comes from a minimal `poll(2)` shim, and JSON
//! goes through `swip-report`'s value type.
//!
//! I/O is a single-threaded readiness loop over nonblocking sockets:
//! connections are kept alive across requests (HTTP/1.1 negotiation,
//! pipelining included), the connection table is bounded by
//! `max_conns` with accept-time `503` shedding, and per-connection
//! idle/read deadlines evict stalled peers (`408` mid-request). Only
//! job execution leaves the loop thread, via the bounded queue and the
//! fixed worker pool — client count never grows the thread count.
//!
//! # API
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | Submit a plan (`{"workloads": […], "configs": […], "prefetchers": […], "insertions": […]}`, empty axes = the paper six) → job id |
//! | `GET /v1/jobs/{id}` | Job state machine `queued → running → done \| failed` + timings |
//! | `GET /v1/jobs/{id}/report` | The finished job's deterministic `RunReport` |
//! | `GET /healthz` | Liveness + drain flag |
//! | `GET /metrics` | Queue depth, jobs by state, session counters, uptime |
//! | `GET /v1/cache/{fingerprint}` | Content-addressed trace-cache entry as raw `SWIP` bytes (404 until cached) |
//! | `PUT /v1/cache/{fingerprint}` | Install shipped trace bytes after validation (fleet cache warming) |
//! | `POST /v1/shutdown` | Begin graceful drain (what SIGINT does, but testable) |
//!
//! # Contracts
//!
//! * **Backpressure is typed**: the queue is bounded; a full queue
//!   answers `429` with `Retry-After`, never unbounded buffering.
//! * **Admission is static**: before queueing, the plan's prefetch
//!   insertions (custom ones from the spec, and the session's own AsmDB
//!   plan for AsmDB configurations) are evaluated against each selected
//!   workload's CFG with `swip-analyze`'s coverage rules; fatal
//!   diagnostics (`D001`, provably dead) are a `400` carrying the rule
//!   ids.
//! * **Reports are deterministic**: a job's report is built with
//!   [`build_plan_report`](swip_bench::build_plan_report), byte-identical
//!   to an offline run of the same plan at the same session knobs.
//!   Wall-clock lives on the job resource, live counters on `/metrics`.
//! * **Panics are contained**: a poisoned job becomes a `failed` record,
//!   not a dead server.
//! * **Connections are bounded**: the table caps at `max_conns`;
//!   accepts past it are shed immediately with `503` +
//!   `Connection: close`, never queued or threaded.
//! * **Shutdown drains**: SIGINT/SIGTERM (or `POST /v1/shutdown`) stops
//!   admission with `503`, closes (and stops reading) idle kept-alive
//!   connections, finishes accepted jobs, then exits 0.
//!
//! ```no_run
//! use swip_serve::{ServeConfig, Server};
//!
//! let session = swip_bench::SessionBuilder::new().build()?;
//! let server = Server::bind(&ServeConfig::default(), session)?;
//! println!("listening on {}", server.local_addr());
//! server.run()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than the workspace's usual `forbid`: the `signal(2)`
// shim in `shutdown` and the `poll(2)` shim in `poll` are the two
// places allowed to override it.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admit;
pub mod client;
mod conn;
mod http;
mod job;
mod metrics;
mod poll;
mod queue;
mod router;
mod server;
pub mod shutdown;
mod worker;

pub use http::{read_request, HttpError, Request, RequestParser, Response, MAX_BODY};
pub use job::{JobRecord, JobRegistry, JobState};
pub use queue::{BoundedQueue, SubmitError};
pub use server::{ServeConfig, ServeContext, Server};
