//! Process-wide shutdown flag, set by SIGINT/SIGTERM.
//!
//! The workspace has no signal-handling dependency, so the installer is
//! a minimal `signal(2)` FFI shim, confined to this module (the crate is
//! otherwise `deny(unsafe_code)`). The handler does the only
//! async-signal-safe thing a handler can usefully do: store a relaxed
//! atomic. The accept loop polls [`requested`] and begins its drain —
//! the signal never interrupts a running simulation job.
//!
//! The flag is process-global (signals are), but each
//! [`Server`](crate::Server) drains via its own per-instance flag, so
//! tests can run several servers in one process and shut them down
//! independently through `POST /v1/shutdown`.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a termination signal has been delivered (or [`request`]
/// called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag by hand (testing aid; servers normally drain
/// via their own flag).
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handlers (no-op off Unix). Idempotent.
pub fn install_handlers() {
    ffi::install();
}

#[cfg(unix)]
mod ffi {
    #![allow(unsafe_code)]

    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // The returned previous handler is deliberately discarded; there
        // is nothing to chain to in this binary.
        unsafe {
            let _ = signal(SIGINT, on_signal);
            let _ = signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod ffi {
    pub fn install() {}
}
