//! A bounded MPMC job queue with typed rejection and drain-on-close.
//!
//! Submission ([`BoundedQueue::push`]) never blocks: a full queue is a
//! [`SubmitError::Full`] the router turns into `429 Too Many Requests`,
//! which is the service's backpressure contract — load is shed at
//! admission, not absorbed into unbounded memory. Consumption
//! ([`BoundedQueue::pop`]) blocks on a condvar. Closing the queue rejects
//! new submissions but lets workers drain what was already accepted,
//! which is exactly the graceful-shutdown semantics `swip serve` needs.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// A typed submission rejection.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SubmitError {
    /// The queue is at capacity (HTTP 429).
    Full,
    /// The queue was closed for shutdown (HTTP 503).
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full => write!(f, "job queue is full"),
            SubmitError::Closed => write!(f, "job queue is closed (server draining)"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` pending items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] after [`close`](Self::close),
    /// [`SubmitError::Full`] at capacity.
    pub fn push(&self, item: T) -> Result<(), SubmitError> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(SubmitError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        s.items.push_back(item);
        drop(s);
        self.cond.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed **and** drained —
    /// the worker-thread exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.cond.wait(s).unwrap();
        }
    }

    /// Closes the queue: new pushes fail with [`SubmitError::Closed`],
    /// already-queued items remain poppable. Idempotent.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cond.notify_all();
    }

    /// Number of items currently queued (racy by nature; metrics only).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_typed_when_full_or_closed() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(SubmitError::Full));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.push(4), Err(SubmitError::Closed));
        // Close drains, it does not drop.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // and stays terminal
    }

    #[test]
    fn blocking_pop_sees_later_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..4 {
            while q.push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
