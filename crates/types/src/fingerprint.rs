//! A tiny streaming FNV-1a hasher for configuration fingerprints.
//!
//! Several layers of the workspace need a stable, dependency-free content
//! address: `swip-report` fingerprints run configurations, and the trace
//! disk cache keys its files by the workload parameters that generated
//! them (so two sessions with different generator tunings can share one
//! cache directory without ever reading each other's traces). Both uses
//! want the same shape — feed fields, get 16 hex digits — so the hasher
//! lives here in the vocabulary crate.
//!
//! Fields are separated by an out-of-band `0xff` marker byte folded into
//! the state, so `["ab", "c"]` and `["a", "bc"]` hash differently.

/// A streaming 64-bit FNV-1a hasher with explicit field separation.
///
/// # Examples
///
/// ```
/// use swip_types::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.field(b"secret_srv12");
/// h.field(&300_000u64.to_le_bytes());
/// let fp = h.finish();
/// assert_eq!(fp.len(), 16);
/// assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
/// ```
#[derive(Clone, Debug)]
pub struct Fnv1a {
    hash: u64,
}

impl Fnv1a {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { hash: Self::BASIS }
    }

    /// Folds raw bytes into the state (no field separator).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one delimited field: the bytes, then the `0xff` separator.
    pub fn field(&mut self, bytes: &[u8]) {
        self.write(bytes);
        self.hash ^= 0xff;
        self.hash = self.hash.wrapping_mul(Self::PRIME);
    }

    /// The current state as 16 lowercase hex digits.
    pub fn finish(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_separation_distinguishes_splits() {
        let mut a = Fnv1a::new();
        a.field(b"ab");
        a.field(b"c");
        let mut b = Fnv1a::new();
        b.field(b"a");
        b.field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn deterministic_and_hex_shaped() {
        let fp = |s: &[u8]| {
            let mut h = Fnv1a::new();
            h.field(s);
            h.finish()
        };
        assert_eq!(fp(b"x"), fp(b"x"));
        assert_ne!(fp(b"x"), fp(b"y"));
        let f = fp(b"x");
        assert_eq!(f.len(), 16);
        assert!(f
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn empty_input_still_hashes_the_separator() {
        let mut h = Fnv1a::new();
        h.field(b"");
        assert_ne!(h.finish(), Fnv1a::new().finish());
    }
}
