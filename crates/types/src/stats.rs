//! Small statistics utilities shared by the simulator crates.

use std::fmt;

/// A saturating event counter.
///
/// A thin wrapper over `u64` that makes statistics structs self-describing
/// and guards against accidental arithmetic on unrelated counters.
///
/// # Examples
///
/// ```
/// use swip_types::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns this count per `per` units of `denom` (e.g. misses per 1000
    /// instructions). Returns 0.0 when `denom` is zero.
    pub fn per(self, denom: u64, per: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 * per as f64 / denom as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> u64 {
        c.0
    }
}

/// A hit/total ratio accumulator (hit rates, coverage, accuracy).
///
/// # Examples
///
/// ```
/// use swip_types::Ratio;
///
/// let mut r = Ratio::new();
/// r.record(true);
/// r.record(false);
/// assert_eq!(r.rate(), 0.5);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Default, Debug)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub const fn new() -> Self {
        Ratio { hits: 0, total: 0 }
    }

    /// Records one event; `hit` selects the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub const fn hits(self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub const fn total(self) -> u64 {
        self.total
    }

    /// Misses (`total - hits`).
    pub const fn misses(self) -> u64 {
        self.total - self.hits
    }

    /// Hit fraction in `[0, 1]`; 0.0 when no events were recorded.
    pub fn rate(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.hits,
            self.total,
            self.rate() * 100.0
        )
    }
}

/// An online arithmetic mean over `u64` samples.
///
/// The sum is accumulated in `u128`: with `u64` samples and a `u64` sample
/// count the accumulator cannot overflow, so long runs never saturate and
/// silently bias the mean downward (the Fig-8 fetch-latency means are built
/// from exactly this type).
///
/// # Examples
///
/// ```
/// use swip_types::RunningMean;
///
/// let mut m = RunningMean::new();
/// m.push(10);
/// m.push(20);
/// assert_eq!(m.mean(), 15.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Default, Debug)]
pub struct RunningMean {
    sum: u128,
    count: u64,
    max: u64,
}

impl RunningMean {
    /// Creates an empty mean.
    pub const fn new() -> Self {
        RunningMean {
            sum: 0,
            count: 0,
            max: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: u64) {
        self.sum += sample as u128;
        self.count += 1;
        self.max = self.max.max(sample);
    }

    /// The arithmetic mean; 0.0 when empty.
    pub fn mean(self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples.
    pub const fn count(self) -> u64 {
        self.count
    }

    /// Sum of samples (exact: `u64::MAX` samples of `u64::MAX` still fit).
    pub const fn sum(self) -> u128 {
        self.sum
    }

    /// Maximum sample seen; 0 when empty.
    pub const fn max(self) -> u64 {
        self.max
    }
}

/// Geometric mean of a slice of positive values.
///
/// Values `<= 0` are skipped (a speedup of zero would otherwise collapse the
/// mean); returns 0.0 for an empty (or all-skipped) input.
///
/// # Examples
///
/// ```
/// use swip_types::geomean;
///
/// let g = geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for &v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.per(1000, 1000), 10.0);
        assert_eq!(c.per(0, 1000), 0.0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn ratio_rates() {
        let mut r = Ratio::new();
        assert_eq!(r.rate(), 0.0);
        for i in 0..10 {
            r.record(i % 2 == 0);
        }
        assert_eq!(r.hits(), 5);
        assert_eq!(r.misses(), 5);
        assert_eq!(r.total(), 10);
        assert_eq!(r.rate(), 0.5);
    }

    #[test]
    fn running_mean_does_not_saturate_on_huge_sums() {
        // Regression: `sum` used to be a saturating u64, so a long run of
        // large samples pinned the sum at u64::MAX and biased the mean
        // (Fig 8) downward. The u128 accumulator keeps it exact.
        let mut m = RunningMean::new();
        m.push(u64::MAX);
        m.push(u64::MAX);
        m.push(u64::MAX);
        assert_eq!(m.sum(), 3 * u64::MAX as u128);
        assert_eq!(m.count(), 3);
        let expected = u64::MAX as f64;
        assert!(
            (m.mean() - expected).abs() <= expected * 1e-12,
            "mean {} drifted from {}",
            m.mean(),
            expected
        );
        assert_eq!(m.max(), u64::MAX);
    }

    #[test]
    fn running_mean_tracks_max() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.push(2);
        m.push(4);
        m.push(12);
        assert_eq!(m.mean(), 6.0);
        assert_eq!(m.max(), 12);
        assert_eq!(m.sum(), 18);
    }

    #[test]
    fn geomean_ignores_nonpositive() {
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        let with_zero = geomean(&[2.0, 8.0, 0.0]);
        assert!((with_zero - 4.0).abs() < 1e-12);
    }
}
