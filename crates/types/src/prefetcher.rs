//! [`PrefetcherId`]: which instruction-prefetch mechanism a simulation runs.
//!
//! The paper compares two points — FDP's fetch-directed run-ahead and
//! AsmDB's software prefetch hints — but the front-end exposes a trait
//! boundary (`swip-frontend`'s `InstructionPrefetcher`) that admits more.
//! This enum is the wire-level name for each implementation; it lives in
//! `swip-types` so the bench matrix, the report schema, and the serve
//! resolver all agree on the labels without depending on the front-end.

use std::fmt;

/// An instruction-prefetcher selection, one label per
/// `InstructionPrefetcher` implementation the front-end ships.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum PrefetcherId {
    /// Fetch-directed prefetching: the decoupled FTQ itself is the
    /// prefetcher (the paper's baseline and "industry standard" points).
    #[default]
    Fdp,
    /// AsmDB-style software hints: prefetches planted by the offline
    /// rewriting pipeline fire when their anchor PC is fetched.
    Asmdb,
    /// MANA-style record-and-replay: a metadata table of observed
    /// line-to-line successions, replayed with a metadata access latency.
    Mana,
    /// Shadow-branch BTB pre-fill: branches discovered past a BTB miss are
    /// recorded and replayed into the BTB (plus a target-line prefetch)
    /// the next time their line is fetched.
    ShadowBtb,
}

/// A failed [`PrefetcherId::from_label`] parse, carrying the rejected
/// label. The `Display` form lists every valid label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrefetcherParseError {
    /// The label that did not match any prefetcher.
    pub label: String,
}

impl fmt::Display for PrefetcherParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown prefetcher {:?} (expected one of: {})",
            self.label,
            PrefetcherId::label_list()
        )
    }
}

impl std::error::Error for PrefetcherParseError {}

impl PrefetcherId {
    /// Every prefetcher, in canonical sweep order.
    pub const ALL: [PrefetcherId; 4] = [
        PrefetcherId::Fdp,
        PrefetcherId::Asmdb,
        PrefetcherId::Mana,
        PrefetcherId::ShadowBtb,
    ];

    /// The stable wire label (used in reports, TSVs, and CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherId::Fdp => "fdp",
            PrefetcherId::Asmdb => "asmdb",
            PrefetcherId::Mana => "mana",
            PrefetcherId::ShadowBtb => "shadow_btb",
        }
    }

    /// Parses a wire label back to an id. Hyphens are accepted in place
    /// of underscores (`shadow-btb` ≡ `shadow_btb`).
    ///
    /// # Errors
    ///
    /// [`PrefetcherParseError`] naming the rejected label; its `Display`
    /// lists the valid ones.
    pub fn from_label(label: &str) -> Result<Self, PrefetcherParseError> {
        let normalized = label.replace('-', "_");
        Self::ALL
            .into_iter()
            .find(|id| id.label() == normalized)
            .ok_or_else(|| PrefetcherParseError {
                label: label.to_string(),
            })
    }

    /// A comma-separated list of every valid label, for error messages.
    pub fn label_list() -> String {
        let labels: Vec<&str> = Self::ALL.iter().map(|id| id.label()).collect();
        labels.join(", ")
    }
}

impl fmt::Display for PrefetcherId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for id in PrefetcherId::ALL {
            assert_eq!(PrefetcherId::from_label(id.label()), Ok(id));
        }
    }

    #[test]
    fn hyphens_normalize() {
        assert_eq!(
            PrefetcherId::from_label("shadow-btb"),
            Ok(PrefetcherId::ShadowBtb)
        );
    }

    #[test]
    fn unknown_labels_list_the_valid_ones() {
        let err = PrefetcherId::from_label("markov").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("markov"), "{msg}");
        for id in PrefetcherId::ALL {
            assert!(msg.contains(id.label()), "{msg} missing {}", id.label());
        }
    }

    #[test]
    fn default_is_fdp() {
        assert_eq!(PrefetcherId::default(), PrefetcherId::Fdp);
    }
}
