//! The dynamic instruction model.

use std::fmt;

use crate::{Addr, Reg};

/// Default instruction size in bytes (the paper assumes 32-bit instructions:
/// "192, 32-bit instructions" for a 24-entry FTQ of 8-instruction blocks).
pub const DEFAULT_INSTR_SIZE: u8 = 4;

/// The flavor of a control-transfer instruction.
///
/// Mirrors the CVP-1 / ChampSim branch taxonomy, which the FDP front-end's
/// predictors treat differently:
/// conditional branches consult the direction predictor; returns consult the
/// RAS; indirect jumps and calls consult the indirect predictor; all taken
/// branches need a BTB target.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// Conditional direct branch (taken or not-taken per execution).
    CondDirect,
    /// Unconditional direct jump (always taken).
    UncondDirect,
    /// Unconditional indirect jump through a register.
    IndirectJump,
    /// Direct call; pushes a return address onto the RAS.
    DirectCall,
    /// Indirect call; pushes a return address and needs the indirect predictor.
    IndirectCall,
    /// Return; pops the RAS.
    Return,
}

impl BranchKind {
    /// True for calls (direct or indirect), which push the RAS.
    pub const fn is_call(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall)
    }

    /// True for branches whose target comes from a register, not the
    /// instruction encoding (indirect jumps/calls and returns).
    pub const fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return
        )
    }

    /// True for branches that are always taken.
    pub const fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::CondDirect)
    }
}

/// The operation class of an instruction, with class-specific payload.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstrKind {
    /// Integer/FP computation; no memory or control-flow side effects.
    Alu,
    /// Memory load from `addr`.
    Load {
        /// Effective byte address of the access.
        addr: Addr,
    },
    /// Memory store to `addr`.
    Store {
        /// Effective byte address of the access.
        addr: Addr,
    },
    /// Control transfer. `taken` records the *trace outcome*; predictors must
    /// not peek at it when predicting.
    Branch {
        /// Which predictor structures this branch exercises.
        kind: BranchKind,
        /// Architectural target of the branch when taken.
        target: Addr,
        /// Whether this dynamic instance was taken.
        taken: bool,
    },
    /// Software instruction prefetch of the line containing `target`
    /// (the `prefetch.i` ISA support AsmDB assumes). Occupies a front-end
    /// slot like any other instruction; a pre-decoder fires the prefetch once
    /// the instruction itself has been fetched.
    PrefetchI {
        /// Code address whose line should be prefetched into the L1-I.
        target: Addr,
    },
}

/// One dynamic instruction as it appears in a trace.
///
/// This is a passive, public-field record ([C-STRUCT-PRIVATE]'s "C spirit"
/// exception): the simulator pipeline reads every field and there are no
/// invariants beyond construction.
///
/// # Examples
///
/// ```
/// use swip_types::{Addr, Instruction, Reg};
///
/// let ld = Instruction::load(Addr::new(0x400), Addr::new(0x9000))
///     .with_dst(Reg::new(1))
///     .with_srcs(&[Reg::new(2)]);
/// assert!(ld.is_memory());
/// assert_eq!(ld.next_pc(), Addr::new(0x404));
/// ```
///
/// [C-STRUCT-PRIVATE]: https://rust-lang.github.io/api-guidelines/future-proofing.html
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instruction {
    /// Program counter of this instruction.
    pub pc: Addr,
    /// Encoded size in bytes (normally [`DEFAULT_INSTR_SIZE`]).
    pub size: u8,
    /// Operation class and payload.
    pub kind: InstrKind,
    /// Source registers (up to 3, CVP-1 style). `None` slots are unused.
    pub srcs: [Option<Reg>; 3],
    /// Destination register, if any.
    pub dst: Option<Reg>,
}

impl Instruction {
    fn with_kind(pc: Addr, kind: InstrKind) -> Self {
        Instruction {
            pc,
            size: DEFAULT_INSTR_SIZE,
            kind,
            srcs: [None; 3],
            dst: None,
        }
    }

    /// Creates an ALU instruction at `pc`.
    pub fn alu(pc: Addr) -> Self {
        Self::with_kind(pc, InstrKind::Alu)
    }

    /// Creates a load from `addr` at `pc`.
    pub fn load(pc: Addr, addr: Addr) -> Self {
        Self::with_kind(pc, InstrKind::Load { addr })
    }

    /// Creates a store to `addr` at `pc`.
    pub fn store(pc: Addr, addr: Addr) -> Self {
        Self::with_kind(pc, InstrKind::Store { addr })
    }

    /// Creates a conditional direct branch.
    pub fn cond_branch(pc: Addr, target: Addr, taken: bool) -> Self {
        Self::branch(pc, BranchKind::CondDirect, target, taken)
    }

    /// Creates an unconditional direct jump (always taken).
    pub fn jump(pc: Addr, target: Addr) -> Self {
        Self::branch(pc, BranchKind::UncondDirect, target, true)
    }

    /// Creates a direct call (always taken).
    pub fn call(pc: Addr, target: Addr) -> Self {
        Self::branch(pc, BranchKind::DirectCall, target, true)
    }

    /// Creates an indirect call (always taken).
    pub fn indirect_call(pc: Addr, target: Addr) -> Self {
        Self::branch(pc, BranchKind::IndirectCall, target, true)
    }

    /// Creates an indirect jump (always taken).
    pub fn indirect_jump(pc: Addr, target: Addr) -> Self {
        Self::branch(pc, BranchKind::IndirectJump, target, true)
    }

    /// Creates a return to `target` (always taken).
    pub fn ret(pc: Addr, target: Addr) -> Self {
        Self::branch(pc, BranchKind::Return, target, true)
    }

    /// Creates a branch of arbitrary kind.
    ///
    /// # Panics
    ///
    /// Panics if an unconditional kind is created with `taken == false`.
    pub fn branch(pc: Addr, kind: BranchKind, target: Addr, taken: bool) -> Self {
        assert!(
            taken || !kind.is_unconditional(),
            "unconditional branch at {pc} cannot be not-taken"
        );
        Self::with_kind(
            pc,
            InstrKind::Branch {
                kind,
                target,
                taken,
            },
        )
    }

    /// Creates a software instruction prefetch of `target`'s line.
    pub fn prefetch_i(pc: Addr, target: Addr) -> Self {
        Self::with_kind(pc, InstrKind::PrefetchI { target })
    }

    /// Sets the source registers (builder style). Extra entries beyond 3 are
    /// ignored.
    #[must_use]
    pub fn with_srcs(mut self, srcs: &[Reg]) -> Self {
        for (slot, reg) in self.srcs.iter_mut().zip(srcs.iter()) {
            *slot = Some(*reg);
        }
        self
    }

    /// Sets the destination register (builder style).
    #[must_use]
    pub fn with_dst(mut self, dst: Reg) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Sets a non-default encoded size (builder style).
    #[must_use]
    pub fn with_size(mut self, size: u8) -> Self {
        self.size = size;
        self
    }

    /// True if this is any control-transfer instruction.
    pub const fn is_branch(&self) -> bool {
        matches!(self.kind, InstrKind::Branch { .. })
    }

    /// True if this is a load or store.
    pub const fn is_memory(&self) -> bool {
        matches!(self.kind, InstrKind::Load { .. } | InstrKind::Store { .. })
    }

    /// True if this is a software instruction prefetch.
    pub const fn is_prefetch_i(&self) -> bool {
        matches!(self.kind, InstrKind::PrefetchI { .. })
    }

    /// The branch kind, if this is a branch.
    pub fn branch_kind(&self) -> Option<BranchKind> {
        match self.kind {
            InstrKind::Branch { kind, .. } => Some(kind),
            _ => None,
        }
    }

    /// The trace-recorded taken outcome; `false` for non-branches.
    pub fn is_taken(&self) -> bool {
        matches!(self.kind, InstrKind::Branch { taken: true, .. })
    }

    /// The branch target, if this is a branch.
    pub fn branch_target(&self) -> Option<Addr> {
        match self.kind {
            InstrKind::Branch { target, .. } => Some(target),
            _ => None,
        }
    }

    /// The address of the instruction that architecturally follows this one
    /// in the dynamic stream: the branch target when taken, else the
    /// fall-through.
    pub fn next_pc(&self) -> Addr {
        match self.kind {
            InstrKind::Branch {
                target,
                taken: true,
                ..
            } => target,
            _ => self.fallthrough(),
        }
    }

    /// The fall-through address (`pc + size`), regardless of branch outcome.
    pub fn fallthrough(&self) -> Addr {
        self.pc.add(self.size as u64)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            InstrKind::Alu => write!(f, "{}: alu", self.pc),
            InstrKind::Load { addr } => write!(f, "{}: load [{addr}]", self.pc),
            InstrKind::Store { addr } => write!(f, "{}: store [{addr}]", self.pc),
            InstrKind::Branch {
                kind,
                target,
                taken,
            } => {
                write!(
                    f,
                    "{}: {kind:?} -> {target} ({})",
                    self.pc,
                    if taken { "T" } else { "NT" }
                )
            }
            InstrKind::PrefetchI { target } => {
                write!(f, "{}: prefetch.i {target}", self.pc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pc_taken_vs_not_taken() {
        let pc = Addr::new(0x100);
        let tgt = Addr::new(0x200);
        assert_eq!(Instruction::cond_branch(pc, tgt, true).next_pc(), tgt);
        assert_eq!(
            Instruction::cond_branch(pc, tgt, false).next_pc(),
            Addr::new(0x104)
        );
        assert_eq!(Instruction::alu(pc).next_pc(), Addr::new(0x104));
    }

    #[test]
    fn classification_helpers() {
        let pc = Addr::new(0);
        assert!(Instruction::ret(pc, Addr::new(8)).is_branch());
        assert!(Instruction::load(pc, Addr::new(8)).is_memory());
        assert!(Instruction::prefetch_i(pc, Addr::new(8)).is_prefetch_i());
        assert!(!Instruction::alu(pc).is_branch());
        assert_eq!(
            Instruction::call(pc, Addr::new(8)).branch_kind(),
            Some(BranchKind::DirectCall)
        );
    }

    #[test]
    fn branch_kind_predicates() {
        assert!(BranchKind::DirectCall.is_call());
        assert!(BranchKind::IndirectCall.is_call() && BranchKind::IndirectCall.is_indirect());
        assert!(BranchKind::Return.is_indirect());
        assert!(!BranchKind::CondDirect.is_unconditional());
        assert!(BranchKind::UncondDirect.is_unconditional());
    }

    #[test]
    #[should_panic(expected = "cannot be not-taken")]
    fn not_taken_jump_panics() {
        let _ = Instruction::branch(Addr::new(0), BranchKind::UncondDirect, Addr::new(64), false);
    }

    #[test]
    fn builder_sets_registers() {
        let i = Instruction::alu(Addr::new(0))
            .with_dst(Reg::new(5))
            .with_srcs(&[Reg::new(1), Reg::new(2)]);
        assert_eq!(i.dst, Some(Reg::new(5)));
        assert_eq!(i.srcs[0], Some(Reg::new(1)));
        assert_eq!(i.srcs[1], Some(Reg::new(2)));
        assert_eq!(i.srcs[2], None);
    }

    #[test]
    fn custom_size_changes_fallthrough() {
        let i = Instruction::alu(Addr::new(0x10)).with_size(8);
        assert_eq!(i.fallthrough(), Addr::new(0x18));
    }
}
