//! Architectural register identifiers.

use std::fmt;

/// An architectural register identifier.
///
/// The simulated ISA exposes [`Reg::COUNT`] integer registers (matching the
/// CVP-1 trace format's flat register space). Register `0` is *not* special;
/// dependence tracking treats all registers alike.
///
/// # Examples
///
/// ```
/// use swip_types::Reg;
///
/// let r = Reg::new(3);
/// assert_eq!(r.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers in the simulated ISA.
    pub const COUNT: usize = 64;

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < Self::COUNT,
            "register index {index} out of range (< {})",
            Self::COUNT
        );
        Reg(index)
    }

    /// Returns the register index as a `usize` suitable for table lookup.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for i in 0..Reg::COUNT as u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(Reg::COUNT as u8);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Reg::new(7)), "r7");
    }
}
