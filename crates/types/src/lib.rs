//! Common vocabulary types for the `swip-fe` front-end characterization suite.
//!
//! This crate defines the datatypes shared by every other crate in the
//! workspace: virtual [`Addr`]esses and cache-[`LineAddr`]esses, the dynamic
//! [`Instruction`] model consumed by the simulator, architectural registers,
//! and small counting utilities used by statistics reporting.
//!
//! The types here are deliberately plain — they are the "ISA" of the
//! simulator. All behavior (prediction, caching, fetch) lives in the
//! downstream crates.
//!
//! # Examples
//!
//! ```
//! use swip_types::{Addr, Instruction};
//!
//! let i = Instruction::cond_branch(Addr::new(0x1000), Addr::new(0x2000), true);
//! assert!(i.is_branch());
//! assert_eq!(i.pc.line().base(), Addr::new(0x1000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod fingerprint;
mod instr;
mod prefetcher;
mod reg;
mod stats;

pub use addr::{Addr, LineAddr, CACHE_LINE_SIZE};
pub use fingerprint::Fnv1a;
pub use instr::{BranchKind, InstrKind, Instruction};
pub use prefetcher::{PrefetcherId, PrefetcherParseError};
pub use reg::Reg;
pub use stats::{geomean, Counter, Ratio, RunningMean};

/// A simulator cycle count.
///
/// Cycles are monotonically increasing and start at zero when a simulation
/// begins. A plain integer alias keeps arithmetic ergonomic across crates.
pub type Cycle = u64;

/// A dynamic-instruction sequence number.
///
/// Assigned in trace order; used to enforce in-order decode/retire.
pub type SeqNum = u64;
