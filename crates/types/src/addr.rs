//! Virtual addresses and cache-line addresses.

use std::fmt;

/// Size of a cache line in bytes. Fixed at 64 B, matching ChampSim and the
/// paper's configuration ("one entry [can] represent eight [32-bit]
/// instructions" — two entries per 64 B line).
pub const CACHE_LINE_SIZE: u64 = 64;

const LINE_SHIFT: u32 = CACHE_LINE_SIZE.trailing_zeros();

/// A virtual byte address.
///
/// `Addr` is a transparent newtype over `u64` ([C-NEWTYPE]) that statically
/// distinguishes byte addresses from [`LineAddr`]s (line numbers) and from
/// plain counters.
///
/// # Examples
///
/// ```
/// use swip_types::{Addr, CACHE_LINE_SIZE};
///
/// let a = Addr::new(0x1044);
/// assert_eq!(a.line().base(), Addr::new(0x1040));
/// assert_eq!(a.line_offset(), 0x4);
/// assert_eq!(a.offset(-4), Addr::new(0x1040));
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The zero address. Useful as a sentinel start-of-simulation value.
    pub const ZERO: Addr = Addr(0);

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line this address falls in.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Returns the byte offset of this address within its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 & (CACHE_LINE_SIZE - 1)
    }

    /// Returns this address displaced by a signed byte delta.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the displacement under- or overflows.
    pub fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add_signed(delta))
    }

    /// Returns the address `bytes` past this one.
    pub const fn add(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Byte distance from `earlier` to `self`, or `None` if `earlier > self`.
    pub fn distance_from(self, earlier: Addr) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }

    /// True if `self` and `other` share a cache line.
    pub const fn same_line(self, other: Addr) -> bool {
        (self.0 >> LINE_SHIFT) == (other.0 >> LINE_SHIFT)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// A cache-line address: a byte address shifted right by `log2(line size)`.
///
/// Distinguishing line numbers from byte addresses at the type level prevents
/// the classic simulator bug of indexing a cache with an unshifted address.
///
/// # Examples
///
/// ```
/// use swip_types::{Addr, LineAddr};
///
/// let l = Addr::new(0x1040).line();
/// assert_eq!(l, Addr::new(0x107f).line());
/// assert_eq!(l.base(), Addr::new(0x1040));
/// assert_eq!(l.next(), Addr::new(0x1080).line());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line *number* (already shifted).
    pub const fn from_line_number(n: u64) -> Self {
        LineAddr(n)
    }

    /// Returns the raw line number.
    pub const fn number(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this line.
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Returns the immediately following line.
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }

    /// Returns the line `n` lines after this one.
    pub const fn step(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0 << LINE_SHIFT)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0 << LINE_SHIFT)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_boundaries() {
        assert_eq!(Addr::new(0).line(), Addr::new(63).line());
        assert_ne!(Addr::new(63).line(), Addr::new(64).line());
        assert_eq!(Addr::new(64).line().base(), Addr::new(64));
    }

    #[test]
    fn line_offset_within_range() {
        for raw in [0u64, 1, 63, 64, 65, 0xfff, 0x1000] {
            assert!(Addr::new(raw).line_offset() < CACHE_LINE_SIZE);
        }
    }

    #[test]
    fn offset_round_trips() {
        let a = Addr::new(0x4000);
        assert_eq!(a.offset(16).offset(-16), a);
        assert_eq!(a.add(4), Addr::new(0x4004));
    }

    #[test]
    fn distance_from_ordering() {
        let lo = Addr::new(0x100);
        let hi = Addr::new(0x180);
        assert_eq!(hi.distance_from(lo), Some(0x80));
        assert_eq!(lo.distance_from(hi), None);
        assert_eq!(lo.distance_from(lo), Some(0));
    }

    #[test]
    fn same_line_is_symmetric() {
        let a = Addr::new(0x1000);
        let b = Addr::new(0x103f);
        assert!(a.same_line(b) && b.same_line(a));
        assert!(!a.same_line(Addr::new(0x1040)));
    }

    #[test]
    fn next_line_is_adjacent() {
        let l = Addr::new(0x80).line();
        assert_eq!(l.next().base(), Addr::new(0xc0));
        assert_eq!(l.step(2).base(), Addr::new(0x100));
    }

    #[test]
    fn debug_is_nonempty_and_hex() {
        assert_eq!(format!("{:?}", Addr::new(0x40)), "Addr(0x40)");
        assert_eq!(format!("{}", Addr::new(0x40).line()), "0x40");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }
}
