//! Whole-simulator configuration (the paper's Table I).

use swip_cache::{ConfigError, HierarchyConfig};
use swip_frontend::{FrontendConfig, TimelineConfig};
use swip_types::PrefetcherId;

use crate::BackendConfig;

/// Full simulator configuration: front-end, memory hierarchy, backend, and
/// run limits.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Decoupled front-end parameters (FTQ depth selects conservative vs.
    /// industry-standard FDP).
    pub frontend: FrontendConfig,
    /// Memory hierarchy parameters.
    pub memory: HierarchyConfig,
    /// Backend parameters.
    pub backend: BackendConfig,
    /// Hard cycle limit as a multiple of the trace's instruction count
    /// (watchdog against pathological configurations); the run is marked
    /// incomplete if exceeded.
    pub max_cycles_per_instr: u64,
    /// Record per-line L1-I miss counts in the report (AsmDB profiling).
    pub collect_line_profile: bool,
    /// Record a cycle-sampled scenario timeline in the report (telemetry;
    /// `None` disables sampling and costs nothing).
    pub timeline: Option<TimelineConfig>,
    /// Which instruction-prefetch mechanism the front-end runs
    /// (DESIGN.md §16). [`PrefetcherId::Fdp`] and [`PrefetcherId::Asmdb`]
    /// select no hardware mechanism — FDP run-ahead is intrinsic to the
    /// FTQ, and AsmDB's prefetches arrive via the rewritten trace or hint
    /// table the caller installs. [`PrefetcherId::Mana`] and
    /// [`PrefetcherId::ShadowBtb`] install the corresponding hardware
    /// prefetcher on the front-end.
    pub prefetcher: PrefetcherId,
}

impl SimConfig {
    /// The paper's Table I configuration: a Sunny-Cove-like core with an
    /// industry-standard 24-entry-FTQ FDP front-end.
    pub fn sunny_cove_like() -> Self {
        SimConfig {
            frontend: FrontendConfig::industry_standard(),
            memory: HierarchyConfig::sunny_cove_like(),
            backend: BackendConfig::default(),
            max_cycles_per_instr: 200,
            collect_line_profile: false,
            timeline: None,
            prefetcher: PrefetcherId::Fdp,
        }
    }

    /// Table I with the conservative 2-entry FTQ ("similar to that used in
    /// AsmDB's original evaluation").
    pub fn conservative() -> Self {
        SimConfig {
            frontend: FrontendConfig::conservative(),
            ..Self::sunny_cove_like()
        }
    }

    /// A down-scaled configuration for unit/integration tests: tiny caches
    /// and backend so interesting behavior appears within a few thousand
    /// instructions.
    pub fn test_scale() -> Self {
        SimConfig {
            frontend: FrontendConfig::industry_standard(),
            memory: HierarchyConfig::tiny(),
            backend: BackendConfig::tiny(),
            max_cycles_per_instr: 500,
            collect_line_profile: false,
            timeline: None,
            prefetcher: PrefetcherId::Fdp,
        }
    }

    /// Validates the configuration's structure geometries and sampling
    /// knobs.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] from
    /// [`HierarchyConfig::validate`], naming the offending structure, so
    /// callers (e.g. `swip bench`) can print a message instead of
    /// panicking mid-run. A configured scenario timeline with a zero
    /// cycle stride is rejected as [`ConfigError::ZeroStride`] here — the
    /// ring buffer would otherwise silently normalize it to 1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.memory.validate()?;
        if let Some(t) = &self.timeline {
            if t.stride == 0 {
                return Err(ConfigError::ZeroStride {
                    name: "timeline".into(),
                });
            }
        }
        Ok(())
    }

    /// This configuration with a different FTQ depth (parameter sweeps).
    #[must_use]
    pub fn with_ftq_entries(mut self, n: usize) -> Self {
        self.frontend.ftq_entries = n;
        self
    }

    /// Renders the configuration as the paper's Table I rows.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        let f = &self.frontend;
        let m = &self.memory;
        let b = &self.backend;
        vec![
            (
                "FTQ".into(),
                format!("{} entries × {} instrs", f.ftq_entries, f.max_block_instrs),
            ),
            (
                "Fill/fetch BW".into(),
                format!(
                    "{} blocks, {} lines per cycle",
                    f.fill_blocks_per_cycle, f.fetch_lines_per_cycle
                ),
            ),
            ("Decode width".into(), format!("{}", f.decode_width)),
            ("Post-fetch correction".into(), format!("{}", f.enable_pfc)),
            (
                "Branch predictor".into(),
                format!(
                    "{:?}, 2^{} entries",
                    f.branch.direction, f.branch.direction_log2_entries
                ),
            ),
            (
                "BTB".into(),
                format!("{} sets × {} ways", f.branch.btb_sets, f.branch.btb_assoc),
            ),
            ("RAS".into(), format!("{} entries", f.branch.ras_entries)),
            ("ROB".into(), format!("{} entries", b.rob_size)),
            (
                "Issue/retire width".into(),
                format!("{}/{}", b.issue_width, b.retire_width),
            ),
            (
                "L1I".into(),
                format!(
                    "{} KiB, {}-way, {}-cycle, {} MSHRs",
                    m.l1i.capacity_bytes() / 1024,
                    m.l1i.ways,
                    m.l1i.latency,
                    m.l1i.mshrs
                ),
            ),
            (
                "L1D".into(),
                format!(
                    "{} KiB, {}-way, {}-cycle",
                    m.l1d.capacity_bytes() / 1024,
                    m.l1d.ways,
                    m.l1d.latency
                ),
            ),
            (
                "L2".into(),
                format!(
                    "{} KiB, {}-way, +{} cycles",
                    m.l2.capacity_bytes() / 1024,
                    m.l2.ways,
                    m.l2.latency
                ),
            ),
            (
                "LLC".into(),
                format!(
                    "{} KiB, {}-way, +{} cycles",
                    m.llc.capacity_bytes() / 1024,
                    m.llc.ways,
                    m.llc.latency
                ),
            ),
            ("DRAM".into(), format!("+{} cycles", m.dram_latency)),
        ]
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::sunny_cove_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(SimConfig::sunny_cove_like().frontend.ftq_entries, 24);
        assert_eq!(SimConfig::conservative().frontend.ftq_entries, 2);
        assert_eq!(SimConfig::default().frontend.ftq_entries, 24);
    }

    #[test]
    fn table_has_all_structures() {
        let rows = SimConfig::sunny_cove_like().table_rows();
        let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
        for required in ["FTQ", "BTB", "RAS", "ROB", "L1I", "LLC", "DRAM"] {
            assert!(keys.contains(&required), "missing Table I row {required}");
        }
    }

    #[test]
    fn validate_surfaces_hierarchy_errors() {
        let mut cfg = SimConfig::sunny_cove_like();
        assert_eq!(cfg.validate(), Ok(()));
        cfg.memory.l1i.sets = 48;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("L1I"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_timeline_stride() {
        let mut cfg = SimConfig::sunny_cove_like();
        cfg.timeline = Some(TimelineConfig {
            stride: 0,
            capacity: 16,
        });
        let err = cfg.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::ZeroStride {
                name: "timeline".into()
            }
        );
        assert!(err.to_string().contains("stride"), "{err}");
        cfg.timeline = Some(TimelineConfig {
            stride: 64,
            capacity: 16,
        });
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn ftq_sweep() {
        assert_eq!(
            SimConfig::sunny_cove_like()
                .with_ftq_entries(12)
                .frontend
                .ftq_entries,
            12
        );
    }
}
