//! The top-level simulation loop.

use std::collections::HashMap;
use std::sync::Arc;

use swip_cache::MemoryHierarchy;
use swip_frontend::{Frontend, HintTable, PreloadConfig};
use swip_trace::Trace;
use swip_types::{Addr, InstrKind};

use crate::{Backend, SimConfig, SimReport};

/// No-overhead software-prefetch hints: trigger PC → target code addresses.
///
/// Used for the paper's "AsmDB — No Insertion Overhead" configurations,
/// where prefetches fire from a trigger PC without occupying any front-end
/// slot.
pub type PrefetchHints = HashMap<Addr, Vec<Addr>>;

/// Metadata for the §VI preloading extension: trigger cache-line number →
/// target code addresses.
pub type PreloadMetadata = HashMap<u64, Vec<Addr>>;

/// Runs traces through the full front-end + backend pipeline.
///
/// A `Simulator` is a reusable configuration; each [`Simulator::run`] builds
/// fresh microarchitectural state, so runs are independent and repeatable.
///
/// # Examples
///
/// See the crate-level quick start.
#[derive(Clone, Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator from `config`.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates `trace` to completion (or to the cycle watchdog).
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.run_inner(trace, None, None)
    }

    /// Simulates `trace` with no-overhead software-prefetch hints installed.
    ///
    /// Convenience wrapper that builds a private [`HintTable`] from the
    /// map; sweeps that re-run the same hints should build the table once
    /// and use [`Simulator::run_with_hint_table`] instead.
    pub fn run_with_hints(&self, trace: &Trace, hints: &PrefetchHints) -> SimReport {
        if hints.is_empty() {
            return self.run_inner(trace, None, None);
        }
        let table = Arc::new(HintTable::from_pc_map(hints));
        self.run_inner(trace, Some(table), None)
    }

    /// Simulates `trace` with a shared no-overhead hint table (built once
    /// per workload via [`HintTable::from_pc_map`]). The table is shared by
    /// `Arc` — nothing is copied per run.
    pub fn run_with_hint_table(&self, trace: &Trace, hints: Arc<HintTable>) -> SimReport {
        self.run_inner(trace, Some(hints), None)
    }

    /// Simulates `trace` with the §VI metadata-preloading extension: the
    /// prefetch metadata lives in an LLC-side table consulted on L1-I
    /// accesses, instead of in the instruction stream.
    ///
    /// Convenience wrapper that builds a private [`HintTable`] from the
    /// map; sweeps that re-run the same metadata should build the table
    /// once and use [`Simulator::run_with_preload_table`] instead.
    pub fn run_with_preload(
        &self,
        trace: &Trace,
        metadata: &PreloadMetadata,
        preload: PreloadConfig,
    ) -> SimReport {
        let table = Arc::new(HintTable::from_line_map(metadata));
        self.run_inner(trace, None, Some((table, preload)))
    }

    /// Simulates `trace` with a shared preload-metadata table (built once
    /// per workload via [`HintTable::from_line_map`]). The table is shared
    /// by `Arc` — nothing is copied per run.
    pub fn run_with_preload_table(
        &self,
        trace: &Trace,
        metadata: Arc<HintTable>,
        preload: PreloadConfig,
    ) -> SimReport {
        self.run_inner(trace, None, Some((metadata, preload)))
    }

    fn run_inner(
        &self,
        trace: &Trace,
        hints: Option<Arc<HintTable>>,
        preload: Option<(Arc<HintTable>, PreloadConfig)>,
    ) -> SimReport {
        let mut frontend = Frontend::new(self.config.frontend.clone());
        // The hardware mechanisms of the prefetcher zoo (DESIGN.md §16).
        // Fdp needs no mechanism (run-ahead is intrinsic to the FTQ) and
        // Asmdb's prefetches arrive via the rewritten trace or the hint
        // table installed below.
        match self.config.prefetcher {
            swip_types::PrefetcherId::Fdp | swip_types::PrefetcherId::Asmdb => {}
            swip_types::PrefetcherId::Mana => {
                frontend.set_prefetcher(Box::new(swip_frontend::ManaPrefetcher::new()));
            }
            swip_types::PrefetcherId::ShadowBtb => {
                frontend.set_prefetcher(Box::new(swip_frontend::ShadowBtbPrefetcher::new()));
            }
        }
        if let Some(table) = hints {
            frontend.set_hint_table(table);
        }
        if let Some((table, cfg)) = preload {
            frontend.set_preload_table(table, cfg);
        }
        if let Some(timeline) = self.config.timeline {
            frontend.enable_timeline(timeline);
        }
        let mut mem = MemoryHierarchy::new(self.config.memory.clone());
        if self.config.collect_line_profile {
            mem.enable_line_profile();
        }
        let mut backend = Backend::new(self.config.backend);

        let watchdog = (trace.len() as u64)
            .saturating_mul(self.config.max_cycles_per_instr)
            .max(100_000);
        let mut now = 0u64;
        let mut decoded = Vec::with_capacity(self.config.frontend.decode_width);
        // Reused across cycles: the backend clears and refills it, so the
        // steady-state loop performs no per-cycle allocation.
        let mut resolved = Vec::new();
        let mut completed = true;

        while !(frontend.is_done(trace) && backend.is_empty()) {
            decoded.clear();
            frontend.cycle(now, trace, &mut mem, backend.free_slots(), &mut decoded);
            for d in &decoded {
                backend.dispatch(*d, trace.instructions()[d.seq as usize], now);
            }
            backend.cycle(now, &mut mem, &mut resolved);
            for r in &resolved {
                let instr = &trace.instructions()[r.seq as usize];
                frontend.handle_resolution(r.seq, instr, r.at);
            }
            now += 1;
            if now >= watchdog {
                completed = false;
                break;
            }
        }

        // I003 (feature `invariants`): every instruction-side MSHR must
        // drain once the run completes — an entry still pending past any
        // plausible memory latency is a leak. Skipped on watchdog abort,
        // where in-flight fetches are legitimately cut short.
        #[cfg(feature = "invariants")]
        if completed {
            let horizon = now + 1_000_000;
            let leaked = mem.i_mshrs_in_flight(horizon);
            assert_eq!(
                leaked, 0,
                "I003: {leaked} instruction MSHR entr(ies) never drained"
            );
        }

        let instructions = backend.retired();
        let prefetch_instructions = trace
            .iter()
            .take(instructions as usize)
            .filter(|i| matches!(i.kind, InstrKind::PrefetchI { .. }))
            .count() as u64;
        let useful = instructions - prefetch_instructions;
        let cycles = now.max(1);
        let l1i = *mem.l1i_stats();
        let (timeline, timeline_dropped) = match frontend.take_timeline() {
            Some(t) => {
                let dropped = t.dropped();
                (t.into_samples(), dropped)
            }
            None => (Vec::new(), 0),
        };
        SimReport {
            workload: trace.name().to_string(),
            instructions,
            prefetch_instructions,
            cycles,
            ipc: instructions as f64 / cycles as f64,
            effective_ipc: useful as f64 / cycles as f64,
            l1i_mpki: l1i.demand_mpki(useful),
            branch: *frontend.branch_unit().stats(),
            // Moved out, not cloned: the frontend is dropped right after
            // report assembly.
            frontend: frontend.take_stats(),
            l1i,
            l2: *mem.l2_stats(),
            llc: *mem.llc_stats(),
            hierarchy: *mem.stats(),
            backend: *backend.stats(),
            line_misses: mem.line_profile(),
            timeline,
            timeline_dropped,
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_trace::TraceBuilder;
    use swip_types::Reg;

    fn sim() -> Simulator {
        Simulator::new(SimConfig::test_scale())
    }

    fn straight_line(n: usize) -> Trace {
        let mut b = TraceBuilder::new("straight");
        for _ in 0..n {
            b.alu();
        }
        b.finish()
    }

    #[test]
    fn runs_to_completion_and_counts() {
        let trace = straight_line(500);
        let r = sim().run(&trace);
        assert!(r.completed);
        assert_eq!(r.instructions, 500);
        assert_eq!(r.prefetch_instructions, 0);
        assert!(r.ipc > 0.0 && r.ipc <= 6.0);
        assert_eq!(r.ipc, r.effective_ipc);
    }

    #[test]
    fn loop_trace_gets_high_ipc_after_warmup() {
        // One hot line, long run: predictors and caches warm up and the
        // front-end should stream.
        let mut b = TraceBuilder::new("hot-loop");
        for _ in 0..5000 {
            b.set_pc(Addr::new(0x100));
            for _ in 0..6 {
                b.alu();
            }
            b.cond_branch(Addr::new(0x100), true);
        }
        let trace = b.finish();
        let r = sim().run(&trace);
        assert!(r.completed);
        assert!(r.ipc > 1.0, "hot loop IPC too low: {:.3}", r.ipc);
        assert!(r.l1i_mpki < 1.0);
    }

    #[test]
    fn large_footprint_has_high_mpki() {
        // Walk 4 MiB of code: far beyond the tiny L1-I (4 KiB) and LLC.
        let mut b = TraceBuilder::new("bigfoot");
        for rep in 0..2u64 {
            b.set_pc(Addr::new(0x1_0000));
            for _ in 0..(64 * 1024) {
                b.alu();
            }
            let _ = rep;
        }
        let trace = b.finish();
        let r = sim().run(&trace);
        assert!(r.completed);
        assert!(
            r.l1i_mpki > 5.0,
            "expected I-bound workload, MPKI {:.2}",
            r.l1i_mpki
        );
    }

    #[test]
    fn deeper_ftq_helps_ibound_code() {
        // Branchy code over a large footprint: FDP run-ahead should overlap
        // misses, so FTQ=24 beats FTQ=2.
        let mut b = TraceBuilder::new("ibound");
        let funcs = 256u64;
        // Irregular (non-power-of-two) function spacing, like real layouts.
        let base_of = |f: u64| Addr::new(0x10_000 + f * 0x1a8);
        for rep in 0..4096u64 {
            let f = (rep * 37) % funcs;
            b.set_pc(base_of(f));
            for _ in 0..15 {
                b.alu();
            }
            b.jump(base_of((rep + 1) * 37 % funcs));
        }
        let trace = b.finish();
        let deep = Simulator::new(SimConfig::test_scale()).run(&trace);
        let shallow = Simulator::new(SimConfig::test_scale().with_ftq_entries(2)).run(&trace);
        assert!(deep.completed && shallow.completed);
        assert!(
            deep.effective_ipc > shallow.effective_ipc,
            "deep {:.3} vs shallow {:.3}",
            deep.effective_ipc,
            shallow.effective_ipc
        );
    }

    #[test]
    fn prefetch_instructions_excluded_from_effective_ipc() {
        let mut b = TraceBuilder::new("pf");
        for i in 0..100u64 {
            if i % 10 == 0 {
                b.prefetch_i(Addr::new(0x80_000 + i * 64));
            } else {
                b.alu();
            }
        }
        let trace = b.finish();
        let r = sim().run(&trace);
        assert!(r.completed);
        assert_eq!(r.prefetch_instructions, 10);
        assert_eq!(r.useful_instructions(), 90);
        assert!(r.effective_ipc < r.ipc);
    }

    #[test]
    fn hints_prefetch_without_instruction_overhead() {
        // Hint on an early PC targeting a far line used later.
        let far = Addr::new(0x200_000);
        let mut b = TraceBuilder::new("hinted");
        for _ in 0..200 {
            b.alu();
        }
        b.jump(far);
        b.set_pc(far);
        for _ in 0..8 {
            b.alu();
        }
        let trace = b.finish();
        let mut hints = PrefetchHints::new();
        hints.insert(Addr::new(0x10), vec![far]);
        let with_hints = sim().run_with_hints(&trace, &hints);
        assert!(with_hints.completed);
        assert_eq!(with_hints.prefetch_instructions, 0);
        assert!(with_hints.frontend.swpf_hinted.get() >= 1);
    }

    #[test]
    fn data_dependent_code_is_backend_bound() {
        let mut b = TraceBuilder::new("chain");
        let r1 = Reg::new(1);
        for i in 0..200u64 {
            b.push(
                swip_types::Instruction::load(b.pc(), Addr::new(0x100_000 + i * 4096))
                    .with_srcs(&[r1])
                    .with_dst(r1),
            );
        }
        let trace = b.finish();
        let r = sim().run(&trace);
        assert!(r.completed);
        assert!(
            r.ipc < 0.5,
            "dependent-load chain should crawl, got {:.3}",
            r.ipc
        );
    }

    #[test]
    fn watchdog_marks_incomplete_runs() {
        let mut cfg = SimConfig::test_scale();
        cfg.max_cycles_per_instr = 0; // watchdog fires at the 100k floor
        let mut b = TraceBuilder::new("wd");
        for i in 0..60_000u64 {
            // Serialized DRAM-missing loads: guaranteed to need > 100k cycles.
            b.push(
                swip_types::Instruction::load(b.pc(), Addr::new(0x100_000 + i * 4096))
                    .with_srcs(&[Reg::new(1)])
                    .with_dst(Reg::new(1)),
            );
        }
        let r = Simulator::new(cfg).run(&b.finish());
        assert!(!r.completed);
        assert!(r.instructions < 60_000);
    }

    #[test]
    fn timeline_config_populates_report_samples() {
        let trace = straight_line(2000);
        let mut cfg = SimConfig::test_scale();
        cfg.timeline = Some(swip_frontend::TimelineConfig {
            stride: 8,
            capacity: 128,
        });
        let r = Simulator::new(cfg).run(&trace);
        assert!(r.completed);
        assert!(!r.timeline.is_empty());
        assert!(r.timeline.len() <= 128);
        assert!(r.timeline.iter().all(|s| s.cycle % 8 == 0));
        assert!(
            r.timeline.windows(2).all(|w| w[0].cycle < w[1].cycle),
            "samples must be ordered by cycle"
        );
        // Disabled by default: no samples, no cost.
        let plain = sim().run(&trace);
        assert!(plain.timeline.is_empty());
        assert_eq!(plain.timeline_dropped, 0);
    }

    #[test]
    fn reports_are_independent_across_runs() {
        let trace = straight_line(200);
        let sim = sim();
        let a = sim.run(&trace);
        let b = sim.run(&trace);
        assert_eq!(a.cycles, b.cycles, "runs must not share state");
    }

    use swip_types::Addr;
}
