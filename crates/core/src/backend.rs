//! The out-of-order-lite execution backend.
//!
//! The paper characterizes the *front-end*; the backend only needs to apply
//! realistic consumption pressure: a reorder buffer with bounded dispatch,
//! register dependence tracking, bounded issue/retire width, loads that walk
//! the data-side hierarchy, and branches that resolve at execute (feeding the
//! front-end's redirect machinery). No renaming, speculation, or memory
//! disambiguation is modeled — the trace is the correct path.

use std::collections::VecDeque;

use swip_cache::MemoryHierarchy;
use swip_frontend::DecodedInstr;
use swip_types::{Counter, Cycle, InstrKind, Instruction, Reg, SeqNum};

/// Backend sizing and latencies.
#[derive(Copy, Clone, Debug)]
pub struct BackendConfig {
    /// Reorder-buffer capacity (dispatch stalls when full).
    pub rob_size: usize,
    /// Instructions issued to execution per cycle.
    pub issue_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Cycles between dispatch and earliest issue (decode/rename depth;
    /// contributes to the misprediction penalty).
    pub dispatch_latency: u64,
    /// Execution latency of ALU ops, stores, branches and `prefetch.i`.
    pub alu_latency: u64,
}

impl Default for BackendConfig {
    /// Sunny-Cove-like scale: 352-entry ROB, 6-wide issue/retire, 3-cycle
    /// dispatch-to-issue depth.
    fn default() -> Self {
        BackendConfig {
            rob_size: 352,
            issue_width: 6,
            retire_width: 6,
            dispatch_latency: 3,
            alu_latency: 1,
        }
    }
}

impl BackendConfig {
    /// A small backend for fast tests.
    pub fn tiny() -> Self {
        BackendConfig {
            rob_size: 32,
            issue_width: 2,
            retire_width: 2,
            dispatch_latency: 1,
            alu_latency: 1,
        }
    }
}

/// Backend statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct BackendStats {
    /// Instructions retired.
    pub retired: Counter,
    /// Cycles dispatch was blocked by a full ROB.
    pub rob_full_cycles: Counter,
    /// Cycles nothing could issue although the ROB was non-empty.
    pub issue_idle_cycles: Counter,
    /// Loads executed.
    pub loads: Counter,
    /// Branches resolved.
    pub branches_resolved: Counter,
}

/// A branch whose outcome became architecturally known this cycle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ResolvedBranch {
    /// Trace index of the branch.
    pub seq: SeqNum,
    /// Cycle at which it resolved.
    pub at: Cycle,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum SlotState {
    Waiting,
    Executing { done: Cycle },
    Done,
}

#[derive(Clone, Debug)]
struct RobSlot {
    seq: SeqNum,
    instr: Instruction,
    state: SlotState,
    dispatched_at: Cycle,
    resolution_sent: bool,
}

/// The execution backend: dispatch → issue → complete → retire.
///
/// # Examples
///
/// ```
/// use swip_core::{Backend, BackendConfig};
///
/// let be = Backend::new(BackendConfig::default());
/// assert!(be.free_slots() > 0);
/// assert!(be.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Backend {
    config: BackendConfig,
    rob: VecDeque<RobSlot>,
    reg_ready: [Cycle; Reg::COUNT],
    stats: BackendStats,
    /// Seqs of `Waiting` slots, ascending. Dispatch appends (program
    /// order); issue removes. Keeping this index means a cycle touches
    /// only the slots that can change state instead of scanning the
    /// whole (mostly `Done`) ROB twice.
    waiting: Vec<SeqNum>,
    /// Seqs of `Executing` slots, ascending (sorted on insert, since
    /// out-of-order issue can start a younger seq before an older one).
    executing: Vec<SeqNum>,
}

impl Backend {
    /// Creates a backend from `config`.
    pub fn new(config: BackendConfig) -> Self {
        Backend {
            rob: VecDeque::with_capacity(config.rob_size),
            reg_ready: [0; Reg::COUNT],
            stats: BackendStats::default(),
            waiting: Vec::with_capacity(config.rob_size),
            executing: Vec::with_capacity(config.rob_size),
            config,
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// ROB slots currently free (the front-end's decode budget).
    pub fn free_slots(&self) -> usize {
        self.config.rob_size - self.rob.len()
    }

    /// True when no instructions are in flight.
    pub fn is_empty(&self) -> bool {
        self.rob.is_empty()
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.stats.retired.get()
    }

    /// Dispatches one decoded instruction into the ROB.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full — callers must respect [`Backend::free_slots`].
    pub fn dispatch(&mut self, decoded: DecodedInstr, instr: Instruction, now: Cycle) {
        assert!(
            self.rob.len() < self.config.rob_size,
            "dispatch into a full rob"
        );
        debug_assert!(
            self.waiting.last().is_none_or(|&s| s < decoded.seq),
            "dispatch out of program order"
        );
        self.waiting.push(decoded.seq);
        self.rob.push_back(RobSlot {
            seq: decoded.seq,
            instr,
            state: SlotState::Waiting,
            dispatched_at: now,
            resolution_sent: false,
        });
    }

    /// ROB index of the slot holding `seq`.
    ///
    /// The front-end dispatches in program order and the ROB retires in
    /// order, so resident seqs are contiguous and the offset from the
    /// head seq is the index.
    #[inline]
    fn slot_index(&self, seq: SeqNum) -> usize {
        let front = self.rob.front().expect("indexed into an empty rob").seq;
        let idx = (seq - front) as usize;
        debug_assert_eq!(self.rob[idx].seq, seq, "rob seqs are not contiguous");
        idx
    }

    /// Runs one backend cycle: issue ready instructions, complete finished
    /// ones (collecting branch resolutions into `resolutions`, which is
    /// cleared first — pass a reused buffer, not a fresh one, so the
    /// steady-state loop does not allocate per cycle), retire in order.
    pub fn cycle(
        &mut self,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        resolutions: &mut Vec<ResolvedBranch>,
    ) {
        resolutions.clear();

        // Issue: visit only `Waiting` slots, in program order (the same
        // order the old full-ROB scan produced, so register-ready updates
        // interleave identically). Unissued seqs are compacted in place.
        let had_waiting = !self.waiting.is_empty();
        let mut issued = 0;
        let mut kept = 0;
        for k in 0..self.waiting.len() {
            let seq = self.waiting[k];
            if issued >= self.config.issue_width {
                self.waiting[kept] = seq;
                kept += 1;
                continue;
            }
            let idx = self.slot_index(seq);
            let ready_check = {
                let slot = &self.rob[idx];
                debug_assert_eq!(slot.state, SlotState::Waiting);
                now >= slot.dispatched_at + self.config.dispatch_latency
                    && slot
                        .instr
                        .srcs
                        .iter()
                        .flatten()
                        .all(|r| self.reg_ready[r.index()] <= now)
            };
            if !ready_check {
                self.waiting[kept] = seq;
                kept += 1;
                continue;
            }
            let done = {
                let slot = &self.rob[idx];
                match slot.instr.kind {
                    InstrKind::Load { addr } => {
                        self.stats.loads.incr();
                        mem.access_data(addr.line(), now).complete_at
                    }
                    InstrKind::Store { addr } => {
                        // Stores commit asynchronously; warm the cache but
                        // complete at ALU latency.
                        mem.access_data(addr.line(), now);
                        now + self.config.alu_latency
                    }
                    _ => now + self.config.alu_latency,
                }
            };
            let slot = &mut self.rob[idx];
            slot.state = SlotState::Executing { done };
            if let Some(dst) = slot.instr.dst {
                self.reg_ready[dst.index()] = done;
            }
            let pos = self.executing.partition_point(|&s| s < seq);
            self.executing.insert(pos, seq);
            issued += 1;
        }
        self.waiting.truncate(kept);
        if issued == 0 && had_waiting {
            self.stats.issue_idle_cycles.incr();
        }

        // Complete: visit only `Executing` slots, still in program order,
        // so branch resolutions are reported in the same order as the old
        // whole-ROB sweep.
        let mut kept = 0;
        for k in 0..self.executing.len() {
            let seq = self.executing[k];
            let idx = self.slot_index(seq);
            let slot = &mut self.rob[idx];
            let SlotState::Executing { done } = slot.state else {
                unreachable!("executing index out of sync with rob state");
            };
            if done > now {
                self.executing[kept] = seq;
                kept += 1;
                continue;
            }
            slot.state = SlotState::Done;
            if slot.instr.is_branch() && !slot.resolution_sent {
                slot.resolution_sent = true;
                self.stats.branches_resolved.incr();
                resolutions.push(ResolvedBranch {
                    seq,
                    at: done.max(now),
                });
            }
        }
        self.executing.truncate(kept);

        // Retire in order.
        let mut retired = 0;
        while retired < self.config.retire_width {
            match self.rob.front() {
                Some(slot) if slot.state == SlotState::Done => {
                    self.rob.pop_front();
                    self.stats.retired.incr();
                    retired += 1;
                }
                _ => break,
            }
        }

        if self.free_slots() == 0 {
            self.stats.rob_full_cycles.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_cache::HierarchyConfig;
    use swip_types::Addr;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::tiny())
    }

    fn decoded(seq: SeqNum) -> DecodedInstr {
        DecodedInstr {
            seq,
            mispredicted: false,
        }
    }

    fn drain(
        be: &mut Backend,
        mem: &mut MemoryHierarchy,
        start: Cycle,
    ) -> (Cycle, Vec<ResolvedBranch>) {
        let mut now = start;
        let mut all = Vec::new();
        let mut resolved = Vec::new();
        while !be.is_empty() {
            be.cycle(now, mem, &mut resolved);
            all.extend_from_slice(&resolved);
            now += 1;
            assert!(now < start + 100_000, "backend did not drain");
        }
        (now, all)
    }

    #[test]
    fn retires_in_order() {
        let mut be = Backend::new(BackendConfig::tiny());
        let mut m = mem();
        // A slow load followed by a fast ALU op: the ALU op completes first
        // but must retire second.
        be.dispatch(
            decoded(0),
            Instruction::load(Addr::new(0), Addr::new(0x9000)),
            0,
        );
        be.dispatch(decoded(1), Instruction::alu(Addr::new(4)), 0);
        let (_, _) = drain(&mut be, &mut m, 0);
        assert_eq!(be.retired(), 2);
    }

    #[test]
    fn dependent_chain_serializes() {
        let cfg = BackendConfig::tiny();
        let lat = cfg.alu_latency;
        let mut be = Backend::new(cfg);
        let mut m = mem();
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let r3 = Reg::new(3);
        be.dispatch(decoded(0), Instruction::alu(Addr::new(0)).with_dst(r1), 0);
        be.dispatch(
            decoded(1),
            Instruction::alu(Addr::new(4)).with_srcs(&[r1]).with_dst(r2),
            0,
        );
        be.dispatch(
            decoded(2),
            Instruction::alu(Addr::new(8)).with_srcs(&[r2]).with_dst(r3),
            0,
        );
        let (end, _) = drain(&mut be, &mut m, 0);
        // Three serialized ops cannot finish faster than 3 × latency.
        assert!(end >= 3 * lat);
    }

    #[test]
    fn independent_ops_issue_in_parallel() {
        let mut be = Backend::new(BackendConfig::tiny()); // width 2
        let mut m = mem();
        for s in 0..4u64 {
            be.dispatch(decoded(s), Instruction::alu(Addr::new(s * 4)), 0);
        }
        let (end, _) = drain(&mut be, &mut m, 0);
        // Dispatch latency 1, then 2 cycles of dual issue, +1 to retire tail.
        assert!(end <= 8, "took {end} cycles");
    }

    #[test]
    fn branch_resolution_reported_once() {
        let mut be = Backend::new(BackendConfig::tiny());
        let mut m = mem();
        be.dispatch(
            decoded(0),
            Instruction::cond_branch(Addr::new(0), Addr::new(0x40), true),
            0,
        );
        let (_, resolutions) = drain(&mut be, &mut m, 0);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].seq, 0);
        assert_eq!(be.stats().branches_resolved.get(), 1);
    }

    #[test]
    fn load_pays_memory_latency() {
        let mut be = Backend::new(BackendConfig::tiny());
        let mut m = mem();
        be.dispatch(
            decoded(0),
            Instruction::load(Addr::new(0), Addr::new(0x9000)),
            0,
        );
        let (end, _) = drain(&mut be, &mut m, 0);
        assert!(end > HierarchyConfig::tiny().dram_latency);
    }

    #[test]
    #[should_panic(expected = "full rob")]
    fn overfull_dispatch_panics() {
        let mut be = Backend::new(BackendConfig::tiny());
        for s in 0..33u64 {
            be.dispatch(decoded(s), Instruction::alu(Addr::new(s * 4)), 0);
        }
    }

    #[test]
    fn free_slots_tracks_occupancy() {
        let mut be = Backend::new(BackendConfig::tiny());
        assert_eq!(be.free_slots(), 32);
        be.dispatch(decoded(0), Instruction::alu(Addr::new(0)), 0);
        assert_eq!(be.free_slots(), 31);
    }
}
