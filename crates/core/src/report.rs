//! Simulation results: everything the paper's figures need, in one struct.

use std::fmt;

use swip_branch::BranchStats;
use swip_cache::{CacheStats, HierarchyStats};
use swip_frontend::{FtqStats, TimelineSample};

use crate::BackendStats;

/// The result of simulating one trace under one configuration.
///
/// `ipc` counts every retired instruction; `effective_ipc` excludes inserted
/// `prefetch.i` instructions, matching the paper's accounting ("We do not
/// include the additional instructions AsmDB inserts when calculating its
/// IPC") so that AsmDB-rewritten traces are compared on useful work.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Workload (trace) name.
    pub workload: String,
    /// Retired instructions, including inserted software prefetches.
    pub instructions: u64,
    /// Retired `prefetch.i` instructions.
    pub prefetch_instructions: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Raw instructions per cycle.
    pub ipc: f64,
    /// IPC over useful (non-prefetch) instructions — the paper's metric.
    pub effective_ipc: f64,
    /// L1-I demand misses per 1000 useful instructions.
    pub l1i_mpki: f64,
    /// Front-end / FTQ statistics (Figs 8–11).
    pub frontend: FtqStats,
    /// Branch-prediction statistics.
    pub branch: BranchStats,
    /// L1-I cache statistics.
    pub l1i: CacheStats,
    /// L2 cache statistics.
    pub l2: CacheStats,
    /// LLC statistics.
    pub llc: CacheStats,
    /// Hierarchy-level statistics (per-level instruction hit counts).
    pub hierarchy: HierarchyStats,
    /// Backend statistics.
    pub backend: BackendStats,
    /// Per-line L1-I demand misses (line number → count); populated only
    /// when the run was configured with `collect_line_profile`.
    pub line_misses: std::collections::HashMap<u64, u64>,
    /// Cycle-sampled scenario timeline (oldest first); populated only when
    /// the run was configured with a `timeline` sampler.
    pub timeline: Vec<TimelineSample>,
    /// Timeline samples evicted by the sampler's capacity bound (the head
    /// of the run is lost first).
    pub timeline_dropped: u64,
    /// False if the run hit the cycle watchdog before draining.
    pub completed: bool,
}

impl SimReport {
    /// Speedup of this run's effective IPC over `baseline`'s.
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if baseline.effective_ipc == 0.0 {
            0.0
        } else {
            self.effective_ipc / baseline.effective_ipc
        }
    }

    /// Useful (non-prefetch) instructions retired.
    pub fn useful_instructions(&self) -> u64 {
        self.instructions - self.prefetch_instructions
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.workload)?;
        writeln!(
            f,
            "instructions: {} ({} prefetch.i), cycles: {}, IPC: {:.3} (effective {:.3})",
            self.instructions,
            self.prefetch_instructions,
            self.cycles,
            self.ipc,
            self.effective_ipc
        )?;
        writeln!(f, "L1-I MPKI: {:.2}", self.l1i_mpki)?;
        let (s1, s2, s3, empty) = self.frontend.scenario_fractions();
        writeln!(
            f,
            "FTQ scenarios: S1 {:.1}%  S2 {:.1}%  S3 {:.1}%  empty {:.1}%",
            s1 * 100.0,
            s2 * 100.0,
            s3 * 100.0,
            empty * 100.0
        )?;
        writeln!(
            f,
            "head stalls: {} cycles; waiting entries: {}; partially covered: {}",
            self.frontend.head_stall_cycles,
            self.frontend.entries_waiting_on_head,
            self.frontend.partially_covered_entries
        )?;
        writeln!(
            f,
            "fetch latency: head {:.1} cy, non-head {:.1} cy; aliased {:.1}% of line requests",
            self.frontend.head_fetch_cycles.mean(),
            self.frontend.nonhead_fetch_cycles.mean(),
            self.frontend.alias_fraction() * 100.0
        )?;
        write!(
            f,
            "branches: {} resolved, {:.2}% dir accuracy, {} mispredicted",
            self.branch.resolved,
            self.branch.direction.rate() * 100.0,
            self.branch.mispredicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(name: &str, eipc: f64) -> SimReport {
        SimReport {
            workload: name.into(),
            instructions: 1000,
            prefetch_instructions: 100,
            cycles: 500,
            ipc: 2.0,
            effective_ipc: eipc,
            l1i_mpki: 10.0,
            frontend: FtqStats::default(),
            branch: BranchStats::default(),
            l1i: CacheStats::default(),
            l2: CacheStats::default(),
            llc: CacheStats::default(),
            hierarchy: HierarchyStats::default(),
            backend: BackendStats::default(),
            line_misses: std::collections::HashMap::new(),
            timeline: Vec::new(),
            timeline_dropped: 0,
            completed: true,
        }
    }

    #[test]
    fn speedup_ratio() {
        let a = blank("a", 1.5);
        let b = blank("b", 1.0);
        assert!((a.speedup_over(&b) - 1.5).abs() < 1e-12);
        let zero = blank("z", 0.0);
        assert_eq!(a.speedup_over(&zero), 0.0);
    }

    #[test]
    fn useful_instruction_accounting() {
        assert_eq!(blank("a", 1.0).useful_instructions(), 900);
    }

    #[test]
    fn display_is_multiline_and_nonempty() {
        let text = blank("demo", 1.0).to_string();
        assert!(text.contains("demo"));
        assert!(text.lines().count() >= 5);
    }
}
