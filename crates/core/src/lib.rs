//! The `swip-fe` cycle-level core simulator and characterization API.
//!
//! This is the workspace's primary crate: it binds the decoupled front-end
//! ([`swip_frontend`]), the branch-prediction complex ([`swip_branch`]) and
//! the memory hierarchy ([`swip_cache`]) to an out-of-order-lite backend and
//! runs instruction traces through the whole pipeline, producing a
//! [`SimReport`] with every statistic the paper's figures are built from.
//!
//! The model is the paper's: a Sunny-Cove-like superscalar core whose
//! front-end implements aggressive fetch-directed prefetching with a
//! configurable FTQ depth (2-entry conservative vs. 24-entry
//! industry-standard), evaluated trace-driven over 48 workloads.
//!
//! # Quick start
//!
//! ```
//! use swip_core::{SimConfig, Simulator};
//! use swip_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new("demo");
//! for _ in 0..1000 { b.alu(); }
//! let trace = b.finish();
//!
//! let report = Simulator::new(SimConfig::test_scale()).run(&trace);
//! assert!(report.completed);
//! assert!(report.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod config;
mod report;
mod simulator;

pub use backend::{Backend, BackendConfig, BackendStats, ResolvedBranch};
pub use config::SimConfig;
pub use report::SimReport;
pub use simulator::{PrefetchHints, PreloadMetadata, Simulator};
pub use swip_cache::ConfigError;
// Re-exported so `SimConfig::timeline` is configurable (and the resulting
// `SimReport::timeline` consumable) without a direct swip-frontend dep.
pub use swip_frontend::{HintTable, TimelineConfig, TimelineSample};

// The bench crate's parallel experiment engine shares `Simulator`s and
// `SimConfig`s across worker threads; keep them (and everything a job
// returns) thread-safe by construction. A non-`Send` field added anywhere
// in the simulator tree fails compilation here, not at the first parallel
// run.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Simulator>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<SimReport>();
    assert_send_sync::<PrefetchHints>();
    assert_send_sync::<PreloadMetadata>();
};
