//! swip-fleet: shard experiment plans across `swip serve` workers.
//!
//! A fleet run is a deterministic map-reduce over simulation jobs. The
//! **map** side leans on a property the engine already guarantees: every
//! (workload, configuration) cell of an
//! [`ExperimentPlan`](swip_bench::ExperimentPlan) is independent, and
//! `build_plan_report` output is byte-identical no matter which process
//! computed it. The coordinator therefore shards a plan into single-cell
//! jobs ([`ExperimentPlan::cells`](swip_bench::ExperimentPlan::cells)),
//! dispatches them to whichever registered worker is free over the
//! keep-alive HTTP client, and collects partial `RunReport`s as they
//! finish — in whatever order the fleet happens to produce them.
//!
//! The **reduce** side is
//! [`merge_plan_reports`](swip_report::merge_plan_reports): partials are
//! reassembled in plan order, so the merged report is byte-identical to
//! a single-node offline run of the same plan at the same knobs.
//!
//! Robustness is first-class:
//!
//! * every shard has a deadline ([`FleetConfig::shard_timeout`]) and a
//!   bounded retry budget with exponential backoff;
//! * a connection failure triggers a one-shot `/healthz` probe — a
//!   worker that fails the probe is declared **dead**, its in-flight
//!   shard is re-queued *without* charging a retry, and its agent
//!   thread exits, so the remaining workers absorb the load;
//! * the sweep completes as long as one worker lives; only a shard that
//!   exhausts its retry budget on live workers, or the death of every
//!   worker, fails the run.
//!
//! Cache shipping ([`warm_workers`]) rides on the content-addressed
//! trace cache: the coordinator materializes each plan workload's trace
//! locally, then `GET`s each worker's `/v1/cache/{fingerprint}` and
//! `PUT`s the bytes wherever it sees a 404 — cold workers skip trace
//! generation entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

use swip_bench::ExperimentPlan;
use swip_report::{MergeError, RunReport};

mod cache;
mod coordinator;

pub use cache::{warm_workers, WarmStats};
pub use coordinator::run_plan;

/// Coordinator knobs: the worker set and the retry/timeout policy.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker addresses (`host:port`), as accepted by the serve client.
    pub workers: Vec<String>,
    /// Wall-clock budget for one shard attempt (submit through report
    /// fetch). A shard past its deadline is retried elsewhere.
    pub shard_timeout: Duration,
    /// Attempts per shard before the run fails (dead-worker re-dispatch
    /// does not count against this budget).
    pub max_attempts: u32,
    /// Base backoff between retry attempts; doubles per attempt.
    pub backoff: Duration,
    /// Delay between job-state polls while a shard runs.
    pub poll_interval: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: Vec::new(),
            shard_timeout: Duration::from_secs(120),
            max_attempts: 3,
            backoff: Duration::from_millis(200),
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// Why a fleet run failed.
#[derive(Debug)]
pub enum FleetError {
    /// The plan has no (workload, config) cells to run.
    EmptyPlan,
    /// No configured worker answered its registration `/healthz` probe.
    NoWorkers {
        /// How many workers were configured.
        configured: usize,
    },
    /// A shard exhausted its retry budget on live workers.
    ShardFailed {
        /// Workload of the failed cell.
        workload: String,
        /// Config label of the failed cell.
        config: String,
        /// Attempts consumed.
        attempts: u32,
        /// The last attempt's error.
        last_error: String,
    },
    /// Every worker died before the sweep finished.
    AllWorkersDead {
        /// Shards completed before the fleet went dark.
        completed: usize,
        /// Total shards in the plan.
        total: usize,
    },
    /// The collected partials could not be merged.
    Merge(MergeError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::EmptyPlan => write!(f, "plan has no cells to shard"),
            FleetError::NoWorkers { configured } => write!(
                f,
                "none of the {configured} configured workers answered /healthz"
            ),
            FleetError::ShardFailed {
                workload,
                config,
                attempts,
                last_error,
            } => write!(
                f,
                "shard ({workload}, {config}) failed after {attempts} attempts: {last_error}"
            ),
            FleetError::AllWorkersDead { completed, total } => write!(
                f,
                "all workers died with {completed}/{total} shards complete"
            ),
            FleetError::Merge(e) => write!(f, "merging partial reports: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Merge(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MergeError> for FleetError {
    fn from(e: MergeError) -> Self {
        FleetError::Merge(e)
    }
}

/// One worker's contribution to a finished run.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// The worker's address.
    pub addr: String,
    /// Shards this worker completed.
    pub shards_done: usize,
    /// Whether the worker was declared dead mid-sweep.
    pub dead: bool,
}

/// Aggregate telemetry for a finished run.
#[derive(Clone, Debug)]
pub struct FleetStats {
    /// Total shards in the plan.
    pub shards: usize,
    /// Shards re-queued because their worker died mid-flight.
    pub redispatches: u64,
    /// Retry attempts charged against shard budgets.
    pub retries: u64,
    /// Per-worker breakdown (registration order).
    pub workers: Vec<WorkerStats>,
}

/// A successful fleet run: the merged report plus telemetry.
#[derive(Clone, Debug)]
pub struct FleetRun {
    /// The merged plan report, byte-identical to a single-node run.
    pub report: RunReport,
    /// How the fleet got there.
    pub stats: FleetStats,
}

/// The plan's deterministic shape for the merge: workload names in plan
/// order, each with its config labels in canonical order.
pub fn plan_order(plan: &ExperimentPlan) -> Vec<(String, Vec<String>)> {
    let configs: Vec<String> = plan
        .configs()
        .iter()
        .map(|c| c.label().to_string())
        .collect();
    plan.workloads()
        .iter()
        .map(|w| (w.name.clone(), configs.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_bench::{ConfigId, SessionBuilder};

    #[test]
    fn plan_order_mirrors_cells() {
        let session = SessionBuilder::new()
            .instructions(2_000)
            .stride(16)
            .build()
            .unwrap();
        let plan = ExperimentPlan::new(session.workloads(), &[ConfigId::Base, ConfigId::Fdp]);
        let order = plan_order(&plan);
        assert_eq!(order.len(), plan.workloads().len());
        let flattened: Vec<(String, String)> = order
            .iter()
            .flat_map(|(w, cs)| cs.iter().map(move |c| (w.clone(), c.clone())))
            .collect();
        assert_eq!(flattened, plan.cells());
    }

    #[test]
    fn errors_render_usable_messages() {
        let e = FleetError::ShardFailed {
            workload: "w".into(),
            config: "c".into(),
            attempts: 3,
            last_error: "boom".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("(w, c)") && msg.contains("3 attempts") && msg.contains("boom"));
        assert!(FleetError::NoWorkers { configured: 2 }
            .to_string()
            .contains('2'));
        assert!(FleetError::AllWorkersDead {
            completed: 4,
            total: 18
        }
        .to_string()
        .contains("4/18"));
    }
}
