//! The coordinator: per-worker agent threads over a shared shard queue.
//!
//! Scheduling is work-stealing in the simplest form: one agent thread
//! per live worker pulls the next shard off a shared queue, runs it to
//! completion on its worker (submit → poll → fetch report), and stores
//! the partial report by shard index. The queue is the single source of
//! truth for "work not yet owned"; shards move queue → in-flight →
//! done, and every failure path puts the shard back on the queue (or
//! declares the run failed), so no shard is ever silently lost.
//!
//! Failure taxonomy, in decreasing severity:
//!
//! * **dead worker** — a connection error whose follow-up `/healthz`
//!   probe also fails. The shard is re-queued without charging its
//!   retry budget (the shard did nothing wrong) and the agent exits.
//! * **shard failure** — a live worker answered, but unhelpfully (job
//!   `failed`, non-202 submit, unparsable report) or not in time
//!   (deadline). Charges one attempt; exponential backoff; the run
//!   fails once [`FleetConfig::max_attempts`] is spent.
//! * **queue drained** — agents exit when all shards are done, or when
//!   a fatal error is posted.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use swip_bench::ExperimentPlan;
use swip_report::{merge_plan_reports, Json, PlanSpec, RunReport};
use swip_serve::client::{self, Connection};

use crate::{plan_order, FleetConfig, FleetError, FleetRun, FleetStats, WorkerStats};

/// One unit of work: a single-cell plan plus its retry ledger.
struct Task {
    /// Index into the plan's cell list (and the results vector).
    index: usize,
    workload: String,
    config: String,
    attempts: u32,
}

/// How one shard attempt ended, short of success.
enum ShardError {
    /// The worker failed its liveness probe; re-queue free of charge.
    Dead(String),
    /// The worker is alive but the attempt failed; charge the budget.
    Failed(String),
    /// The attempt outran [`FleetConfig::shard_timeout`].
    Timeout,
}

impl ShardError {
    fn describe(&self) -> String {
        match self {
            ShardError::Dead(why) => format!("worker dead: {why}"),
            ShardError::Failed(why) => why.clone(),
            ShardError::Timeout => "shard deadline exceeded".to_string(),
        }
    }
}

/// State shared by every agent thread.
struct Shared {
    queue: Mutex<VecDeque<Task>>,
    results: Mutex<Vec<Option<RunReport>>>,
    done: AtomicUsize,
    in_flight: AtomicUsize,
    fatal: Mutex<Option<FleetError>>,
    redispatches: AtomicU64,
    retries: AtomicU64,
    total: usize,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `plan` across the configured workers and merges the partial
/// reports into one plan-order [`RunReport`], byte-identical to a
/// single-node `build_plan_report` run of the same plan at the same
/// session knobs.
///
/// Workers are registered by a `/healthz` probe first; unreachable ones
/// are dropped up front. The sweep then completes as long as at least
/// one registered worker stays alive.
///
/// # Errors
///
/// [`FleetError::NoWorkers`] when registration finds nobody,
/// [`FleetError::ShardFailed`] when a shard exhausts its retry budget,
/// [`FleetError::AllWorkersDead`] when the whole fleet dies mid-sweep,
/// and [`FleetError::Merge`] if the collected partials are inconsistent
/// (a determinism-contract violation).
pub fn run_plan(plan: &ExperimentPlan, config: &FleetConfig) -> Result<FleetRun, FleetError> {
    let cells = plan.cells();
    if cells.is_empty() {
        return Err(FleetError::EmptyPlan);
    }

    // Registration: one liveness probe per configured worker.
    let live: Vec<String> = config
        .workers
        .iter()
        .filter(|addr| matches!(client::request(addr, "GET", "/healthz", None), Ok((200, _))))
        .cloned()
        .collect();
    if live.is_empty() {
        return Err(FleetError::NoWorkers {
            configured: config.workers.len(),
        });
    }

    let total = cells.len();
    let shared = Arc::new(Shared {
        queue: Mutex::new(
            cells
                .into_iter()
                .enumerate()
                .map(|(index, (workload, config))| Task {
                    index,
                    workload,
                    config,
                    attempts: 0,
                })
                .collect(),
        ),
        results: Mutex::new(vec![None; total]),
        done: AtomicUsize::new(0),
        in_flight: AtomicUsize::new(0),
        fatal: Mutex::new(None),
        redispatches: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        total,
    });

    let workers: Vec<WorkerStats> = thread::scope(|scope| {
        let handles: Vec<_> = live
            .iter()
            .map(|addr| {
                let shared = Arc::clone(&shared);
                let cfg = config.clone();
                let addr = addr.clone();
                scope.spawn(move || agent(addr, &shared, &cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("agent threads do not panic"))
            .collect()
    });

    if let Some(err) = lock(&shared.fatal).take() {
        return Err(err);
    }
    let partials: Vec<RunReport> = {
        let mut results = lock(&shared.results);
        let collected: Vec<RunReport> = results.iter_mut().filter_map(Option::take).collect();
        if collected.len() < total {
            return Err(FleetError::AllWorkersDead {
                completed: collected.len(),
                total,
            });
        }
        collected
    };
    let report = merge_plan_reports(&plan_order(plan), &partials)?;
    Ok(FleetRun {
        report,
        stats: FleetStats {
            shards: total,
            redispatches: shared.redispatches.load(Ordering::Relaxed),
            retries: shared.retries.load(Ordering::Relaxed),
            workers,
        },
    })
}

/// One worker's agent loop: pull a shard, run it, repeat — until the
/// plan is done, a fatal error is posted, or this worker dies.
fn agent(addr: String, shared: &Shared, cfg: &FleetConfig) -> WorkerStats {
    let mut stats = WorkerStats {
        addr: addr.clone(),
        shards_done: 0,
        dead: false,
    };
    let mut conn: Option<Connection> = None;
    loop {
        if lock(&shared.fatal).is_some() || shared.done.load(Ordering::SeqCst) >= shared.total {
            return stats;
        }
        // Pop and mark in-flight under one lock, so "queue empty and
        // nothing in flight" is never observed while a task is owned.
        let task = {
            let mut queue = lock(&shared.queue);
            let task = queue.pop_front();
            if task.is_some() {
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
            }
            task
        };
        let Some(mut task) = task else {
            if shared.in_flight.load(Ordering::SeqCst) == 0 {
                // Nothing queued, nothing owned, plan incomplete: a
                // fatal post is in progress on another agent. Either
                // way there is no work left for this thread.
                return stats;
            }
            thread::sleep(cfg.poll_interval);
            continue;
        };

        match run_shard(&addr, &task, cfg, &mut conn) {
            Ok(report) => {
                lock(&shared.results)[task.index] = Some(report);
                shared.done.fetch_add(1, Ordering::SeqCst);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                stats.shards_done += 1;
            }
            Err(ShardError::Dead(_)) => {
                // The shard did nothing wrong: re-queue it uncharged for
                // a surviving worker and retire this agent.
                shared.redispatches.fetch_add(1, Ordering::Relaxed);
                lock(&shared.queue).push_back(task);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                stats.dead = true;
                return stats;
            }
            Err(err) => {
                task.attempts += 1;
                shared.retries.fetch_add(1, Ordering::Relaxed);
                if task.attempts >= cfg.max_attempts {
                    *lock(&shared.fatal) = Some(FleetError::ShardFailed {
                        workload: task.workload,
                        config: task.config,
                        attempts: task.attempts,
                        last_error: err.describe(),
                    });
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    return stats;
                }
                let backoff = cfg.backoff * 2u32.saturating_pow(task.attempts - 1);
                lock(&shared.queue).push_back(task);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                thread::sleep(backoff);
            }
        }
    }
}

/// Runs one shard to completion on `addr`: submit the single-cell plan,
/// poll the job to a terminal state, fetch the report.
fn run_shard(
    addr: &str,
    task: &Task,
    cfg: &FleetConfig,
    conn: &mut Option<Connection>,
) -> Result<RunReport, ShardError> {
    let deadline = Instant::now() + cfg.shard_timeout;
    let spec = PlanSpec {
        workloads: vec![task.workload.clone()],
        configs: vec![task.config.clone()],
        insertions: Vec::new(),
        prefetchers: Vec::new(),
    };
    let body = spec.to_json_value().render();

    // Submit, riding out backpressure until the deadline.
    let id = loop {
        let (status, text) = http(addr, conn, "POST", "/v1/jobs", Some(&body))?;
        match status {
            202 => {
                let id = Json::parse(&text)
                    .ok()
                    .and_then(|j| j.get("id").and_then(Json::as_u64));
                match id {
                    Some(id) => break id,
                    None => {
                        return Err(ShardError::Failed(format!("202 without a job id: {text}")))
                    }
                }
            }
            429 => {
                if Instant::now() >= deadline {
                    return Err(ShardError::Timeout);
                }
                thread::sleep(Duration::from_millis(100));
            }
            // Draining refuses new work permanently; treat as death so
            // the shard moves on immediately.
            503 => return Err(ShardError::Dead("worker is draining".to_string())),
            _ => {
                return Err(ShardError::Failed(format!(
                    "submit answered {status}: {text}"
                )))
            }
        }
    };

    // Poll to a terminal state.
    let job_path = format!("/v1/jobs/{id}");
    loop {
        if Instant::now() >= deadline {
            return Err(ShardError::Timeout);
        }
        let (status, text) = http(addr, conn, "GET", &job_path, None)?;
        if status != 200 {
            return Err(ShardError::Failed(format!(
                "job poll answered {status}: {text}"
            )));
        }
        let state = Json::parse(&text)
            .ok()
            .and_then(|j| j.get("state").and_then(Json::as_str).map(str::to_string))
            .unwrap_or_default();
        match state.as_str() {
            "done" => break,
            "failed" => {
                return Err(ShardError::Failed(format!(
                    "worker reported failure: {text}"
                )))
            }
            _ => thread::sleep(cfg.poll_interval),
        }
    }

    let (status, text) = http(addr, conn, "GET", &format!("{job_path}/report"), None)?;
    if status != 200 {
        return Err(ShardError::Failed(format!(
            "report fetch answered {status}: {text}"
        )));
    }
    RunReport::from_json_str(&text)
        .map_err(|e| ShardError::Failed(format!("unparsable partial report: {e}")))
}

/// One request on the agent's kept-alive connection, with dead-worker
/// discrimination: a connection error is only a *shard* error if the
/// worker still answers `/healthz` on a fresh socket (the kept-alive
/// connection may simply have idled out); otherwise the worker is dead.
fn http(
    addr: &str,
    conn: &mut Option<Connection>,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), ShardError> {
    fn attempt(
        addr: &str,
        conn: &mut Option<Connection>,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        if conn.is_none() {
            *conn = Some(Connection::connect(addr)?);
        }
        conn.as_mut()
            .expect("just connected")
            .request(method, path, body)
    }

    match attempt(addr, conn, method, path, body) {
        Ok(result) => Ok(result),
        Err(first) => {
            *conn = None;
            match client::request(addr, "GET", "/healthz", None) {
                Ok((200, _)) => match attempt(addr, conn, method, path, body) {
                    Ok(result) => Ok(result),
                    Err(second) => {
                        *conn = None;
                        Err(ShardError::Failed(format!(
                            "request failed twice on a live worker: {first}; then {second}"
                        )))
                    }
                },
                _ => Err(ShardError::Dead(format!(
                    "connection failed ({first}) and the liveness probe got no answer"
                ))),
            }
        }
    }
}
