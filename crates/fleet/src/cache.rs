//! Cache shipping: warm cold workers from the coordinator's trace cache.
//!
//! The trace cache is content-addressed (filenames carry the workload's
//! generator fingerprint), so shipping is a pure key-value sync: for
//! every workload in the plan, materialize the trace locally, `GET` each
//! worker's `/v1/cache/{fingerprint}`, and `PUT` the bytes wherever the
//! answer is 404. Workers validate on ingest (the bytes must decode to
//! the named workload's trace), so a bad ship degrades to a regenerate,
//! never to wrong results.
//!
//! Everything here is best-effort by design — a worker that cannot be
//! warmed simply generates its own traces — so the function returns
//! telemetry rather than errors.

use swip_bench::{ExperimentPlan, Session};
use swip_serve::client::Connection;

/// Telemetry from one [`warm_workers`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Entries shipped (worker answered 404, PUT succeeded).
    pub shipped: usize,
    /// Entries the worker already had (GET answered 200).
    pub already_warm: usize,
    /// Entries skipped before any transfer: the coordinator has no cache
    /// directory, the local bytes are missing, or they exceed the
    /// server's body cap ([`swip_serve::MAX_BODY`]).
    pub skipped: usize,
    /// Transfer attempts that failed (connect error, PUT rejected — e.g.
    /// a worker without a cache directory answers 409).
    pub failed: usize,
}

/// Ships the plan's traces from the coordinator's cache to every worker
/// that lacks them. Requires the coordinator session to have a cache
/// directory (each trace is materialized locally first); without one,
/// every entry counts as skipped.
pub fn warm_workers(session: &Session, plan: &ExperimentPlan, workers: &[String]) -> WarmStats {
    let mut stats = WarmStats::default();

    // Materialize each plan trace locally, once, and keep its wire form.
    let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
    for spec in plan.workloads() {
        let Some(path) = session.trace_cache_path(spec) else {
            stats.skipped += workers.len();
            continue;
        };
        if !path.exists() {
            let _ = session.trace(spec); // generates and stores
        }
        let Ok(bytes) = std::fs::read(&path) else {
            stats.skipped += workers.len();
            continue;
        };
        if bytes.len() > swip_serve::MAX_BODY {
            stats.skipped += workers.len();
            continue;
        }
        entries.push((session.trace_fingerprint(spec), bytes));
    }

    for addr in workers {
        let Ok(mut conn) = Connection::connect(addr) else {
            stats.failed += entries.len();
            continue;
        };
        for (fingerprint, bytes) in &entries {
            let path = format!("/v1/cache/{fingerprint}");
            match conn.request_bytes("GET", &path, &[]) {
                Ok((200, _)) => stats.already_warm += 1,
                Ok((404, _)) => match conn.request_bytes("PUT", &path, bytes) {
                    Ok((200, _)) => stats.shipped += 1,
                    _ => stats.failed += 1,
                },
                _ => stats.failed += 1,
            }
        }
    }
    stats
}
