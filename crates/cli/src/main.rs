//! The `swip` command-line entry point; all logic lives in [`swip_cli`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let cmd = match swip_cli::parse(&arg_refs) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", swip_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match swip_cli::execute(cmd) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
