//! Command parsing and execution for the `swip` command-line tool.
//!
//! Subcommands:
//!
//! * `swip suite [--instructions N]` — list the 48 CVP-1-like workloads;
//! * `swip gen <workload> --out FILE [--instructions N]` — generate a
//!   workload trace and write it in the `SWIP` binary format;
//! * `swip inspect FILE` — print a trace's mix/footprint summary;
//! * `swip run FILE [--ftq N] [--conservative] [--timeline FILE
//!   [--sample-stride N]]` — simulate a trace and print the report,
//!   optionally exporting the cycle-sampled scenario timeline as Chrome
//!   trace-event JSON (open it in `chrome://tracing` or Perfetto);
//! * `swip asmdb FILE --out FILE [--aggressive]` — run the AsmDB pipeline
//!   and write the rewritten trace;
//! * `swip analyze FILE [--json] [--coverage]` — statically verify a trace
//!   (and the CFG, plan, and rewrite derived from it) without simulating;
//!   `--coverage` additionally classifies every planned insertion as
//!   useful / dead / redundant / late / clobbering (rules `D001`–`D004`).
//!   Exits like `diff(1)`: 0 when no errors were found, 1 on
//!   error-severity diagnostics, 2 when the file cannot be read or
//!   decoded;
//! * `swip analyze --predict-vs REPORT.json [--threshold X]` — compare the
//!   coverage predictions embedded in a bench `report.json` against its
//!   measured prefetch counters; same exit convention (1 = divergence
//!   above the threshold, 2 = unreadable/incomparable report);
//! * `swip bench [--figure NAME] [--prefetcher NAME]... [--instructions N]
//!   [--stride N] [--threads K] [--asmdb TUNING] [--cache-dir DIR]
//!   [--measure]` — run a paper figure (or `all` of them) through the
//!   parallel experiment engine; the `all` sweep also writes a structured
//!   `report.json` next to the TSVs; `--prefetcher` (repeatable, one of
//!   `fdp`/`asmdb`/`mana`/`shadow_btb`) runs the prefetcher-zoo comparison
//!   sweep over the named mechanisms instead; `--measure` instead times
//!   the simulator over the sweep and appends an entry to the
//!   `BENCH_throughput.json` history (the tracked hot-path metric, schema
//!   v2);
//! * `swip report FILE` — summarize a `report.json`; `swip report --diff
//!   A B` — print the counter-level differences between two run reports
//!   and exit like `diff(1)`: 0 when they match, 1 when they differ, 2
//!   when a file cannot be read or parsed; `swip report --migrate-history
//!   FILE` — rewrite a bare v1 `BENCH_throughput.json` as a schema-v2
//!   history in place; `swip report --check-regression FILE [--threshold
//!   PCT]` — compare the newest history entry against the previous one
//!   per configuration and exit 1 when any `instrs_per_sec` dropped by
//!   more than the threshold (default 25%), 2 when the file is
//!   unreadable;
//! * `swip fleet run` — shard an experiment plan across `swip serve`
//!   workers (`--worker HOST:PORT`, repeatable) and merge the partial
//!   reports into one `RunReport` byte-identical to a single-node run;
//!   `--offline` runs the same plan locally through the session engine
//!   instead (the reference the fleet output is compared against);
//! * `swip serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!   [--max-conns N] [--keep-alive-timeout SECS] [--instructions N]
//!   [--stride N] [--job-threads K] [--cache-dir DIR]` — run the
//!   experiment engine as an HTTP service: keep-alive connections
//!   multiplexed on a `poll(2)` readiness loop, a bounded connection
//!   table (`503` shedding past `--max-conns`), and a bounded job queue
//!   (see `swip-serve`).
//!
//! The parser is hand-rolled (the workspace's dependency budget is
//! deliberately small) and returns structured [`Command`]s so it can be
//! tested without touching the filesystem. [`execute`] returns the
//! process exit code so subcommands with meaningful codes (`report
//! --diff`) stay testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fs::File;

use swip_asmdb::{Asmdb, AsmdbConfig};
use swip_core::{SimConfig, Simulator};
use swip_trace::Trace;
use swip_workloads::{cvp1_suite, generate};

/// A parsed CLI invocation.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// List the workload suite.
    Suite {
        /// Instructions per workload (affects the printed footprints).
        instructions: u64,
    },
    /// Generate a workload trace to a file.
    Gen {
        /// Workload name (e.g. `secret_srv12`) or index (0–47).
        workload: String,
        /// Output path.
        out: String,
        /// Dynamic instruction budget.
        instructions: u64,
    },
    /// Summarize a trace file.
    Inspect {
        /// Trace path.
        file: String,
    },
    /// Simulate a trace file.
    Run {
        /// Trace path.
        file: String,
        /// FTQ depth (defaults to the industry-standard 24).
        ftq: usize,
        /// Write the scenario timeline as Chrome trace-event JSON here.
        timeline: Option<String>,
        /// Timeline sampling stride in cycles.
        sample_stride: u64,
    },
    /// Run the AsmDB pipeline on a trace file.
    Asmdb {
        /// Input trace path.
        file: String,
        /// Output (rewritten) trace path.
        out: String,
        /// Use the aggressive tuning.
        aggressive: bool,
    },
    /// Statically verify a trace file without simulating it, or compare a
    /// run report's embedded coverage predictions against its counters.
    Analyze {
        /// Trace path (`None` in `--predict-vs` mode).
        file: Option<String>,
        /// Emit the report as one JSON object instead of text.
        json: bool,
        /// Run the coverage family (D001–D004) and attach the predicted
        /// coverage summary.
        coverage: bool,
        /// Run-report path for prediction-vs-measurement mode.
        predict_vs: Option<String>,
        /// Maximum tolerated predict-vs divergence.
        threshold: swip_analyze::DivergenceThreshold,
    },
    /// Run benchmark figures through the parallel experiment engine.
    Bench {
        /// Figure to emit (`all`, `fig1`, `fig7`–`fig11`, `scenarios`,
        /// `table1`, `prefetchers`).
        figure: String,
        /// Prefetchers for the zoo comparison sweep (`--prefetcher` flags,
        /// repeatable). Non-empty selects the `prefetchers` figure over
        /// exactly these mechanisms.
        prefetchers: Vec<swip_types::PrefetcherId>,
        /// Dynamic instruction budget per workload.
        instructions: u64,
        /// Workload suite stride (1 = all 48, 8 = every 8th, …).
        stride: usize,
        /// Worker threads (defaults to the machine's parallelism).
        threads: Option<usize>,
        /// AsmDB tuning (`default`, `aggressive`, `wide`).
        asmdb: swip_bench::AsmdbTuning,
        /// Directory for the on-disk trace cache.
        cache_dir: Option<String>,
        /// Measure simulator throughput instead of emitting figures, and
        /// write `BENCH_throughput.json` to the working directory.
        measure: bool,
    },
    /// Summarize or diff structured run reports.
    Report {
        /// Run-report JSON paths: one (summary) or two (`--diff`).
        files: Vec<String>,
    },
    /// Rewrite a bare v1 throughput report as a schema-v2 history in
    /// place (`swip report --migrate-history`).
    MigrateHistory {
        /// Path to the tracked `BENCH_throughput.json`.
        file: String,
    },
    /// Check the newest throughput-history entry for per-config
    /// regressions against the previous entry (`swip report
    /// --check-regression`).
    CheckRegression {
        /// Path to the throughput history (v1 files are accepted).
        file: String,
        /// Maximum tolerated per-config `instrs_per_sec` drop, percent.
        threshold: f64,
    },
    /// Shard an experiment plan across `swip serve` workers, or run it
    /// locally with `--offline`.
    Fleet {
        /// Worker addresses (`--worker`, repeatable).
        workers: Vec<String>,
        /// Run the plan locally instead of dispatching to workers.
        offline: bool,
        /// Dynamic instruction budget per workload.
        instructions: u64,
        /// Workload suite stride (1 = all 48, 8 = every 8th, …).
        stride: usize,
        /// Workload names selecting a plan subset (empty = whole suite).
        workloads: Vec<String>,
        /// Configuration labels (empty = the paper's six).
        configs: Vec<String>,
        /// Prefetcher labels unioned into the configuration axis.
        prefetchers: Vec<String>,
        /// Session threads for the offline run / plan resolution.
        job_threads: Option<usize>,
        /// Write the merged report JSON here instead of summarizing.
        out: Option<String>,
        /// Local trace-cache directory; enables cache shipping to
        /// workers before the sweep.
        cache_dir: Option<String>,
        /// Wall-clock budget per shard attempt, in seconds.
        shard_timeout: u64,
        /// Attempts per shard before the run fails.
        retries: u32,
    },
    /// Serve the experiment engine over HTTP.
    Serve {
        /// Listen address (`HOST:PORT`; port 0 picks a free port).
        addr: String,
        /// Worker threads executing jobs.
        workers: usize,
        /// Bounded job-queue capacity (excess submissions get 429).
        queue_depth: usize,
        /// Bounded connection-table capacity (excess accepts get 503 +
        /// `Connection: close`).
        max_conns: usize,
        /// Idle keep-alive connection timeout, in seconds.
        keep_alive_timeout: u64,
        /// Dynamic instruction budget per workload.
        instructions: u64,
        /// Workload suite stride (1 = all 48, 8 = every 8th, …).
        stride: usize,
        /// Session threads per job (defaults to machine parallelism).
        job_threads: Option<usize>,
        /// Directory for the on-disk trace cache.
        cache_dir: Option<String>,
    },
    /// Print usage.
    Help,
}

/// A CLI usage error.
#[derive(Clone, PartialEq, Debug)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for UsageError {}

/// Usage text for `swip help`.
pub const USAGE: &str = "\
swip — the swip-fe front-end characterization toolkit

USAGE:
  swip suite [--instructions N]
  swip gen <workload> --out FILE [--instructions N]
  swip inspect FILE
  swip run FILE [--ftq N] [--conservative] [--timeline FILE [--sample-stride N]]
  swip asmdb FILE --out FILE [--aggressive]
  swip analyze FILE [--json] [--coverage]
                                   (exits 0 clean / 1 errors / 2 unreadable)
  swip analyze --predict-vs REPORT.json [--threshold X]
  swip bench [--figure NAME] [--prefetcher fdp|asmdb|mana|shadow_btb]...
             [--instructions N] [--stride N] [--threads K]
             [--asmdb default|aggressive|wide] [--cache-dir DIR] [--measure]
  swip report FILE
  swip report --diff FILE FILE     (exits 0 match / 1 differ / 2 unreadable)
  swip report --migrate-history FILE
  swip report --check-regression FILE [--threshold PCT]
                                   (exits 0 clean / 1 regression / 2 unreadable)
  swip fleet run (--worker HOST:PORT)... | --offline
             [--workload NAME]... [--config LABEL]... [--prefetcher NAME]...
             [--instructions N] [--stride N] [--job-threads K]
             [--cache-dir DIR] [--shard-timeout SECS] [--retries N] [--out FILE]
  swip serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
             [--max-conns N] [--keep-alive-timeout SECS]
             [--instructions N] [--stride N] [--job-threads K] [--cache-dir DIR]
  swip help
";

fn take_value<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<&'a str, UsageError> {
    args.next()
        .ok_or_else(|| UsageError(format!("{flag} requires a value")))
}

/// Parses an argument vector (without the program name) into a [`Command`].
///
/// # Errors
///
/// Returns [`UsageError`] on unknown subcommands, unknown flags, missing
/// values, or unparsable numbers.
pub fn parse(args: &[&str]) -> Result<Command, UsageError> {
    let mut it = args.iter().copied();
    let Some(sub) = it.next() else {
        return Ok(Command::Help);
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "suite" => {
            let mut instructions = 300_000u64;
            while let Some(a) = it.next() {
                match a {
                    "--instructions" => {
                        instructions = parse_num(take_value(&mut it, a)?)?;
                    }
                    other => return Err(UsageError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Suite { instructions })
        }
        "gen" => {
            let workload = it
                .next()
                .ok_or_else(|| UsageError("gen requires a workload name or index".into()))?
                .to_string();
            let mut out = None;
            let mut instructions = 300_000u64;
            while let Some(a) = it.next() {
                match a {
                    "--out" => out = Some(take_value(&mut it, a)?.to_string()),
                    "--instructions" => instructions = parse_num(take_value(&mut it, a)?)?,
                    other => return Err(UsageError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Gen {
                workload,
                out: out.ok_or_else(|| UsageError("gen requires --out FILE".into()))?,
                instructions,
            })
        }
        "inspect" => {
            let file = it
                .next()
                .ok_or_else(|| UsageError("inspect requires a trace file".into()))?
                .to_string();
            Ok(Command::Inspect { file })
        }
        "run" => {
            let file = it
                .next()
                .ok_or_else(|| UsageError("run requires a trace file".into()))?
                .to_string();
            let mut ftq = 24usize;
            let mut timeline = None;
            let mut sample_stride = 64u64;
            while let Some(a) = it.next() {
                match a {
                    "--ftq" => ftq = parse_num(take_value(&mut it, a)?)? as usize,
                    "--conservative" => ftq = 2,
                    "--timeline" => timeline = Some(take_value(&mut it, a)?.to_string()),
                    "--sample-stride" => sample_stride = parse_num(take_value(&mut it, a)?)?,
                    other => return Err(UsageError(format!("unknown flag {other}"))),
                }
            }
            if ftq == 0 {
                return Err(UsageError("--ftq must be positive".into()));
            }
            if sample_stride == 0 {
                return Err(UsageError("--sample-stride must be positive".into()));
            }
            Ok(Command::Run {
                file,
                ftq,
                timeline,
                sample_stride,
            })
        }
        "asmdb" => {
            let file = it
                .next()
                .ok_or_else(|| UsageError("asmdb requires a trace file".into()))?
                .to_string();
            let mut out = None;
            let mut aggressive = false;
            while let Some(a) = it.next() {
                match a {
                    "--out" => out = Some(take_value(&mut it, a)?.to_string()),
                    "--aggressive" => aggressive = true,
                    other => return Err(UsageError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Asmdb {
                file,
                out: out.ok_or_else(|| UsageError("asmdb requires --out FILE".into()))?,
                aggressive,
            })
        }
        "analyze" => {
            let mut file = None;
            let mut json = false;
            let mut coverage = false;
            let mut predict_vs = None;
            let mut threshold = None;
            while let Some(a) = it.next() {
                match a {
                    "--json" => json = true,
                    "--coverage" => coverage = true,
                    "--predict-vs" => {
                        predict_vs = Some(take_value(&mut it, a)?.to_string());
                    }
                    "--threshold" => {
                        let v = take_value(&mut it, a)?;
                        threshold =
                            Some(swip_analyze::DivergenceThreshold::parse(v).map_err(UsageError)?);
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown flag {flag}")))
                    }
                    f => {
                        if file.replace(f.to_string()).is_some() {
                            return Err(UsageError("analyze takes exactly one trace file".into()));
                        }
                    }
                }
            }
            match (&file, &predict_vs) {
                (None, None) => {
                    return Err(UsageError(
                        "analyze requires a trace file or --predict-vs REPORT".into(),
                    ))
                }
                (Some(_), Some(_)) => {
                    return Err(UsageError(
                        "analyze takes either a trace file or --predict-vs, not both".into(),
                    ))
                }
                _ => {}
            }
            if threshold.is_some() && predict_vs.is_none() {
                return Err(UsageError("--threshold requires --predict-vs".into()));
            }
            if coverage && predict_vs.is_some() {
                return Err(UsageError(
                    "--coverage applies to trace analysis, not --predict-vs".into(),
                ));
            }
            Ok(Command::Analyze {
                file,
                json,
                coverage,
                predict_vs,
                threshold: threshold.unwrap_or_default(),
            })
        }
        "bench" => {
            let mut figure = "all".to_string();
            let mut prefetchers = Vec::new();
            let mut instructions = 300_000u64;
            let mut stride = 1usize;
            let mut threads = None;
            let mut asmdb = swip_bench::AsmdbTuning::Default;
            let mut cache_dir = None;
            let mut measure = false;
            while let Some(a) = it.next() {
                match a {
                    "--figure" => figure = take_value(&mut it, a)?.to_string(),
                    "--prefetcher" => {
                        let v = take_value(&mut it, a)?;
                        prefetchers.push(
                            swip_types::PrefetcherId::from_label(v)
                                .map_err(|e| UsageError(e.to_string()))?,
                        );
                    }
                    "--instructions" => instructions = parse_num(take_value(&mut it, a)?)?,
                    "--stride" => stride = parse_num(take_value(&mut it, a)?)? as usize,
                    "--threads" => threads = Some(parse_num(take_value(&mut it, a)?)? as usize),
                    "--asmdb" => {
                        let v = take_value(&mut it, a)?;
                        asmdb = swip_bench::AsmdbTuning::parse(v)
                            .ok_or_else(|| UsageError(format!("unknown asmdb tuning {v}")))?;
                    }
                    "--cache-dir" => cache_dir = Some(take_value(&mut it, a)?.to_string()),
                    "--measure" => measure = true,
                    other => return Err(UsageError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Bench {
                figure,
                prefetchers,
                instructions,
                stride,
                threads,
                asmdb,
                cache_dir,
                measure,
            })
        }
        "report" => {
            let mut diff = false;
            let mut migrate = None;
            let mut check = None;
            let mut threshold = None;
            let mut files = Vec::new();
            while let Some(a) = it.next() {
                match a {
                    "--diff" => diff = true,
                    "--migrate-history" => {
                        migrate = Some(take_value(&mut it, a)?.to_string());
                    }
                    "--check-regression" => {
                        check = Some(take_value(&mut it, a)?.to_string());
                    }
                    "--threshold" => {
                        threshold = Some(parse_float(take_value(&mut it, a)?)?);
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown flag {flag}")))
                    }
                    file => files.push(file.to_string()),
                }
            }
            let exclusive = diff as usize + migrate.is_some() as usize + check.is_some() as usize;
            if exclusive > 1 {
                return Err(UsageError(
                    "--diff, --migrate-history, and --check-regression are mutually \
                     exclusive"
                        .into(),
                ));
            }
            if threshold.is_some() && check.is_none() {
                return Err(UsageError("--threshold requires --check-regression".into()));
            }
            if let Some(file) = migrate {
                if !files.is_empty() {
                    return Err(UsageError(
                        "report --migrate-history takes exactly one FILE".into(),
                    ));
                }
                return Ok(Command::MigrateHistory { file });
            }
            if let Some(file) = check {
                if !files.is_empty() {
                    return Err(UsageError(
                        "report --check-regression takes exactly one FILE".into(),
                    ));
                }
                let threshold = threshold.unwrap_or(25.0);
                // NaN must fail too, so the finite check is explicit.
                if !threshold.is_finite() || threshold <= 0.0 {
                    return Err(UsageError("--threshold must be positive".into()));
                }
                return Ok(Command::CheckRegression { file, threshold });
            }
            match (diff, files.len()) {
                (false, 1) | (true, 2) => Ok(Command::Report { files }),
                (false, _) => Err(UsageError("report requires exactly one FILE".into())),
                (true, _) => Err(UsageError(
                    "report --diff requires exactly two FILEs".into(),
                )),
            }
        }
        "fleet" => {
            match it.next() {
                Some("run") => {}
                Some(other) => {
                    return Err(UsageError(format!(
                        "unknown fleet subcommand {other} (expected run)"
                    )))
                }
                None => return Err(UsageError("fleet requires a subcommand (run)".into())),
            }
            let mut workers = Vec::new();
            let mut offline = false;
            let mut instructions = 300_000u64;
            let mut stride = 1usize;
            let mut workloads = Vec::new();
            let mut configs = Vec::new();
            let mut prefetchers = Vec::new();
            let mut job_threads = None;
            let mut out = None;
            let mut cache_dir = None;
            let mut shard_timeout = 120u64;
            let mut retries = 3u32;
            while let Some(a) = it.next() {
                match a {
                    "--worker" => workers.push(take_value(&mut it, a)?.to_string()),
                    "--offline" => offline = true,
                    "--instructions" => instructions = parse_num(take_value(&mut it, a)?)?,
                    "--stride" => stride = parse_num(take_value(&mut it, a)?)? as usize,
                    "--workload" => workloads.push(take_value(&mut it, a)?.to_string()),
                    "--config" => configs.push(take_value(&mut it, a)?.to_string()),
                    "--prefetcher" => prefetchers.push(take_value(&mut it, a)?.to_string()),
                    "--job-threads" => {
                        job_threads = Some(parse_num(take_value(&mut it, a)?)? as usize);
                    }
                    "--out" => out = Some(take_value(&mut it, a)?.to_string()),
                    "--cache-dir" => cache_dir = Some(take_value(&mut it, a)?.to_string()),
                    "--shard-timeout" => shard_timeout = parse_num(take_value(&mut it, a)?)?,
                    "--retries" => retries = parse_num(take_value(&mut it, a)?)? as u32,
                    other => return Err(UsageError(format!("unknown flag {other}"))),
                }
            }
            if offline && !workers.is_empty() {
                return Err(UsageError(
                    "--offline and --worker are mutually exclusive".into(),
                ));
            }
            if !offline && workers.is_empty() {
                return Err(UsageError(
                    "fleet run requires at least one --worker (or --offline)".into(),
                ));
            }
            if shard_timeout == 0 {
                return Err(UsageError("--shard-timeout must be positive".into()));
            }
            if retries == 0 {
                return Err(UsageError("--retries must be positive".into()));
            }
            Ok(Command::Fleet {
                workers,
                offline,
                instructions,
                stride,
                workloads,
                configs,
                prefetchers,
                job_threads,
                out,
                cache_dir,
                shard_timeout,
                retries,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:8080".to_string();
            let mut workers = 2usize;
            let mut queue_depth = 16usize;
            let mut max_conns = 256usize;
            let mut keep_alive_timeout = 5u64;
            let mut instructions = 300_000u64;
            let mut stride = 1usize;
            let mut job_threads = None;
            let mut cache_dir = None;
            while let Some(a) = it.next() {
                match a {
                    "--addr" => addr = take_value(&mut it, a)?.to_string(),
                    "--workers" => workers = parse_num(take_value(&mut it, a)?)? as usize,
                    "--queue-depth" => {
                        queue_depth = parse_num(take_value(&mut it, a)?)? as usize;
                    }
                    "--max-conns" => {
                        max_conns = parse_num(take_value(&mut it, a)?)? as usize;
                    }
                    "--keep-alive-timeout" => {
                        keep_alive_timeout = parse_num(take_value(&mut it, a)?)?;
                    }
                    "--instructions" => instructions = parse_num(take_value(&mut it, a)?)?,
                    "--stride" => stride = parse_num(take_value(&mut it, a)?)? as usize,
                    "--job-threads" => {
                        job_threads = Some(parse_num(take_value(&mut it, a)?)? as usize);
                    }
                    "--cache-dir" => cache_dir = Some(take_value(&mut it, a)?.to_string()),
                    other => return Err(UsageError(format!("unknown flag {other}"))),
                }
            }
            if workers == 0 {
                return Err(UsageError("--workers must be positive".into()));
            }
            if queue_depth == 0 {
                return Err(UsageError("--queue-depth must be positive".into()));
            }
            if max_conns == 0 {
                return Err(UsageError("--max-conns must be positive".into()));
            }
            if keep_alive_timeout == 0 {
                return Err(UsageError("--keep-alive-timeout must be positive".into()));
            }
            Ok(Command::Serve {
                addr,
                workers,
                queue_depth,
                max_conns,
                keep_alive_timeout,
                instructions,
                stride,
                job_threads,
                cache_dir,
            })
        }
        other => Err(UsageError(format!("unknown subcommand {other}"))),
    }
}

fn parse_num(s: &str) -> Result<u64, UsageError> {
    s.replace('_', "")
        .parse()
        .map_err(|_| UsageError(format!("not a number: {s}")))
}

fn parse_float(s: &str) -> Result<f64, UsageError> {
    s.parse()
        .map_err(|_| UsageError(format!("not a number: {s}")))
}

/// Executes a parsed command, writing human-readable output to stdout,
/// and returns the process exit code (0 except where a subcommand
/// defines nonzero codes, like `report --diff`'s `diff(1)` convention).
///
/// # Errors
///
/// Returns I/O or decode errors from trace files, and [`UsageError`] for
/// unknown workload names.
pub fn execute(cmd: Command) -> Result<u8, Box<dyn Error>> {
    match cmd {
        Command::Help => print!("{USAGE}"),
        Command::Suite { instructions } => {
            let suite = cvp1_suite(instructions);
            println!(
                "{:<20} {:>10} {:>10} {:>8}",
                "workload", "functions", "footprint", "family"
            );
            for s in suite {
                println!(
                    "{:<20} {:>10} {:>7} KiB {:>8?}",
                    s.name,
                    s.functions,
                    s.approx_footprint_kib(),
                    s.family
                );
            }
        }
        Command::Gen {
            workload,
            out,
            instructions,
        } => {
            let suite = cvp1_suite(instructions);
            let spec = match workload.parse::<usize>() {
                Ok(i) if i < suite.len() => suite[i].clone(),
                _ => suite
                    .into_iter()
                    .find(|s| s.name == workload)
                    .ok_or_else(|| UsageError(format!("unknown workload {workload}")))?,
            };
            let trace = generate(&spec);
            trace.write_to(File::create(&out)?)?;
            println!("wrote {} ({})", out, trace.summary());
        }
        Command::Inspect { file } => {
            let trace = Trace::read_from(File::open(&file)?)?;
            println!("{}: {}", trace.name(), trace.summary());
        }
        Command::Run {
            file,
            ftq,
            timeline,
            sample_stride,
        } => {
            let trace = Trace::read_from(File::open(&file)?)?;
            let mut config = SimConfig::sunny_cove_like().with_ftq_entries(ftq);
            if timeline.is_some() {
                config.timeline = Some(swip_core::TimelineConfig {
                    stride: sample_stride,
                    capacity: 1 << 20,
                });
            }
            // parse() already rejects --sample-stride 0, but embedders
            // reach execute() directly — keep the typed check on both
            // layers.
            config.validate()?;
            let report = Simulator::new(config).run(&trace);
            println!("{report}");
            if let Some(out) = timeline {
                let json = swip_report::to_chrome_trace(&report.timeline, sample_stride);
                std::fs::write(&out, json)?;
                println!(
                    "wrote {out}: {} timeline samples ({} dropped by the ring buffer)",
                    report.timeline.len(),
                    report.timeline_dropped
                );
            }
        }
        Command::Asmdb {
            file,
            out,
            aggressive,
        } => {
            let trace = Trace::read_from(File::open(&file)?)?;
            let config = if aggressive {
                AsmdbConfig::aggressive()
            } else {
                AsmdbConfig::default()
            };
            let result = Asmdb::new(config).run(&trace, &SimConfig::conservative());
            result.rewritten.write_to(File::create(&out)?)?;
            println!(
                "wrote {out}: {} insertions, static bloat {:.2}%, dynamic bloat {:.2}%",
                result.plan.len(),
                result.report.static_bloat * 100.0,
                result.report.dynamic_bloat * 100.0
            );
        }
        Command::Analyze {
            file,
            json,
            coverage,
            predict_vs,
            threshold,
        } => {
            // diff(1)-style exit codes, matching `swip report --diff`:
            // 0 clean, 1 diagnostics/divergence found, 2 unreadable input.
            if let Some(path) = predict_vs {
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: could not read {path}: {e}");
                        return Ok(2);
                    }
                };
                let report = match swip_report::RunReport::from_json_str(&text) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return Ok(2);
                    }
                };
                let diff = match swip_analyze::PredictionDiff::against(&report, threshold) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return Ok(2);
                    }
                };
                println!("{diff}");
                if !diff.is_clean() {
                    return Ok(1);
                }
            } else {
                let file = file.expect("parse() guarantees a file without --predict-vs");
                let handle = match File::open(&file) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("error: could not read {file}: {e}");
                        return Ok(2);
                    }
                };
                let options = swip_analyze::AnalyzeOptions {
                    coverage,
                    ..Default::default()
                };
                let report = swip_analyze::analyze_read_with(handle, &file, &options);
                if json {
                    println!("{}", report.to_json());
                } else {
                    println!("{report}");
                }
                if report.families == ["decode"] && report.has_errors() {
                    return Ok(2); // the bytes never decoded into a trace
                }
                if report.has_errors() {
                    return Ok(1);
                }
            }
        }
        Command::Bench {
            figure,
            prefetchers,
            instructions,
            stride,
            threads,
            asmdb,
            cache_dir,
            measure,
        } => {
            let mut builder = swip_bench::SessionBuilder::new()
                .instructions(instructions)
                .stride(stride)
                .tuning(asmdb);
            if let Some(t) = threads {
                builder = builder.threads(t);
            }
            if let Some(dir) = cache_dir {
                builder = builder.cache_dir(dir);
            }
            let session = builder.build()?;
            if measure {
                let report = swip_bench::measure_throughput(&session);
                let (path, entries) =
                    swip_bench::append_measurement(&report, swip_bench::measure::THROUGHPUT_FILE)?;
                println!(
                    "appended entry {entries} to {}: {} instrs in {:.3} s \
                     ({:.0} instrs/s aggregate)",
                    path.display(),
                    report.total_instructions,
                    report.total_seconds,
                    report.total_instrs_per_sec()
                );
            } else if !prefetchers.is_empty() {
                swip_bench::figures::run_prefetcher_sweep(&session, &prefetchers)?;
            } else {
                swip_bench::figures::run_figure(&session, &figure)?;
            }
        }
        Command::Report { files } => {
            let load = |path: &str| -> Result<swip_report::RunReport, Box<dyn Error>> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| UsageError(format!("could not read {path}: {e}")))?;
                Ok(swip_report::RunReport::from_json_str(&text)
                    .map_err(|e| UsageError(format!("{path}: {e}")))?)
            };
            match files.as_slice() {
                [file] => {
                    // `swip report` also summarizes throughput reports
                    // (`swip bench --measure`); sniff the `kind` tag via
                    // the shared JSON parser before assuming a run report.
                    let text = std::fs::read_to_string(file)
                        .map_err(|e| UsageError(format!("could not read {file}: {e}")))?;
                    let sniff = swip_report::Json::parse(&text)
                        .map_err(|e| UsageError(format!("{file}: {e}")))?;
                    if swip_bench::ThroughputHistory::is_history_json(&sniff) {
                        let history = swip_bench::ThroughputHistory::from_json(&sniff)
                            .map_err(|e| UsageError(format!("{file}: {e}")))?;
                        print!("{}", history.summary());
                        match history.latest() {
                            Some(latest) if latest.total_instrs_per_sec() > 0.0 => {}
                            _ => {
                                return Err(Box::new(UsageError(format!(
                                    "{file}: throughput history is empty or has zero instrs/sec"
                                ))))
                            }
                        }
                    } else if swip_bench::ThroughputReport::is_throughput_json(&sniff) {
                        let tp = swip_bench::ThroughputReport::from_json(&sniff)
                            .map_err(|e| UsageError(format!("{file}: {e}")))?;
                        print!("{}", tp.summary());
                        if tp.total_instrs_per_sec() <= 0.0 {
                            return Err(Box::new(UsageError(format!(
                                "{file}: throughput report has zero instrs/sec"
                            ))));
                        }
                    } else {
                        print!("{}", load(file)?.summary());
                    }
                }
                [a, b] => {
                    // diff(1) exit convention: unreadable/unparsable
                    // input is 2, a real difference is 1.
                    let (ra, rb) = match (load(a), load(b)) {
                        (Ok(ra), Ok(rb)) => (ra, rb),
                        (Err(e), _) | (_, Err(e)) => {
                            eprintln!("error: {e}");
                            return Ok(2);
                        }
                    };
                    let diff = swip_report::ReportDiff::between(&ra, &rb);
                    print!("{}", diff.render());
                    if !diff.is_clean() {
                        return Ok(1);
                    }
                }
                _ => unreachable!("parse() enforces one or two files"),
            }
        }
        Command::MigrateHistory { file } => match swip_bench::migrate_history_file(&file) {
            Ok((entries, true)) => {
                println!("migrated {file} to history schema v2 ({entries} entries)");
            }
            Ok((entries, false)) => {
                println!("{file} is already a schema-v2 history ({entries} entries)");
            }
            Err(e) => {
                eprintln!("error: could not migrate {file}: {e}");
                return Ok(2);
            }
        },
        Command::CheckRegression { file, threshold } => {
            // diff(1)-style exit codes: 0 clean, 1 regression, 2
            // unreadable — check.sh gates on this.
            let text = match std::fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: could not read {file}: {e}");
                    return Ok(2);
                }
            };
            let history = match swip_report::Json::parse(&text)
                .map_err(|e| e.to_string())
                .and_then(|json| swip_bench::ThroughputHistory::from_json(&json))
            {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: {file}: {e}");
                    return Ok(2);
                }
            };
            let regressions = history.regressions(threshold);
            if regressions.is_empty() {
                println!(
                    "{file}: no per-config regression above {threshold}% \
                     ({} entries)",
                    history.entries.len()
                );
            } else {
                for r in &regressions {
                    println!("regression: {r}");
                }
                return Ok(1);
            }
        }
        Command::Fleet {
            workers,
            offline,
            instructions,
            stride,
            workloads,
            configs,
            prefetchers,
            job_threads,
            out,
            cache_dir,
            shard_timeout,
            retries,
        } => {
            let spec = swip_report::PlanSpec {
                workloads,
                configs,
                insertions: Vec::new(),
                prefetchers,
            };
            let mut builder = swip_bench::SessionBuilder::new()
                .instructions(instructions)
                .stride(stride);
            if let Some(t) = job_threads {
                builder = builder.threads(t);
            }
            if let Some(dir) = &cache_dir {
                builder = builder.cache_dir(dir.clone());
            }
            let session = builder.build()?;
            let plan = swip_bench::ExperimentPlan::from_spec(&spec, &session.workloads())?;
            let report = if offline {
                let results = session.run(&plan)?;
                swip_bench::build_plan_report(&session, &results)
            } else {
                if cache_dir.is_some() {
                    let warm = swip_fleet::warm_workers(&session, &plan, &workers);
                    println!(
                        "cache shipping: {} shipped, {} already warm, {} skipped, \
                         {} failed",
                        warm.shipped, warm.already_warm, warm.skipped, warm.failed
                    );
                }
                let config = swip_fleet::FleetConfig {
                    workers,
                    shard_timeout: std::time::Duration::from_secs(shard_timeout),
                    max_attempts: retries,
                    ..swip_fleet::FleetConfig::default()
                };
                let run = swip_fleet::run_plan(&plan, &config)?;
                for w in &run.stats.workers {
                    println!(
                        "worker {}: {} shards{}",
                        w.addr,
                        w.shards_done,
                        if w.dead { " (died mid-sweep)" } else { "" }
                    );
                }
                println!(
                    "fleet: {} shards, {} re-dispatched after worker death, \
                     {} retried",
                    run.stats.shards, run.stats.redispatches, run.stats.retries
                );
                run.report
            };
            match out {
                Some(path) => {
                    std::fs::write(&path, report.to_json())?;
                    println!("wrote {path}");
                }
                None => print!("{}", report.summary()),
            }
        }
        Command::Serve {
            addr,
            workers,
            queue_depth,
            max_conns,
            keep_alive_timeout,
            instructions,
            stride,
            job_threads,
            cache_dir,
        } => {
            let mut builder = swip_bench::SessionBuilder::new()
                .instructions(instructions)
                .stride(stride);
            if let Some(t) = job_threads {
                builder = builder.threads(t);
            }
            if let Some(dir) = cache_dir {
                builder = builder.cache_dir(dir);
            }
            let session = builder.build()?;
            let config = swip_serve::ServeConfig {
                addr,
                workers,
                queue_depth,
                max_conns,
                keep_alive_timeout: std::time::Duration::from_secs(keep_alive_timeout),
                ..swip_serve::ServeConfig::default()
            };
            let server = swip_serve::Server::bind(&config, session)?;
            // Scripts scrape this line to learn the picked port.
            println!("listening on {}", server.local_addr());
            server.run()?;
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_subcommand() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["help"]), Ok(Command::Help));
        assert_eq!(
            parse(&["suite", "--instructions", "50_000"]),
            Ok(Command::Suite {
                instructions: 50_000
            })
        );
        assert_eq!(
            parse(&["gen", "secret_srv12", "--out", "x.swip"]),
            Ok(Command::Gen {
                workload: "secret_srv12".into(),
                out: "x.swip".into(),
                instructions: 300_000
            })
        );
        assert_eq!(
            parse(&["inspect", "x.swip"]),
            Ok(Command::Inspect {
                file: "x.swip".into()
            })
        );
        assert_eq!(
            parse(&["run", "x.swip", "--ftq", "8"]),
            Ok(Command::Run {
                file: "x.swip".into(),
                ftq: 8,
                timeline: None,
                sample_stride: 64
            })
        );
        assert_eq!(
            parse(&["run", "x.swip", "--conservative"]),
            Ok(Command::Run {
                file: "x.swip".into(),
                ftq: 2,
                timeline: None,
                sample_stride: 64
            })
        );
        assert_eq!(
            parse(&[
                "run",
                "x.swip",
                "--timeline",
                "trace.json",
                "--sample-stride",
                "16"
            ]),
            Ok(Command::Run {
                file: "x.swip".into(),
                ftq: 24,
                timeline: Some("trace.json".into()),
                sample_stride: 16
            })
        );
        assert_eq!(
            parse(&["report", "a.json"]),
            Ok(Command::Report {
                files: vec!["a.json".into()]
            })
        );
        assert_eq!(
            parse(&["report", "--diff", "a.json", "b.json"]),
            Ok(Command::Report {
                files: vec!["a.json".into(), "b.json".into()]
            })
        );
        assert_eq!(
            parse(&["serve"]),
            Ok(Command::Serve {
                addr: "127.0.0.1:8080".into(),
                workers: 2,
                queue_depth: 16,
                max_conns: 256,
                keep_alive_timeout: 5,
                instructions: 300_000,
                stride: 1,
                job_threads: None,
                cache_dir: None
            })
        );
        assert_eq!(
            parse(&[
                "serve",
                "--addr",
                "0.0.0.0:9999",
                "--workers",
                "4",
                "--queue-depth",
                "8",
                "--max-conns",
                "64",
                "--keep-alive-timeout",
                "2",
                "--instructions",
                "20_000",
                "--stride",
                "24",
                "--job-threads",
                "2",
                "--cache-dir",
                "/tmp/swip-cache"
            ]),
            Ok(Command::Serve {
                addr: "0.0.0.0:9999".into(),
                workers: 4,
                queue_depth: 8,
                max_conns: 64,
                keep_alive_timeout: 2,
                instructions: 20_000,
                stride: 24,
                job_threads: Some(2),
                cache_dir: Some("/tmp/swip-cache".into())
            })
        );
        assert_eq!(
            parse(&["asmdb", "x.swip", "--out", "y.swip", "--aggressive"]),
            Ok(Command::Asmdb {
                file: "x.swip".into(),
                out: "y.swip".into(),
                aggressive: true
            })
        );
        assert_eq!(
            parse(&["analyze", "x.swip"]),
            Ok(Command::Analyze {
                file: Some("x.swip".into()),
                json: false,
                coverage: false,
                predict_vs: None,
                threshold: swip_analyze::DivergenceThreshold::default(),
            })
        );
        assert_eq!(
            parse(&["analyze", "x.swip", "--json", "--coverage"]),
            Ok(Command::Analyze {
                file: Some("x.swip".into()),
                json: true,
                coverage: true,
                predict_vs: None,
                threshold: swip_analyze::DivergenceThreshold::default(),
            })
        );
        assert_eq!(
            parse(&["analyze", "--predict-vs", "r.json", "--threshold", "0.5"]),
            Ok(Command::Analyze {
                file: None,
                json: false,
                coverage: false,
                predict_vs: Some("r.json".into()),
                threshold: swip_analyze::DivergenceThreshold(0.5),
            })
        );
        assert_eq!(
            parse(&["bench"]),
            Ok(Command::Bench {
                figure: "all".into(),
                prefetchers: vec![],
                instructions: 300_000,
                stride: 1,
                threads: None,
                asmdb: swip_bench::AsmdbTuning::Default,
                cache_dir: None,
                measure: false
            })
        );
        assert_eq!(
            parse(&[
                "bench",
                "--figure",
                "fig1",
                "--instructions",
                "20_000",
                "--stride",
                "16",
                "--threads",
                "4",
                "--asmdb",
                "wide",
                "--cache-dir",
                "/tmp/swip-cache"
            ]),
            Ok(Command::Bench {
                figure: "fig1".into(),
                prefetchers: vec![],
                instructions: 20_000,
                stride: 16,
                threads: Some(4),
                asmdb: swip_bench::AsmdbTuning::Wide,
                cache_dir: Some("/tmp/swip-cache".into()),
                measure: false
            })
        );
        assert_eq!(
            parse(&[
                "bench",
                "--measure",
                "--instructions",
                "2_000",
                "--stride",
                "24"
            ]),
            Ok(Command::Bench {
                figure: "all".into(),
                prefetchers: vec![],
                instructions: 2_000,
                stride: 24,
                threads: None,
                asmdb: swip_bench::AsmdbTuning::Default,
                cache_dir: None,
                measure: true
            })
        );
        // `--prefetcher` is repeatable, accepts dashes, and is validated
        // at parse time with the typed label error.
        assert_eq!(
            parse(&[
                "bench",
                "--prefetcher",
                "mana",
                "--prefetcher",
                "shadow-btb"
            ]),
            Ok(Command::Bench {
                figure: "all".into(),
                prefetchers: vec![
                    swip_types::PrefetcherId::Mana,
                    swip_types::PrefetcherId::ShadowBtb
                ],
                instructions: 300_000,
                stride: 1,
                threads: None,
                asmdb: swip_bench::AsmdbTuning::Default,
                cache_dir: None,
                measure: false
            })
        );
        let err = parse(&["bench", "--prefetcher", "markov"]).unwrap_err();
        assert!(err.0.contains("markov"), "{err}");
        assert!(err.0.contains("shadow_btb"), "{err}");
        assert_eq!(
            parse(&["report", "--migrate-history", "h.json"]),
            Ok(Command::MigrateHistory {
                file: "h.json".into()
            })
        );
        assert_eq!(
            parse(&["report", "--check-regression", "h.json"]),
            Ok(Command::CheckRegression {
                file: "h.json".into(),
                threshold: 25.0
            })
        );
        assert_eq!(
            parse(&[
                "report",
                "--check-regression",
                "h.json",
                "--threshold",
                "10.5"
            ]),
            Ok(Command::CheckRegression {
                file: "h.json".into(),
                threshold: 10.5
            })
        );
        assert_eq!(
            parse(&[
                "fleet",
                "run",
                "--worker",
                "127.0.0.1:1",
                "--worker",
                "127.0.0.1:2"
            ]),
            Ok(Command::Fleet {
                workers: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
                offline: false,
                instructions: 300_000,
                stride: 1,
                workloads: vec![],
                configs: vec![],
                prefetchers: vec![],
                job_threads: None,
                out: None,
                cache_dir: None,
                shard_timeout: 120,
                retries: 3
            })
        );
        assert_eq!(
            parse(&[
                "fleet",
                "run",
                "--offline",
                "--instructions",
                "20_000",
                "--stride",
                "16",
                "--workload",
                "secret_srv12",
                "--config",
                "ftq2_fdp",
                "--prefetcher",
                "mana",
                "--job-threads",
                "2",
                "--out",
                "merged.json",
                "--cache-dir",
                "/tmp/swip-cache",
                "--shard-timeout",
                "30",
                "--retries",
                "5"
            ]),
            Ok(Command::Fleet {
                workers: vec![],
                offline: true,
                instructions: 20_000,
                stride: 16,
                workloads: vec!["secret_srv12".into()],
                configs: vec!["ftq2_fdp".into()],
                prefetchers: vec!["mana".into()],
                job_threads: Some(2),
                out: Some("merged.json".into()),
                cache_dir: Some("/tmp/swip-cache".into()),
                shard_timeout: 30,
                retries: 5
            })
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["analyze"]).is_err());
        assert!(parse(&["analyze", "x", "--bogus"]).is_err());
        assert!(parse(&["analyze", "x", "y"]).is_err());
        assert!(parse(&["analyze", "x", "--predict-vs", "r.json"]).is_err());
        assert!(parse(&["analyze", "x", "--threshold", "0.5"]).is_err());
        assert!(parse(&["analyze", "--predict-vs", "r.json", "--threshold", "2"]).is_err());
        assert!(parse(&["analyze", "--predict-vs", "r.json", "--coverage"]).is_err());
        assert!(parse(&["run"]).is_err());
        assert!(parse(&["run", "x", "--ftq"]).is_err());
        assert!(parse(&["run", "x", "--ftq", "zero"]).is_err());
        assert!(parse(&["run", "x", "--ftq", "0"]).is_err());
        assert!(parse(&["gen", "w"]).is_err());
        assert!(parse(&["asmdb", "x"]).is_err());
        assert!(parse(&["suite", "--bogus"]).is_err());
        assert!(parse(&["bench", "--asmdb", "bogus"]).is_err());
        assert!(parse(&["bench", "--threads"]).is_err());
        assert!(parse(&["bench", "--bogus"]).is_err());
        assert!(parse(&["run", "x", "--sample-stride", "0"]).is_err());
        assert!(parse(&["report"]).is_err());
        assert!(parse(&["report", "a.json", "b.json"]).is_err());
        assert!(parse(&["report", "--diff", "a.json"]).is_err());
        assert!(parse(&["report", "--diff", "a", "b", "c"]).is_err());
        assert!(parse(&["report", "--bogus", "a.json"]).is_err());
        assert!(parse(&["serve", "--workers", "0"]).is_err());
        assert!(parse(&["serve", "--queue-depth", "0"]).is_err());
        assert!(parse(&["serve", "--max-conns", "0"]).is_err());
        assert!(parse(&["serve", "--keep-alive-timeout", "0"]).is_err());
        assert!(parse(&["serve", "--bogus"]).is_err());
        assert!(parse(&["report", "--diff", "--migrate-history", "h.json"]).is_err());
        assert!(parse(&["report", "--migrate-history", "h.json", "extra"]).is_err());
        assert!(parse(&["report", "--check-regression", "h.json", "x"]).is_err());
        assert!(parse(&["report", "--threshold", "10", "h.json"]).is_err());
        assert!(parse(&["report", "--check-regression", "h.json", "--threshold", "0"]).is_err());
        assert!(parse(&["fleet"]).is_err());
        assert!(parse(&["fleet", "stop"]).is_err());
        assert!(parse(&["fleet", "run"]).is_err());
        assert!(parse(&["fleet", "run", "--offline", "--worker", "a:1"]).is_err());
        assert!(parse(&["fleet", "run", "--offline", "--shard-timeout", "0"]).is_err());
        assert!(parse(&["fleet", "run", "--offline", "--retries", "0"]).is_err());
        assert!(parse(&["fleet", "run", "--offline", "--bogus"]).is_err());
    }

    #[test]
    fn bench_with_zero_knobs_is_a_build_error() {
        let err = execute(Command::Bench {
            figure: "fig8".into(),
            prefetchers: vec![],
            instructions: 1_000,
            stride: 0,
            threads: None,
            asmdb: swip_bench::AsmdbTuning::Default,
            cache_dir: None,
            measure: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("stride"), "{err}");
    }

    #[test]
    fn gen_run_inspect_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("swip_cli_test.swip").display().to_string();
        execute(Command::Gen {
            workload: "secret_crypto52".into(),
            out: path.clone(),
            instructions: 5_000,
        })
        .unwrap();
        execute(Command::Inspect { file: path.clone() }).unwrap();
        let trace_json = dir.join("swip_cli_test_trace.json").display().to_string();
        execute(Command::Run {
            file: path.clone(),
            ftq: 4,
            timeline: Some(trace_json.clone()),
            sample_stride: 32,
        })
        .unwrap();
        let text = std::fs::read_to_string(&trace_json).unwrap();
        assert!(text.contains("traceEvents"));
        let _ = std::fs::remove_file(&trace_json);
        assert_eq!(
            execute(Command::Analyze {
                file: Some(path.clone()),
                json: true,
                coverage: true,
                predict_vs: None,
                threshold: swip_analyze::DivergenceThreshold::default(),
            })
            .unwrap(),
            0
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_exit_codes_follow_diff_convention() {
        let analyze = |file: Option<String>, predict_vs: Option<String>| {
            execute(Command::Analyze {
                file,
                json: false,
                coverage: false,
                predict_vs,
                threshold: swip_analyze::DivergenceThreshold::default(),
            })
            .unwrap()
        };
        // Undecodable bytes and missing files are "unreadable input" → 2.
        let dir = std::env::temp_dir();
        let path = dir.join("swip_cli_corrupt.swip").display().to_string();
        std::fs::write(&path, b"not a trace").unwrap();
        assert_eq!(analyze(Some(path.clone()), None), 2);
        let _ = std::fs::remove_file(&path);
        assert_eq!(analyze(Some("/no/such/trace.swip".into()), None), 2);
        assert_eq!(analyze(None, Some("/no/such/report.json".into())), 2);
        // A decodable trace with error diagnostics → 1.
        let trace = swip_trace::Trace::from_instructions(
            "bad",
            vec![
                swip_types::Instruction::alu(swip_types::Addr::new(0x0)),
                swip_types::Instruction::alu(swip_types::Addr::new(0x900)),
            ],
        );
        let path = dir
            .join("swip_cli_discontinuous.swip")
            .display()
            .to_string();
        trace.write_to(File::create(&path).unwrap()).unwrap();
        assert_eq!(analyze(Some(path.clone()), None), 1);
        let _ = std::fs::remove_file(&path);
        // A report with nothing to compare → 2.
        let path = dir.join("swip_cli_nocov.json").display().to_string();
        let mut report = swip_report::RunReport::new("all", 1_000, 48, 1);
        report.seal();
        std::fs::write(&path, report.to_json()).unwrap();
        assert_eq!(analyze(None, Some(path.clone())), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_summary_and_diff_round_trip() {
        let dir = std::env::temp_dir();
        let a = dir.join("swip_cli_report_a.json").display().to_string();
        let b = dir.join("swip_cli_report_b.json").display().to_string();
        let mut report = swip_report::RunReport::new("all", 1_000, 48, 1);
        report.workloads.push(swip_report::WorkloadReport {
            name: "w".into(),
            job_seconds: 0.1,
            coverage: Vec::new(),
            configs: vec![swip_report::ConfigReport {
                config: "ftq2_fdp".into(),
                prefetcher: String::new(),
                counters: vec![("cycles".into(), 100)],
                values: vec![],
            }],
        });
        report.seal();
        std::fs::write(&a, report.to_json()).unwrap();
        report.workloads[0].configs[0].counters[0].1 = 90;
        std::fs::write(&b, report.to_json()).unwrap();

        assert_eq!(
            execute(Command::Report {
                files: vec![a.clone()],
            })
            .unwrap(),
            0
        );
        // diff(1) codes: identical → 0, different → 1, unreadable → 2.
        assert_eq!(
            execute(Command::Report {
                files: vec![a.clone(), a.clone()],
            })
            .unwrap(),
            0
        );
        assert_eq!(
            execute(Command::Report {
                files: vec![a.clone(), b.clone()],
            })
            .unwrap(),
            1
        );
        assert_eq!(
            execute(Command::Report {
                files: vec![a.clone(), "/no/such/report.json".into()],
            })
            .unwrap(),
            2
        );
        std::fs::write(&b, "{}").unwrap();
        assert_eq!(
            execute(Command::Report {
                files: vec![a.clone(), b.clone()],
            })
            .unwrap(),
            2
        );
        // A malformed file is a readable error for the summary form too,
        // not a panic.
        let err = execute(Command::Report {
            files: vec![b.clone()],
        })
        .unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn report_summarizes_throughput_json() {
        let dir = std::env::temp_dir();
        let path = dir.join("swip_cli_throughput.json").display().to_string();
        std::fs::write(
            &path,
            r#"{"version": 1, "kind": "swip-throughput", "instructions": 2000,
                "stride": 24, "workloads": 2,
                "configs": [{"config": "ftq2_fdp", "instructions": 4000,
                             "cycles": 9000, "seconds": 0.01,
                             "instrs_per_sec": 400000.0}],
                "total_instructions": 4000, "total_seconds": 0.01,
                "total_instrs_per_sec": 400000.0}"#,
        )
        .unwrap();
        assert_eq!(
            execute(Command::Report {
                files: vec![path.clone()],
            })
            .unwrap(),
            0
        );
        // A throughput report that claims zero instrs/sec is an error,
        // not a quiet success — check.sh depends on this.
        std::fs::write(
            &path,
            r#"{"version": 1, "kind": "swip-throughput", "instructions": 2000,
                "stride": 24, "workloads": 2, "configs": [],
                "total_instructions": 0, "total_seconds": 0.0,
                "total_instrs_per_sec": 0.0}"#,
        )
        .unwrap();
        let err = execute(Command::Report {
            files: vec![path.clone()],
        })
        .unwrap_err();
        assert!(err.to_string().contains("zero instrs/sec"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn history_migration_and_regression_gate_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("swip_cli_history.json").display().to_string();
        // Unreadable / unparsable → 2.
        assert_eq!(
            execute(Command::MigrateHistory {
                file: "/no/such/history.json".into()
            })
            .unwrap(),
            2
        );
        assert_eq!(
            execute(Command::CheckRegression {
                file: "/no/such/history.json".into(),
                threshold: 25.0
            })
            .unwrap(),
            2
        );
        std::fs::write(&path, "{}").unwrap();
        assert_eq!(
            execute(Command::CheckRegression {
                file: path.clone(),
                threshold: 25.0
            })
            .unwrap(),
            2
        );
        // A bare v1 report migrates in place; a second migrate is a no-op;
        // a single-entry history has nothing to regress against.
        std::fs::write(
            &path,
            r#"{"version": 1, "kind": "swip-throughput", "instructions": 2000,
                "stride": 24, "workloads": 2,
                "configs": [{"config": "ftq2_fdp", "instructions": 4000,
                             "cycles": 9000, "seconds": 0.01,
                             "instrs_per_sec": 400000.0}],
                "total_instructions": 4000, "total_seconds": 0.01,
                "total_instrs_per_sec": 400000.0}"#,
        )
        .unwrap();
        assert_eq!(
            execute(Command::MigrateHistory { file: path.clone() }).unwrap(),
            0
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("swip-throughput-history"), "{text}");
        assert_eq!(
            execute(Command::MigrateHistory { file: path.clone() }).unwrap(),
            0
        );
        assert_eq!(
            execute(Command::CheckRegression {
                file: path.clone(),
                threshold: 25.0
            })
            .unwrap(),
            0
        );
        // Append a 50%-slower entry: 25% gate trips (exit 1), a looser
        // 60% gate does not.
        let json = swip_report::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let mut history = swip_bench::ThroughputHistory::from_json(&json).unwrap();
        let mut slower = history.entries[0].clone();
        slower.configs[0].instrs_per_sec = 200_000.0;
        history.entries.push(slower);
        std::fs::write(&path, history.to_json().render_pretty()).unwrap();
        assert_eq!(
            execute(Command::CheckRegression {
                file: path.clone(),
                threshold: 25.0
            })
            .unwrap(),
            1
        );
        assert_eq!(
            execute(Command::CheckRegression {
                file: path.clone(),
                threshold: 60.0
            })
            .unwrap(),
            0
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fleet_offline_writes_a_plan_report() {
        let dir = std::env::temp_dir();
        let out = dir
            .join("swip_cli_fleet_offline.json")
            .display()
            .to_string();
        execute(Command::Fleet {
            workers: vec![],
            offline: true,
            instructions: 2_000,
            stride: 48,
            workloads: vec![],
            configs: vec!["ftq2_fdp".into()],
            prefetchers: vec![],
            job_threads: Some(1),
            out: Some(out.clone()),
            cache_dir: None,
            shard_timeout: 120,
            retries: 3,
        })
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let report = swip_report::RunReport::from_json_str(&text).unwrap();
        assert_eq!(report.figure, "plan");
        assert_eq!(report.workloads.len(), 1);
        let _ = std::fs::remove_file(&out);
        // An unknown config label is a typed plan-admission error.
        let err = execute(Command::Fleet {
            workers: vec![],
            offline: true,
            instructions: 2_000,
            stride: 48,
            workloads: vec![],
            configs: vec!["turbo".into()],
            prefetchers: vec![],
            job_threads: Some(1),
            out: None,
            cache_dir: None,
            shard_timeout: 120,
            retries: 3,
        })
        .unwrap_err();
        assert!(err.to_string().contains("turbo"), "{err}");
    }

    #[test]
    fn unknown_workload_is_a_usage_error() {
        let err = execute(Command::Gen {
            workload: "nope".into(),
            out: "/dev/null".into(),
            instructions: 1_000,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown workload"));
    }
}
