//! The in-memory trace container.

use std::fmt;
use std::io::{Read, Write};
use std::slice;

use swip_types::Instruction;

use crate::codec;
use crate::codec::DecodeError;
use crate::summary::TraceSummary;

/// A named sequence of dynamic instructions.
///
/// A `Trace` plays the role of a CVP-1 trace file: a recorded dynamic
/// instruction stream that the simulator replays. Traces are immutable once
/// built (use [`crate::TraceBuilder`] or [`Trace::from_instructions`]); the
/// AsmDB rewriting pipeline produces *new* traces rather than mutating.
///
/// # Examples
///
/// ```
/// use swip_types::{Addr, Instruction};
/// use swip_trace::Trace;
///
/// let t = Trace::from_instructions("t", vec![Instruction::alu(Addr::new(0))]);
/// assert_eq!(t.name(), "t");
/// assert!(!t.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    name: String,
    instrs: Vec<Instruction>,
}

impl Trace {
    /// Creates a trace from a vector of instructions.
    pub fn from_instructions(name: impl Into<String>, instrs: Vec<Instruction>) -> Self {
        Trace {
            name: name.into(),
            instrs,
        }
    }

    /// The trace's workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions as a slice.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// Consumes the trace, returning the instruction vector.
    pub fn into_instructions(self) -> Vec<Instruction> {
        self.instrs
    }

    /// Computes mix/footprint statistics for this trace.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::of(self)
    }

    /// Returns a copy truncated to at most `n` instructions.
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            name: self.name.clone(),
            instrs: self.instrs[..self.instrs.len().min(n)].to_vec(),
        }
    }

    /// Serializes the trace to a writer in the `SWIP` binary format.
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised by `w`.
    pub fn write_to<W: Write>(&self, w: W) -> std::io::Result<()> {
        codec::encode(self, w)
    }

    /// Deserializes a trace previously written with [`Trace::write_to`].
    ///
    /// Readers can pass `&mut reader` thanks to the blanket `Read` impl for
    /// mutable references.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input or I/O failure.
    pub fn read_from<R: Read>(r: R) -> Result<Trace, DecodeError> {
        codec::decode(r)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} instructions)", self.name, self.instrs.len())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Instruction;
    type IntoIter = slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Instruction;
    type IntoIter = std::vec::IntoIter<Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_types::Addr;

    fn sample() -> Trace {
        Trace::from_instructions(
            "sample",
            vec![
                Instruction::alu(Addr::new(0x0)),
                Instruction::load(Addr::new(0x4), Addr::new(0x9000)),
                Instruction::cond_branch(Addr::new(0x8), Addr::new(0x0), true),
            ],
        )
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.name(), "sample");
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.instructions()[1].pc, Addr::new(0x4));
    }

    #[test]
    fn truncation() {
        let t = sample();
        assert_eq!(t.truncated(2).len(), 2);
        assert_eq!(t.truncated(100).len(), 3);
        assert_eq!(t.truncated(0).len(), 0);
    }

    #[test]
    fn iteration_orders_match() {
        let t = sample();
        let by_ref: Vec<_> = (&t).into_iter().cloned().collect();
        let by_val: Vec<_> = t.clone().into_iter().collect();
        assert_eq!(by_ref, by_val);
        assert_eq!(by_ref, t.into_instructions());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", sample()), "sample (3 instructions)");
    }
}
