//! Binary encode/decode for [`Trace`] in the `SWIP` container format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"SWIP"
//! version u32     = 1
//! namelen u32, name utf-8 bytes
//! count   u64
//! count × instruction records:
//!   pc   u64
//!   size u8
//!   tag  u8            (kind discriminant, see below)
//!   payload            (kind-specific, see below)
//!   srcmask u8         (bit i set => srcs[i] present), then present src bytes
//!   dst  u8            (0xff = none)
//! ```
//!
//! Kind tags: 0 = Alu; 1 = Load(addr u64); 2 = Store(addr u64);
//! 3 = Branch(kind u8, target u64, taken u8); 4 = PrefetchI(target u64).

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use swip_types::{Addr, BranchKind, InstrKind, Instruction, Reg};

use crate::Trace;

const MAGIC: [u8; 4] = *b"SWIP";
const VERSION: u32 = 1;
const NO_REG: u8 = 0xff;

/// Errors produced while decoding a `SWIP` trace.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying reader failed.
    Io(io::Error),
    /// The stream does not start with the `SWIP` magic.
    BadMagic([u8; 4]),
    /// The container version is not supported by this build.
    UnsupportedVersion(u32),
    /// The trace name is not valid UTF-8.
    BadName,
    /// An instruction record carried an unknown kind or branch tag.
    BadTag(u8),
    /// A register byte was out of range.
    BadRegister(u8),
    /// A declared length is implausibly large for the remaining input.
    BadLength(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o error while decoding trace: {e}"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}, not a SWIP trace"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::BadName => write!(f, "trace name is not valid utf-8"),
            DecodeError::BadTag(t) => write!(f, "unknown instruction tag {t}"),
            DecodeError::BadRegister(r) => write!(f, "register byte {r} out of range"),
            DecodeError::BadLength(n) => write!(f, "implausible length field {n}"),
        }
    }
}

impl Error for DecodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

fn branch_kind_tag(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::CondDirect => 0,
        BranchKind::UncondDirect => 1,
        BranchKind::IndirectJump => 2,
        BranchKind::DirectCall => 3,
        BranchKind::IndirectCall => 4,
        BranchKind::Return => 5,
    }
}

fn branch_kind_from_tag(tag: u8) -> Result<BranchKind, DecodeError> {
    Ok(match tag {
        0 => BranchKind::CondDirect,
        1 => BranchKind::UncondDirect,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::DirectCall,
        4 => BranchKind::IndirectCall,
        5 => BranchKind::Return,
        t => return Err(DecodeError::BadTag(t)),
    })
}

pub(crate) fn encode<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    // Records are a handful of bytes each; buffer here so callers can pass
    // a bare `File` without paying one syscall per field.
    let mut w = io::BufWriter::with_capacity(1 << 16, w);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for instr in trace.iter() {
        encode_instr(instr, &mut w)?;
    }
    w.flush()?;
    Ok(())
}

fn encode_instr<W: Write>(i: &Instruction, w: &mut W) -> io::Result<()> {
    w.write_all(&i.pc.raw().to_le_bytes())?;
    w.write_all(&[i.size])?;
    match i.kind {
        InstrKind::Alu => w.write_all(&[0u8])?,
        InstrKind::Load { addr } => {
            w.write_all(&[1u8])?;
            w.write_all(&addr.raw().to_le_bytes())?;
        }
        InstrKind::Store { addr } => {
            w.write_all(&[2u8])?;
            w.write_all(&addr.raw().to_le_bytes())?;
        }
        InstrKind::Branch {
            kind,
            target,
            taken,
        } => {
            w.write_all(&[3u8, branch_kind_tag(kind)])?;
            w.write_all(&target.raw().to_le_bytes())?;
            w.write_all(&[taken as u8])?;
        }
        InstrKind::PrefetchI { target } => {
            w.write_all(&[4u8])?;
            w.write_all(&target.raw().to_le_bytes())?;
        }
    }
    let mut mask = 0u8;
    for (bit, src) in i.srcs.iter().enumerate() {
        if src.is_some() {
            mask |= 1 << bit;
        }
    }
    w.write_all(&[mask])?;
    for src in i.srcs.iter().flatten() {
        w.write_all(&[src.index() as u8])?;
    }
    w.write_all(&[i.dst.map_or(NO_REG, |r| r.index() as u8)])?;
    Ok(())
}

pub(crate) fn decode<R: Read>(r: R) -> Result<Trace, DecodeError> {
    // Same story as `encode`: per-field `read_exact` on an unbuffered
    // `File` costs one syscall per few bytes, which dominates decode.
    let mut r = io::BufReader::with_capacity(1 << 16, r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let name_len = read_u32(&mut r)? as usize;
    if name_len > 1 << 20 {
        return Err(DecodeError::BadLength(name_len as u64));
    }
    let mut name_bytes = vec![0u8; name_len];
    r.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes).map_err(|_| DecodeError::BadName)?;
    let count = read_u64(&mut r)?;
    if count > 1 << 40 {
        return Err(DecodeError::BadLength(count));
    }
    let mut instrs = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        instrs.push(decode_instr(&mut r)?);
    }
    Ok(Trace::from_instructions(name, instrs))
}

fn decode_instr<R: Read>(r: &mut R) -> Result<Instruction, DecodeError> {
    let pc = Addr::new(read_u64(r)?);
    let size = read_u8(r)?;
    let tag = read_u8(r)?;
    let kind = match tag {
        0 => InstrKind::Alu,
        1 => InstrKind::Load {
            addr: Addr::new(read_u64(r)?),
        },
        2 => InstrKind::Store {
            addr: Addr::new(read_u64(r)?),
        },
        3 => {
            let bk = branch_kind_from_tag(read_u8(r)?)?;
            let target = Addr::new(read_u64(r)?);
            let taken = read_u8(r)? != 0;
            InstrKind::Branch {
                kind: bk,
                target,
                taken,
            }
        }
        4 => InstrKind::PrefetchI {
            target: Addr::new(read_u64(r)?),
        },
        t => return Err(DecodeError::BadTag(t)),
    };
    let mask = read_u8(r)?;
    let mut srcs = [None; 3];
    for (bit, slot) in srcs.iter_mut().enumerate() {
        if mask & (1 << bit) != 0 {
            *slot = Some(read_reg(r)?);
        }
    }
    let dst_byte = read_u8(r)?;
    let dst = if dst_byte == NO_REG {
        None
    } else {
        Some(check_reg(dst_byte)?)
    };
    Ok(Instruction {
        pc,
        size,
        kind,
        srcs,
        dst,
    })
}

fn check_reg(byte: u8) -> Result<Reg, DecodeError> {
    if (byte as usize) < Reg::COUNT {
        Ok(Reg::new(byte))
    } else {
        Err(DecodeError::BadRegister(byte))
    }
}

fn read_reg<R: Read>(r: &mut R) -> Result<Reg, DecodeError> {
    check_reg(read_u8(r)?)
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_types::Reg;

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        Trace::read_from(buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trips_every_kind() {
        let instrs = vec![
            Instruction::alu(Addr::new(0x0)).with_dst(Reg::new(1)),
            Instruction::load(Addr::new(0x4), Addr::new(0x1234))
                .with_srcs(&[Reg::new(2)])
                .with_dst(Reg::new(3)),
            Instruction::store(Addr::new(0x8), Addr::new(0x5678))
                .with_srcs(&[Reg::new(3), Reg::new(4)]),
            Instruction::cond_branch(Addr::new(0xc), Addr::new(0x100), false),
            Instruction::jump(Addr::new(0x10), Addr::new(0x200)),
            Instruction::call(Addr::new(0x14), Addr::new(0x300)),
            Instruction::indirect_call(Addr::new(0x18), Addr::new(0x400)).with_srcs(&[Reg::new(9)]),
            Instruction::indirect_jump(Addr::new(0x1c), Addr::new(0x500)),
            Instruction::ret(Addr::new(0x20), Addr::new(0x18)),
            Instruction::prefetch_i(Addr::new(0x24), Addr::new(0x4000)),
        ];
        let t = Trace::from_instructions("kinds", instrs);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::from_instructions("empty", vec![]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Trace::read_from(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic(_)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        Trace::from_instructions("v", vec![])
            .write_to(&mut buf)
            .unwrap();
        buf[4] = 99;
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeError::UnsupportedVersion(99)));
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut buf = Vec::new();
        let t = Trace::from_instructions("t", vec![Instruction::alu(Addr::new(0))]);
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeError::Io(_)));
    }

    #[test]
    fn rejects_bad_register_byte() {
        let mut buf = Vec::new();
        let t = Trace::from_instructions(
            "t",
            vec![Instruction::alu(Addr::new(0)).with_dst(Reg::new(0))],
        );
        t.write_to(&mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] = 200; // invalid dst register (not NO_REG, >= Reg::COUNT)
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeError::BadRegister(200)));
    }

    #[test]
    fn error_messages_are_lowercase_and_nonempty() {
        let msgs = [
            DecodeError::BadName.to_string(),
            DecodeError::BadTag(7).to_string(),
            DecodeError::BadLength(1).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }
}
