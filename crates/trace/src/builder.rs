//! Convenience builder for constructing traces in program order.

use swip_types::{Addr, BranchKind, Instruction, Reg};

use crate::Trace;

/// Incrementally builds a [`Trace`], tracking the current PC.
///
/// The builder lays instructions out contiguously from a start address; taken
/// branches move the PC to their target, mirroring how a real dynamic stream
/// walks a binary. This is the primitive the synthetic workload generator and
/// many tests are written against.
///
/// # Examples
///
/// ```
/// use swip_types::Addr;
/// use swip_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::with_start("loop", Addr::new(0x1000));
/// b.alu();
/// b.cond_branch(Addr::new(0x1000), true); // back-edge
/// b.alu(); // continues at the branch target
/// let t = b.finish();
/// assert_eq!(t.instructions()[2].pc, Addr::new(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    name: String,
    pc: Addr,
    instrs: Vec<Instruction>,
}

impl TraceBuilder {
    /// Creates a builder starting at PC 0.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_start(name, Addr::ZERO)
    }

    /// Creates a builder starting at `start`.
    pub fn with_start(name: impl Into<String>, start: Addr) -> Self {
        TraceBuilder {
            name: name.into(),
            pc: start,
            instrs: Vec::new(),
        }
    }

    /// The PC the next appended instruction will occupy.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends a pre-built instruction and advances the PC to its
    /// architectural successor.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.pc = instr.next_pc();
        self.instrs.push(instr);
        self
    }

    /// Appends an ALU instruction.
    pub fn alu(&mut self) -> &mut Self {
        self.push(Instruction::alu(self.pc))
    }

    /// Appends an ALU instruction with registers.
    pub fn alu_rr(&mut self, dst: Reg, srcs: &[Reg]) -> &mut Self {
        self.push(Instruction::alu(self.pc).with_dst(dst).with_srcs(srcs))
    }

    /// Appends a load from `addr`.
    pub fn load(&mut self, addr: Addr) -> &mut Self {
        self.push(Instruction::load(self.pc, addr))
    }

    /// Appends a store to `addr`.
    pub fn store(&mut self, addr: Addr) -> &mut Self {
        self.push(Instruction::store(self.pc, addr))
    }

    /// Appends a conditional branch to `target` with outcome `taken`.
    pub fn cond_branch(&mut self, target: Addr, taken: bool) -> &mut Self {
        self.push(Instruction::cond_branch(self.pc, target, taken))
    }

    /// Appends an unconditional jump to `target`.
    pub fn jump(&mut self, target: Addr) -> &mut Self {
        self.push(Instruction::jump(self.pc, target))
    }

    /// Appends a direct call to `target`.
    pub fn call(&mut self, target: Addr) -> &mut Self {
        self.push(Instruction::call(self.pc, target))
    }

    /// Appends a return to `target`.
    pub fn ret(&mut self, target: Addr) -> &mut Self {
        self.push(Instruction::ret(self.pc, target))
    }

    /// Appends a branch of arbitrary kind.
    pub fn branch(&mut self, kind: BranchKind, target: Addr, taken: bool) -> &mut Self {
        self.push(Instruction::branch(self.pc, kind, target, taken))
    }

    /// Appends a software instruction prefetch of `target`.
    pub fn prefetch_i(&mut self, target: Addr) -> &mut Self {
        self.push(Instruction::prefetch_i(self.pc, target))
    }

    /// Moves the current PC without emitting an instruction (e.g. to lay out
    /// a function at a fresh address before calling it).
    pub fn set_pc(&mut self, pc: Addr) -> &mut Self {
        self.pc = pc;
        self
    }

    /// Finishes the build, producing the immutable [`Trace`].
    pub fn finish(self) -> Trace {
        Trace::from_instructions(self.name, self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_layout() {
        let mut b = TraceBuilder::new("seq");
        b.alu().alu().alu();
        let t = b.finish();
        let pcs: Vec<u64> = t.iter().map(|i| i.pc.raw()).collect();
        assert_eq!(pcs, vec![0, 4, 8]);
    }

    #[test]
    fn taken_branch_redirects_pc() {
        let mut b = TraceBuilder::with_start("br", Addr::new(0x100));
        b.cond_branch(Addr::new(0x200), true);
        assert_eq!(b.pc(), Addr::new(0x200));
        b.cond_branch(Addr::new(0x300), false);
        assert_eq!(b.pc(), Addr::new(0x204));
    }

    #[test]
    fn call_and_return_walk() {
        let mut b = TraceBuilder::with_start("call", Addr::new(0x1000));
        b.call(Addr::new(0x2000));
        assert_eq!(b.pc(), Addr::new(0x2000));
        b.alu();
        b.ret(Addr::new(0x1004));
        assert_eq!(b.pc(), Addr::new(0x1004));
    }

    #[test]
    fn set_pc_does_not_emit() {
        let mut b = TraceBuilder::new("setpc");
        b.set_pc(Addr::new(0x40)).alu();
        let t = b.finish();
        assert_eq!(t.len(), 1);
        assert_eq!(t.instructions()[0].pc, Addr::new(0x40));
    }
}
