//! Instruction trace representation and I/O for `swip-fe`.
//!
//! The paper evaluates on CVP-1 instruction traces replayed through a
//! trace-based simulator (ChampSim). This crate provides the equivalent
//! substrate: an in-memory [`Trace`] of [`swip_types::Instruction`]s, a
//! [`TraceBuilder`] for programmatic construction, a compact binary codec
//! ([`Trace::write_to`] / [`Trace::read_from`]) for persistence, and
//! [`TraceSummary`] for footprint/mix analysis.
//!
//! # Examples
//!
//! ```
//! use swip_types::Addr;
//! use swip_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new("demo");
//! b.alu();
//! b.cond_branch(Addr::new(0x40), true);
//! let trace = b.finish();
//! assert_eq!(trace.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod codec;
mod summary;
mod trace;

pub use builder::TraceBuilder;
pub use codec::DecodeError;
pub use summary::TraceSummary;
pub use trace::Trace;
