//! Trace mix and footprint analysis.

use std::collections::BTreeSet;
use std::fmt;

use swip_types::InstrKind;

use crate::Trace;

/// Aggregate statistics about a trace: instruction mix, control-flow density,
/// and static code footprint.
///
/// The static footprint (unique PCs / unique code lines) is what determines
/// L1-I pressure, the operating regime the paper's workloads live in
/// ("large instruction working sets, resulting in MPKIs ranging from ~2 to
/// ~28").
///
/// # Examples
///
/// ```
/// use swip_types::Addr;
/// use swip_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("t");
/// b.alu();
/// b.cond_branch(Addr::new(0), true);
/// let s = b.finish().summary();
/// assert_eq!(s.total, 2);
/// assert_eq!(s.branches, 1);
/// assert_eq!(s.unique_pcs, 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceSummary {
    /// Total dynamic instructions.
    pub total: u64,
    /// Dynamic ALU instructions.
    pub alu: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic branches of any kind.
    pub branches: u64,
    /// Dynamic taken branches.
    pub taken_branches: u64,
    /// Dynamic software instruction prefetches.
    pub prefetches: u64,
    /// Distinct static instruction addresses.
    pub unique_pcs: u64,
    /// Distinct static instruction cache lines (64 B).
    pub unique_lines: u64,
    /// Static code size in bytes (sum of sizes over unique PCs).
    pub static_bytes: u64,
}

impl TraceSummary {
    /// Computes the summary of `trace` in one pass.
    pub fn of(trace: &Trace) -> TraceSummary {
        let mut s = TraceSummary::default();
        let mut pcs = BTreeSet::new();
        let mut lines = BTreeSet::new();
        for i in trace.iter() {
            s.total += 1;
            match i.kind {
                InstrKind::Alu => s.alu += 1,
                InstrKind::Load { .. } => s.loads += 1,
                InstrKind::Store { .. } => s.stores += 1,
                InstrKind::Branch { taken, .. } => {
                    s.branches += 1;
                    if taken {
                        s.taken_branches += 1;
                    }
                }
                InstrKind::PrefetchI { .. } => s.prefetches += 1,
            }
            if pcs.insert(i.pc) {
                s.static_bytes += i.size as u64;
            }
            lines.insert(i.pc.line());
        }
        s.unique_pcs = pcs.len() as u64;
        s.unique_lines = lines.len() as u64;
        s
    }

    /// Fraction of dynamic instructions that are branches.
    pub fn branch_density(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.branches as f64 / self.total as f64
        }
    }

    /// Static instruction-footprint size in KiB (unique lines × 64 B).
    pub fn footprint_kib(&self) -> f64 {
        self.unique_lines as f64 * 64.0 / 1024.0
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs ({} br, {} ld, {} st, {} pf), footprint {:.1} KiB ({} lines)",
            self.total,
            self.branches,
            self.loads,
            self.stores,
            self.prefetches,
            self.footprint_kib(),
            self.unique_lines,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;
    use swip_types::Addr;

    #[test]
    fn mix_counts() {
        let mut b = TraceBuilder::new("mix");
        b.alu();
        b.load(Addr::new(0x9000));
        b.store(Addr::new(0x9008));
        b.cond_branch(Addr::new(0x0), true);
        b.cond_branch(Addr::new(0x40), false);
        b.prefetch_i(Addr::new(0x4000));
        let s = b.finish().summary();
        assert_eq!(s.total, 6);
        assert_eq!(s.alu, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.prefetches, 1);
    }

    #[test]
    fn footprint_counts_unique_statics_once() {
        let mut b = TraceBuilder::new("loop");
        // 4-instruction loop body executed 10 times.
        for _ in 0..10 {
            b.set_pc(Addr::new(0x100));
            b.alu().alu().alu();
            b.cond_branch(Addr::new(0x100), true);
        }
        let s = b.finish().summary();
        assert_eq!(s.total, 40);
        assert_eq!(s.unique_pcs, 4);
        assert_eq!(s.static_bytes, 16);
        assert_eq!(s.unique_lines, 1);
    }

    #[test]
    fn branch_density() {
        let mut b = TraceBuilder::new("d");
        b.alu().alu().alu();
        b.cond_branch(Addr::new(0), false);
        let s = b.finish().summary();
        assert!((s.branch_density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = TraceSummary::of(&Trace::from_instructions("e", vec![]));
        assert_eq!(s, TraceSummary::default());
        assert_eq!(s.branch_density(), 0.0);
    }
}
