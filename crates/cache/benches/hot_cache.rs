//! Microbenchmarks for the cache crate's hot kernels: the flat-layout
//! `Cache::access`/`Cache::fill` pair and the flat ITLB lookup — the
//! inner loops every simulated fetch goes through.

use criterion::{criterion_group, criterion_main, Criterion};
use swip_cache::{Cache, CacheConfig, ReplacementKind, Tlb, TlbConfig};
use swip_types::Addr;

fn l1i() -> Cache {
    Cache::new(CacheConfig::with_capacity_kib(
        "L1I",
        32,
        8,
        4,
        8,
        ReplacementKind::Lru,
    ))
}

fn bench_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_hot");
    g.bench_function("access_hit", |b| {
        let mut cache = l1i();
        for n in 0..512u64 {
            cache.fill(Addr::new(n * 64).line(), false);
        }
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % 512;
            std::hint::black_box(cache.access(Addr::new(n * 64).line(), false))
        });
    });
    g.bench_function("access_miss", |b| {
        let mut cache = l1i();
        let mut n = 0u64;
        b.iter(|| {
            // A footprint far beyond capacity keeps every access a miss
            // without ever filling, so this isolates the lookup loop.
            n = n.wrapping_add(64 * 513);
            std::hint::black_box(cache.access(Addr::new(n).line(), false))
        });
    });
    g.finish();
}

fn bench_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_hot");
    for (name, kind) in [
        ("fill_evict_lru", ReplacementKind::Lru),
        ("fill_evict_srrip", ReplacementKind::Srrip),
    ] {
        g.bench_function(name, |b| {
            let mut cache = Cache::new(CacheConfig::with_capacity_kib("L1I", 32, 8, 4, 8, kind));
            let mut n = 0u64;
            b.iter(|| {
                // Streaming far past capacity: every fill after warm-up
                // selects a victim in the borrowed set slice.
                n += 64;
                std::hint::black_box(cache.fill(Addr::new(n).line(), n.is_multiple_of(3)))
            });
        });
    }
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_hot");
    g.bench_function("tlb_access_hit", |b| {
        let mut tlb = Tlb::new(TlbConfig::default());
        // Touch a few pages so lookups hit in the flat way array.
        for p in 0..16u64 {
            tlb.access(Addr::new(p * 4096), 0);
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % 16;
            std::hint::black_box(tlb.access(Addr::new(p * 4096), 0))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_access, bench_fill, bench_tlb);
criterion_main!(benches);
