//! Instruction TLB model.

use swip_types::{Addr, Counter, Cycle, Ratio};

use crate::ConfigError;

/// Page size (4 KiB) used by the TLB model.
pub const PAGE_SIZE: u64 = 4096;
const PAGE_SHIFT: u32 = 12;

/// Configuration of a TLB level.
#[derive(Clone, Debug)]
pub struct TlbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Cycles added by a miss (page-table walk, assumed to hit the caches).
    pub walk_latency: u64,
}

impl Default for TlbConfig {
    /// A Sunny-Cove-like ITLB: 128 entries, 8-way, ~20-cycle walk.
    fn default() -> Self {
        TlbConfig {
            sets: 16,
            ways: 8,
            walk_latency: 20,
        }
    }
}

impl TlbConfig {
    /// Validates the geometry, mirroring [`crate::CacheConfig::validate`].
    ///
    /// The TLB indexes with `page & (sets - 1)`, so a non-power-of-two set
    /// count would silently alias sets and skew walk counts rather than
    /// fail loudly — it must be rejected up front.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] (named `ITLB`) on invalid geometry.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(ConfigError::NonPowerOfTwoSets {
                name: "ITLB".into(),
                sets: self.sets,
            });
        }
        if self.ways == 0 {
            return Err(ConfigError::ZeroWays {
                name: "ITLB".into(),
            });
        }
        if crate::config::flat_slots(self.sets, self.ways).is_none() {
            return Err(ConfigError::CapacityOverflow {
                name: "ITLB".into(),
                sets: self.sets,
                ways: self.ways,
            });
        }
        Ok(())
    }
}

#[derive(Copy, Clone, Debug)]
struct TlbWay {
    tag: u64,
    lru: u64,
    valid: bool,
}

/// A set-associative translation lookaside buffer over 4 KiB pages.
///
/// The simulator is virtually addressed throughout (trace addresses), so the
/// TLB only contributes *timing*: a lookup that misses adds the walk latency
/// to the fetch it serves and installs the page. This mirrors how the
/// paper's platform charges ITLB misses without modeling page tables.
///
/// # Examples
///
/// ```
/// use swip_types::Addr;
/// use swip_cache::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert_eq!(tlb.access(Addr::new(0x5000), 0), 20); // cold miss: walk
/// assert_eq!(tlb.access(Addr::new(0x5fff), 1), 0);  // same page: hit
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    /// All ways of all sets in one contiguous allocation, indexed by
    /// `set * config.ways + way` (same flat layout as [`crate::Cache`]).
    ways: Vec<TlbWay>,
    tick: u64,
    stats: TlbStats,
}

/// TLB statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct TlbStats {
    /// Lookup hit/miss ratio.
    pub lookups: Ratio,
    /// Page walks performed.
    pub walks: Counter,
}

impl Tlb {
    /// Creates a TLB from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero;
    /// [`Tlb::try_new`] is the fallible variant.
    pub fn new(config: TlbConfig) -> Self {
        match Self::try_new(config) {
            Ok(tlb) => tlb,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a TLB from `config`, rejecting invalid geometry with a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`TlbConfig::validate`].
    pub fn try_new(config: TlbConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        // `validate` guarantees `sets * ways` fits in `usize` (checked in
        // u64 space), so the flat index below can never truncate.
        Ok(Tlb {
            ways: vec![
                TlbWay {
                    tag: 0,
                    lru: 0,
                    valid: false
                };
                config.sets * config.ways
            ],
            config,
            tick: 0,
            stats: TlbStats::default(),
        })
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.ways.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    fn index_and_tag(&self, addr: Addr) -> (usize, u64) {
        let page = addr.raw() >> PAGE_SHIFT;
        (
            (page & (self.config.sets as u64 - 1)) as usize,
            page >> self.config.sets.trailing_zeros(),
        )
    }

    /// Translates the page of `addr`, returning the added latency in cycles
    /// (0 on a hit, the walk latency on a miss). The page is installed on a
    /// miss.
    pub fn access(&mut self, addr: Addr, _now: Cycle) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        let (idx, tag) = self.index_and_tag(addr);
        let base = idx * self.config.ways;
        let set = &mut self.ways[base..base + self.config.ways];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = tick;
            self.stats.lookups.record(true);
            return 0;
        }
        self.stats.lookups.record(false);
        self.stats.walks.incr();
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("tlb set is never empty");
        *victim = TlbWay {
            tag,
            lru: tick,
            valid: true,
        };
        self.config.walk_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            sets: 2,
            ways: 2,
            walk_latency: 15,
        })
    }

    #[test]
    fn same_page_hits_after_walk() {
        let mut t = tiny();
        assert_eq!(t.access(Addr::new(0x1000), 0), 15);
        assert_eq!(t.access(Addr::new(0x1ffc), 1), 0);
        assert_eq!(t.stats().walks.get(), 1);
        assert_eq!(t.stats().lookups.hits(), 1);
    }

    #[test]
    fn distinct_pages_walk_independently() {
        let mut t = tiny();
        assert_eq!(t.access(Addr::new(0x0000), 0), 15);
        assert_eq!(t.access(Addr::new(0x1000), 1), 15);
        assert_eq!(t.access(Addr::new(0x0000), 2), 0);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut t = tiny(); // 2 sets x 2 ways; pages 0,2,4 share set 0
        t.access(Addr::new(0x0000), 0);
        t.access(Addr::new(0x2000), 1);
        t.access(Addr::new(0x0000), 2); // refresh page 0
        t.access(Addr::new(0x4000), 3); // evicts page 2
        assert_eq!(t.access(Addr::new(0x0000), 4), 0);
        assert_eq!(t.access(Addr::new(0x2000), 5), 15);
    }

    #[test]
    fn default_capacity_matches_sunny_cove() {
        assert_eq!(Tlb::new(TlbConfig::default()).capacity(), 128);
    }

    #[test]
    fn non_power_of_two_sets_is_a_typed_error() {
        // Regression: a 3-set TLB would index with `page & 2`, silently
        // collapsing sets 1 and 3 onto the same storage and skewing walk
        // counts. The geometry must be rejected, not aliased.
        let bad = TlbConfig {
            sets: 3,
            ways: 2,
            walk_latency: 15,
        };
        let err = Tlb::try_new(bad).unwrap_err();
        assert_eq!(
            err,
            ConfigError::NonPowerOfTwoSets {
                name: "ITLB".into(),
                sets: 3
            }
        );
        let err = Tlb::try_new(TlbConfig {
            sets: 4,
            ways: 0,
            walk_latency: 15,
        })
        .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ZeroWays {
                name: "ITLB".into()
            }
        );
        assert!(Tlb::try_new(TlbConfig::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn new_still_panics_on_bad_geometry() {
        let _ = Tlb::new(TlbConfig {
            sets: 6,
            ways: 2,
            walk_latency: 15,
        });
    }
}
