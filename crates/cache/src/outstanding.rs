//! Miss-status holding registers (outstanding-miss tracking).

use std::collections::HashMap;

use swip_types::{Counter, Cycle, LineAddr};

/// Tracks in-flight misses for one cache level.
///
/// A request to a line that is already outstanding *merges*: it completes at
/// the already-scheduled fill time and consumes no new MSHR. Entries are
/// retired lazily as the clock advances. A bounded MSHR file refuses new
/// allocations when full, which back-pressures the fetch engine exactly as a
/// real L1-I MSHR file throttles FDP.
///
/// # Examples
///
/// ```
/// use swip_types::Addr;
/// use swip_cache::Outstanding;
///
/// let mut mshrs = Outstanding::new(2);
/// let line = Addr::new(0x40).line();
/// assert_eq!(mshrs.lookup(line, 0), None);
/// assert!(mshrs.allocate(line, 100, 0));
/// assert_eq!(mshrs.lookup(line, 50), Some(100)); // merged
/// assert_eq!(mshrs.lookup(line, 101), None);     // retired
/// ```
#[derive(Clone, Debug)]
pub struct Outstanding {
    inflight: HashMap<LineAddr, Cycle>,
    capacity: usize,
    merges: Counter,
    rejects: Counter,
}

impl Outstanding {
    /// Creates an MSHR file with `capacity` entries (`0` = unlimited).
    pub fn new(capacity: usize) -> Self {
        Outstanding {
            inflight: HashMap::new(),
            capacity,
            merges: Counter::new(),
            rejects: Counter::new(),
        }
    }

    fn retire(&mut self, now: Cycle) {
        self.inflight.retain(|_, &mut done| done > now);
    }

    /// If `line` is still in flight at `now`, returns its completion cycle
    /// (recording a merge).
    pub fn lookup(&mut self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        self.retire(now);
        let done = self.inflight.get(&line).copied();
        if done.is_some() {
            self.merges.incr();
        }
        done
    }

    /// Attempts to allocate an entry completing at `done`. Returns `false`
    /// (and records a reject) when the file is full at `now`.
    pub fn allocate(&mut self, line: LineAddr, done: Cycle, now: Cycle) -> bool {
        self.retire(now);
        if self.capacity != 0 && self.inflight.len() >= self.capacity {
            self.rejects.incr();
            return false;
        }
        self.inflight.insert(line, done);
        true
    }

    /// True when no further misses can be allocated at `now`.
    pub fn is_full(&mut self, now: Cycle) -> bool {
        self.capacity != 0 && self.len(now) >= self.capacity
    }

    /// Number of in-flight entries at `now`.
    pub fn len(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.inflight.len()
    }

    /// True when no misses are in flight at `now`.
    pub fn is_empty(&mut self, now: Cycle) -> bool {
        self.len(now) == 0
    }

    /// Requests that merged with an in-flight line.
    pub fn merges(&self) -> u64 {
        self.merges.get()
    }

    /// Allocation attempts rejected because the file was full.
    pub fn rejects(&self) -> u64 {
        self.rejects.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn merge_returns_existing_completion() {
        let mut m = Outstanding::new(4);
        m.allocate(line(1), 50, 0);
        assert_eq!(m.lookup(line(1), 10), Some(50));
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn entries_retire_at_completion() {
        let mut m = Outstanding::new(4);
        m.allocate(line(1), 50, 0);
        assert_eq!(m.lookup(line(1), 50), None); // done == now => retired
        assert!(m.is_empty(50));
    }

    #[test]
    fn capacity_enforced() {
        let mut m = Outstanding::new(2);
        assert!(m.allocate(line(1), 100, 0));
        assert!(m.allocate(line(2), 100, 0));
        assert!(!m.allocate(line(3), 100, 0));
        assert_eq!(m.rejects(), 1);
        // After the first two retire there is room again.
        assert!(m.allocate(line(3), 200, 150));
    }

    #[test]
    fn unlimited_capacity() {
        let mut m = Outstanding::new(0);
        for n in 0..100 {
            assert!(m.allocate(line(n), 1000, 0));
        }
        assert_eq!(m.len(0), 100);
    }
}
