//! A tag-only set-associative cache.

use swip_types::{Counter, LineAddr, Ratio};

use crate::CacheConfig;
#[cfg(test)]
use crate::ReplacementKind;

/// One way of one set: tag, replacement metadata, and the prefetched bit
/// (folded in so the hot path touches a single contiguous array).
///
/// Shared with [`crate::ReplacementKind`], whose victim selection operates
/// on a borrowed set slice in place — no per-fill scratch allocation.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Way {
    pub(crate) tag: u64,
    pub(crate) meta: u64,
    pub(crate) valid: bool,
    pub(crate) prefetched: bool,
}

impl Way {
    pub(crate) const EMPTY: Way = Way {
        tag: 0,
        meta: 0,
        valid: false,
        prefetched: false,
    };
}

/// Per-level access statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct CacheStats {
    /// Demand accesses (hit or miss).
    pub demand: Ratio,
    /// Prefetch accesses (hit or miss).
    pub prefetch: Ratio,
    /// Lines evicted to make room for fills.
    pub evictions: Counter,
    /// Fills whose line was first brought in by a prefetch and hit by demand
    /// before eviction (useful prefetches).
    pub useful_prefetches: Counter,
}

impl CacheStats {
    /// Demand misses per `per` of `denom` (e.g. MPKI with `denom` =
    /// instructions, `per` = 1000).
    pub fn demand_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.demand.misses() as f64 * 1000.0 / instructions as f64
        }
    }
}

/// A tag-only set-associative cache with pluggable replacement.
///
/// Data values are never stored — the simulator only needs presence and
/// timing. Fills track whether the line arrived via prefetch so prefetch
/// usefulness can be reported.
///
/// # Examples
///
/// ```
/// use swip_types::Addr;
/// use swip_cache::{Cache, CacheConfig, ReplacementKind};
///
/// let mut c = Cache::new(CacheConfig::with_capacity_kib(
///     "L1I", 4, 4, 2, 4, ReplacementKind::Lru,
/// ));
/// let line = Addr::new(0x80).line();
/// assert!(!c.access(line, false));
/// c.fill(line, false);
/// assert!(c.access(line, false));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// All ways of all sets in one contiguous allocation, indexed by
    /// `set * config.ways + way` — one cache line of `Way`s per lookup
    /// instead of a pointer chase through nested `Vec`s.
    ways: Vec<Way>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates a cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.sets` is not a power of two or `config.ways` is 0;
    /// [`Cache::try_new`] is the fallible variant.
    pub fn new(config: CacheConfig) -> Self {
        match Self::try_new(config) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a cache from `config`, rejecting invalid geometry with a
    /// typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`crate::ConfigError`] from [`CacheConfig::validate`].
    pub fn try_new(config: CacheConfig) -> Result<Self, crate::ConfigError> {
        config.validate()?;
        // `validate` guarantees `sets * ways` fits in `usize` (checked in
        // u64 space), so the flat index below can never truncate.
        Ok(Cache {
            ways: vec![Way::EMPTY; config.sets * config.ways],
            config,
            stats: CacheStats::default(),
            tick: 0,
        })
    }

    /// The configuration of this level.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Hit latency of this level.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    fn index_and_tag(&self, line: LineAddr) -> (usize, u64) {
        let n = line.number();
        let idx = (n & (self.config.sets as u64 - 1)) as usize;
        (idx, n >> self.config.sets.trailing_zeros())
    }

    /// The ways of set `idx` as a contiguous slice.
    fn set(&self, idx: usize) -> &[Way] {
        let base = idx * self.config.ways;
        &self.ways[base..base + self.config.ways]
    }

    /// The ways of set `idx` as a contiguous mutable slice.
    fn set_mut(&mut self, idx: usize) -> &mut [Way] {
        let base = idx * self.config.ways;
        &mut self.ways[base..base + self.config.ways]
    }

    /// Performs a (demand or prefetch) lookup, updating replacement and
    /// statistics. Returns `true` on hit.
    pub fn access(&mut self, line: LineAddr, is_prefetch: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let policy = self.config.replacement;
        let (idx, tag) = self.index_and_tag(line);
        let mut hit = false;
        let mut useful = false;
        for way in self.set_mut(idx) {
            if way.valid && way.tag == tag {
                policy.on_hit(&mut way.meta, tick);
                hit = true;
                if !is_prefetch && way.prefetched {
                    useful = true;
                    way.prefetched = false;
                }
                break;
            }
        }
        if useful {
            self.stats.useful_prefetches.incr();
        }
        if is_prefetch {
            self.stats.prefetch.record(hit);
        } else {
            self.stats.demand.record(hit);
        }
        hit
    }

    /// Checks for presence without touching replacement or statistics.
    pub fn contains(&self, line: LineAddr) -> bool {
        let (idx, tag) = self.index_and_tag(line);
        self.set(idx).iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line`, evicting if necessary. Returns the evicted line.
    /// Filling a line that is already present refreshes it in place.
    pub fn fill(&mut self, line: LineAddr, via_prefetch: bool) -> Option<LineAddr> {
        self.tick += 1;
        let tick = self.tick;
        let policy = self.config.replacement;
        let (idx, tag) = self.index_and_tag(line);
        let set_bits = self.config.sets.trailing_zeros();
        let set = {
            let base = idx * self.config.ways;
            &mut self.ways[base..base + self.config.ways]
        };

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            policy.on_hit(&mut way.meta, tick);
            way.prefetched = via_prefetch && way.prefetched;
            return None;
        }

        // Prefer an invalid way.
        if let Some(way) = set.iter_mut().find(|w| !w.valid) {
            *way = Way {
                tag,
                meta: policy.on_fill(tick),
                valid: true,
                prefetched: via_prefetch,
            };
            return None;
        }

        // Victim selection runs in place on the borrowed set slice (SRRIP
        // ages metadata there as a side effect) — nothing is allocated.
        let victim = policy.victim(set);
        let evicted_tag = set[victim].tag;
        let evicted = LineAddr::from_line_number((evicted_tag << set_bits) | idx as u64);
        set[victim] = Way {
            tag,
            meta: policy.on_fill(tick),
            valid: true,
            prefetched: via_prefetch,
        };
        self.stats.evictions.incr();
        Some(evicted)
    }

    /// Removes `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let (idx, tag) = self.index_and_tag(line);
        for way in self.set_mut(idx) {
            if way.valid && way.tag == tag {
                way.valid = false;
                return true;
            }
        }
        false
    }

    /// Number of currently valid lines (test/inspection helper).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(replacement: ReplacementKind) -> Cache {
        Cache::new(CacheConfig {
            name: "t".into(),
            sets: 2,
            ways: 2,
            latency: 1,
            mshrs: 4,
            replacement,
        })
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = small(ReplacementKind::Lru);
        assert!(!c.access(line(0), false));
        assert_eq!(c.fill(line(0), false), None);
        assert!(c.access(line(0), false));
        assert_eq!(c.stats().demand.hits(), 1);
        assert_eq!(c.stats().demand.misses(), 1);
    }

    #[test]
    fn eviction_returns_correct_line_address() {
        let mut c = small(ReplacementKind::Lru);
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.fill(line(0), false);
        c.fill(line(2), false);
        c.access(line(0), false); // refresh 0 -> 2 is LRU
        let evicted = c.fill(line(4), false);
        assert_eq!(evicted, Some(line(2)));
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(2)));
        assert!(c.contains(line(4)));
    }

    #[test]
    fn refill_of_present_line_does_not_evict() {
        let mut c = small(ReplacementKind::Lru);
        c.fill(line(0), false);
        c.fill(line(2), false);
        assert_eq!(c.fill(line(0), false), None);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small(ReplacementKind::Lru);
        c.fill(line(3), false);
        assert!(c.invalidate(line(3)));
        assert!(!c.contains(line(3)));
        assert!(!c.invalidate(line(3)));
    }

    #[test]
    fn useful_prefetch_accounting() {
        let mut c = small(ReplacementKind::Lru);
        c.fill(line(0), true);
        assert!(c.access(line(0), false));
        assert_eq!(c.stats().useful_prefetches.get(), 1);
        // Second demand hit no longer counts it.
        c.access(line(0), false);
        assert_eq!(c.stats().useful_prefetches.get(), 1);
    }

    #[test]
    fn prefetch_accesses_counted_separately() {
        let mut c = small(ReplacementKind::Lru);
        c.access(line(9), true);
        assert_eq!(c.stats().prefetch.total(), 1);
        assert_eq!(c.stats().demand.total(), 0);
    }

    #[test]
    fn srrip_cache_works_end_to_end() {
        let mut c = small(ReplacementKind::Srrip);
        for n in 0..8 {
            c.fill(line(n), false);
        }
        assert_eq!(c.occupancy(), 4); // 2 sets x 2 ways
    }

    #[test]
    fn mpki_helper() {
        let mut c = small(ReplacementKind::Lru);
        c.access(line(0), false); // miss
        assert_eq!(c.stats().demand_mpki(1000), 1.0);
        assert_eq!(c.stats().demand_mpki(0), 0.0);
    }
}
