//! Replacement policies.
//!
//! Policies operate on per-way metadata words owned by the cache, which keeps
//! the policy stateless and lets one enum serve every level. Victim selection
//! works directly on the cache's borrowed set slice so steady-state fills
//! never allocate scratch storage.

use crate::cache::Way;

/// Which replacement policy a cache level uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ReplacementKind {
    /// True least-recently-used via a monotonic access tick.
    #[default]
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV, insert at 2,
    /// promote to 0 on hit) — ChampSim's common LLC policy.
    Srrip,
}

const RRPV_MAX: u64 = 3;
const RRPV_INSERT: u64 = 2;

impl ReplacementKind {
    /// Metadata value for a line that was just filled at time `tick`.
    pub(crate) fn on_fill(self, tick: u64) -> u64 {
        match self {
            ReplacementKind::Lru => tick,
            ReplacementKind::Srrip => RRPV_INSERT,
        }
    }

    /// Updates metadata for a line that just hit at time `tick`.
    pub(crate) fn on_hit(self, meta: &mut u64, tick: u64) {
        match self {
            ReplacementKind::Lru => *meta = tick,
            ReplacementKind::Srrip => *meta = 0,
        }
    }

    /// Chooses a victim way among the set's ways (all valid), in place on
    /// the cache's borrowed slice. For SRRIP, ages the set as a side effect
    /// until a way reaches the eviction interval.
    pub(crate) fn victim(self, ways: &mut [Way]) -> usize {
        match self {
            ReplacementKind::Lru => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.meta)
                .map(|(i, _)| i)
                .expect("victim called on empty set"),
            ReplacementKind::Srrip => loop {
                if let Some(i) = ways.iter().position(|w| w.meta >= RRPV_MAX) {
                    break i;
                }
                for w in ways.iter_mut() {
                    w.meta += 1;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(metas: &[u64]) -> Vec<Way> {
        metas
            .iter()
            .map(|&meta| Way {
                meta,
                valid: true,
                ..Way::EMPTY
            })
            .collect()
    }

    fn metas(ways: &[Way]) -> Vec<u64> {
        ways.iter().map(|w| w.meta).collect()
    }

    #[test]
    fn lru_victim_is_oldest() {
        let mut ways = set(&[5, 2, 9]);
        assert_eq!(ReplacementKind::Lru.victim(&mut ways), 1);
    }

    #[test]
    fn lru_hit_refreshes() {
        let mut m = 1u64;
        ReplacementKind::Lru.on_hit(&mut m, 42);
        assert_eq!(m, 42);
    }

    #[test]
    fn srrip_inserts_at_long_interval_and_promotes_on_hit() {
        assert_eq!(ReplacementKind::Srrip.on_fill(7), RRPV_INSERT);
        let mut m = RRPV_INSERT;
        ReplacementKind::Srrip.on_hit(&mut m, 7);
        assert_eq!(m, 0);
    }

    #[test]
    fn srrip_victim_ages_until_eviction() {
        let mut ways = set(&[0, 2, 1]);
        // way 1 reaches RRPV_MAX after one aging round.
        assert_eq!(ReplacementKind::Srrip.victim(&mut ways), 1);
        assert_eq!(metas(&ways), [1, 3, 2]);
    }

    #[test]
    fn srrip_prefers_existing_max() {
        let mut ways = set(&[3, 0, 2]);
        assert_eq!(ReplacementKind::Srrip.victim(&mut ways), 0);
        assert_eq!(metas(&ways), [3, 0, 2]); // no aging needed
    }
}
