//! Cache and memory-hierarchy model for `swip-fe`.
//!
//! The simulator's memory system is a tag-only, latency-accurate model of a
//! ChampSim-style hierarchy: per-level set-associative [`Cache`]s with
//! pluggable replacement ([`ReplacementKind`]), miss-status holding registers
//! ([`Outstanding`]) that merge requests to in-flight lines, and a
//! [`MemoryHierarchy`] that walks L1 → L2 → LLC → DRAM and reports the cycle
//! at which a request completes.
//!
//! Bandwidth contention inside the memory controllers is not modeled (the
//! paper's characterization depends on *latency* structure — which FTQ entry
//! stalls, and for how long — not on DRAM scheduling).
//!
//! # Examples
//!
//! ```
//! use swip_types::Addr;
//! use swip_cache::{HierarchyConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::sunny_cove_like());
//! let line = Addr::new(0x4000).line();
//! let first = mem.fetch_instr(line, 0);
//! assert!(first.complete_at > 0); // cold miss goes to DRAM
//! let again = mem.fetch_instr(line, first.complete_at + 1);
//! assert!(again.complete_at - (first.complete_at + 1) < first.complete_at); // now an L1-I hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod entangling;
mod hierarchy;
mod outstanding;
mod replacement;
mod tlb;

pub use cache::{Cache, CacheStats};
pub use config::{CacheConfig, ConfigError, HierarchyConfig};
pub use entangling::{EntanglingConfig, EntanglingPrefetcher, EntanglingStats};
pub use hierarchy::{AccessResult, HierarchyStats, Level, MemoryHierarchy};
pub use outstanding::Outstanding;
pub use replacement::ReplacementKind;
pub use tlb::{Tlb, TlbConfig, TlbStats, PAGE_SIZE};
