//! An entangling instruction prefetcher (EIP-like).
//!
//! The paper's Figure 1 caption references EIP — the Entangling Instruction
//! Prefetcher (Ros & Jimborean), winner of the first Instruction Prefetching
//! Championship — as the hardware point of comparison for an
//! industry-standard front-end. This module implements the core entangling
//! idea at the scale our model needs:
//!
//! * every L1-I *demand* access is remembered in a short timestamped
//!   history;
//! * when a demand access misses, the prefetcher picks as its *entangling
//!   source* the youngest historical access old enough to have covered the
//!   miss latency, and records `source → missing line`;
//! * every later access to a source line prefetches its entangled
//!   destinations, ideally arriving exactly when the original miss would
//!   have.

use std::collections::VecDeque;

use swip_types::{Counter, Cycle, LineAddr};

/// Configuration of the entangling prefetcher.
#[derive(Clone, Debug)]
pub struct EntanglingConfig {
    /// log2 of the entangling-table entry count.
    pub table_log2: u32,
    /// Destinations remembered per source line.
    pub dsts_per_src: usize,
    /// Length of the timestamped access history.
    pub history_len: usize,
}

impl Default for EntanglingConfig {
    fn default() -> Self {
        EntanglingConfig {
            table_log2: 12,
            dsts_per_src: 2,
            history_len: 64,
        }
    }
}

#[derive(Clone, Debug)]
struct EntEntry {
    tag: u64,
    dsts: Vec<LineAddr>,
    valid: bool,
}

/// Per-prefetcher statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct EntanglingStats {
    /// (source → destination) pairs recorded.
    pub entangles: Counter,
    /// Prefetches emitted on source accesses.
    pub prefetches: Counter,
}

/// The entangling prefetcher engine (state only; the memory hierarchy issues
/// the prefetches this engine requests).
#[derive(Clone, Debug)]
pub struct EntanglingPrefetcher {
    config: EntanglingConfig,
    table: Vec<EntEntry>,
    history: VecDeque<(LineAddr, Cycle)>,
    stats: EntanglingStats,
}

impl EntanglingPrefetcher {
    /// Creates a prefetcher from `config`.
    pub fn new(config: EntanglingConfig) -> Self {
        EntanglingPrefetcher {
            table: vec![
                EntEntry {
                    tag: 0,
                    dsts: Vec::new(),
                    valid: false
                };
                1 << config.table_log2
            ],
            history: VecDeque::with_capacity(config.history_len),
            stats: EntanglingStats::default(),
            config,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &EntanglingStats {
        &self.stats
    }

    fn index_and_tag(&self, line: LineAddr) -> (usize, u64) {
        let n = line.number();
        let mixed = n ^ (n >> self.config.table_log2);
        ((mixed & ((1u64 << self.config.table_log2) - 1)) as usize, n)
    }

    /// Notes a demand access to `line` at `now`; returns the entangled
    /// destinations to prefetch.
    pub fn on_demand_access(&mut self, line: LineAddr, now: Cycle) -> Vec<LineAddr> {
        let (idx, tag) = self.index_and_tag(line);
        let out = {
            let e = &self.table[idx];
            if e.valid && e.tag == tag {
                e.dsts.clone()
            } else {
                Vec::new()
            }
        };
        self.stats.prefetches.add(out.len() as u64);
        if self.history.len() == self.config.history_len {
            self.history.pop_front();
        }
        self.history.push_back((line, now));
        out
    }

    /// Notes that the demand access to `line` at `now` missed with the given
    /// fill latency; entangles it with the youngest access old enough to
    /// have hidden that latency.
    pub fn on_demand_miss(&mut self, line: LineAddr, now: Cycle, latency: u64) {
        let need_by = now.saturating_sub(latency);
        // Youngest history entry with timestamp <= need_by; fall back to the
        // oldest (the best available) when none is old enough.
        let src = self
            .history
            .iter()
            .rev()
            .find(|&&(l, t)| t <= need_by && l != line)
            .or_else(|| self.history.iter().find(|&&(l, _)| l != line))
            .map(|&(l, _)| l);
        let Some(src) = src else {
            return;
        };
        let (idx, tag) = self.index_and_tag(src);
        let dsts_per_src = self.config.dsts_per_src;
        let e = &mut self.table[idx];
        if !(e.valid && e.tag == tag) {
            *e = EntEntry {
                tag,
                dsts: Vec::with_capacity(dsts_per_src),
                valid: true,
            };
        }
        if !e.dsts.contains(&line) {
            if e.dsts.len() == dsts_per_src {
                e.dsts.remove(0);
            }
            e.dsts.push(line);
            self.stats.entangles.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    fn pf() -> EntanglingPrefetcher {
        EntanglingPrefetcher::new(EntanglingConfig {
            table_log2: 6,
            dsts_per_src: 2,
            history_len: 8,
        })
    }

    #[test]
    fn entangles_with_a_source_old_enough() {
        let mut p = pf();
        p.on_demand_access(line(1), 0);
        p.on_demand_access(line(2), 50);
        p.on_demand_access(line(3), 100);
        // Miss at t=100 with latency 80 → need_by=20 → source is line 1.
        p.on_demand_miss(line(9), 100, 80);
        assert_eq!(p.stats().entangles.get(), 1);
        // A later access to line 1 prefetches line 9.
        let out = p.on_demand_access(line(1), 200);
        assert_eq!(out, vec![line(9)]);
    }

    #[test]
    fn falls_back_to_oldest_when_nothing_is_old_enough() {
        let mut p = pf();
        p.on_demand_access(line(4), 95);
        p.on_demand_miss(line(9), 100, 80); // need_by=20, nothing qualifies
        let out = p.on_demand_access(line(4), 200);
        assert_eq!(out, vec![line(9)]);
    }

    #[test]
    fn dst_list_is_bounded_fifo() {
        let mut p = pf();
        p.on_demand_access(line(1), 0);
        for (i, t) in [(10u64, 300u64), (11, 301), (12, 302)] {
            p.on_demand_miss(line(i), t, 250);
        }
        let out = p.on_demand_access(line(1), 400);
        assert_eq!(out, vec![line(11), line(12)], "oldest destination evicted");
    }

    #[test]
    fn never_entangles_a_line_with_itself() {
        let mut p = pf();
        p.on_demand_access(line(5), 0);
        p.on_demand_miss(line(5), 100, 80);
        assert_eq!(p.stats().entangles.get(), 0);
    }

    #[test]
    fn duplicate_entangles_are_ignored() {
        let mut p = pf();
        p.on_demand_access(line(1), 0);
        p.on_demand_miss(line(9), 100, 80);
        p.on_demand_miss(line(9), 200, 80);
        assert_eq!(p.stats().entangles.get(), 1);
    }
}
