//! Cache and hierarchy configuration.

use std::fmt;

use swip_types::CACHE_LINE_SIZE;

use crate::{EntanglingConfig, ReplacementKind, TlbConfig};

/// A typed rejection of an invalid cache or TLB geometry.
///
/// Set indices are computed with `page & (sets - 1)`, so a non-power-of-two
/// set count silently aliases distinct sets instead of failing — every
/// constructor in this crate therefore validates geometry up front and
/// reports the offending structure by name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// The set count is zero or not a power of two.
    NonPowerOfTwoSets {
        /// Structure name (`L1I`, `ITLB`, …).
        name: String,
        /// The rejected set count.
        sets: usize,
    },
    /// The associativity is zero.
    ZeroWays {
        /// Structure name.
        name: String,
    },
    /// A capacity/associativity pair yields a non-power-of-two set count.
    BadCapacity {
        /// Structure name.
        name: String,
        /// Requested capacity in KiB.
        capacity_kib: usize,
        /// Requested associativity.
        ways: usize,
        /// The set count the pair works out to.
        sets: usize,
    },
    /// A sampling stride of zero (e.g. the scenario timeline's cycle
    /// stride): every downstream consumer divides or steps by the stride,
    /// so zero must be rejected as configuration, not normalized at use.
    ZeroStride {
        /// Structure name (`timeline`, …).
        name: String,
    },
    /// `sets * ways` does not fit the platform's `usize`: the flat backing
    /// store (one contiguous `Vec` indexed by `set * ways + way`) could not
    /// be addressed without truncation.
    CapacityOverflow {
        /// Structure name.
        name: String,
        /// The rejected set count.
        sets: usize,
        /// The rejected associativity.
        ways: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPowerOfTwoSets { name, sets } => write!(
                f,
                "{name}: set count {sets} is not a positive power of two \
                 (indexing would alias sets)"
            ),
            ConfigError::ZeroWays { name } => {
                write!(f, "{name}: associativity must be nonzero")
            }
            ConfigError::BadCapacity {
                name,
                capacity_kib,
                ways,
                sets,
            } => write!(
                f,
                "{name}: capacity {capacity_kib} KiB / {ways} ways gives \
                 non-power-of-two set count {sets}"
            ),
            ConfigError::ZeroStride { name } => {
                write!(f, "{name}: sampling stride must be positive (got 0)")
            }
            ConfigError::CapacityOverflow { name, sets, ways } => write!(
                f,
                "{name}: {sets} sets x {ways} ways overflows the flat \
                 backing store's address space"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Total way-slot count of a `sets × ways` geometry, computed in u64 space.
///
/// Returns `None` when the product overflows u64 or does not fit the
/// platform's `usize` (possible on 32-bit targets, where `usize` math on
/// the operands would silently truncate before the comparison). The flat
/// cache/TLB backing stores index by `set * ways + way`, so any geometry
/// accepted here is guaranteed addressable without wrap-around.
pub(crate) fn flat_slots(sets: usize, ways: usize) -> Option<usize> {
    let slots = (sets as u64).checked_mul(ways as u64)?;
    if slots > usize::MAX as u64 {
        return None;
    }
    Some(slots as usize)
}

/// Geometry and timing of one cache level.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Human-readable level name (appears in reports).
    pub name: String,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Cycles added when a request is satisfied at this level (beyond the
    /// cycles already spent reaching it).
    pub latency: u64,
    /// Maximum outstanding misses (MSHR count); `0` means unlimited.
    pub mshrs: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Creates a config sized by capacity in KiB instead of set count.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is not a positive power of two;
    /// [`CacheConfig::try_with_capacity_kib`] is the fallible variant.
    pub fn with_capacity_kib(
        name: impl Into<String>,
        capacity_kib: usize,
        ways: usize,
        latency: u64,
        mshrs: usize,
        replacement: ReplacementKind,
    ) -> Self {
        match Self::try_with_capacity_kib(name, capacity_kib, ways, latency, mshrs, replacement) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a config sized by capacity in KiB, rejecting geometries whose
    /// set count would not be a positive power of two.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadCapacity`] (or [`ConfigError::ZeroWays`])
    /// instead of panicking deep inside construction, so callers like
    /// `swip bench` can exit with a message rather than a backtrace.
    pub fn try_with_capacity_kib(
        name: impl Into<String>,
        capacity_kib: usize,
        ways: usize,
        latency: u64,
        mshrs: usize,
        replacement: ReplacementKind,
    ) -> Result<Self, ConfigError> {
        let name = name.into();
        if ways == 0 {
            return Err(ConfigError::ZeroWays { name });
        }
        let lines = capacity_kib * 1024 / CACHE_LINE_SIZE as usize;
        let sets = lines / ways;
        if sets == 0 || !sets.is_power_of_two() {
            return Err(ConfigError::BadCapacity {
                name,
                capacity_kib,
                ways,
                sets,
            });
        }
        Ok(CacheConfig {
            name,
            sets,
            ways,
            latency,
            mshrs,
            replacement,
        })
    }

    /// Validates the geometry: positive power-of-two sets, nonzero ways.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming this level on invalid geometry.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(ConfigError::NonPowerOfTwoSets {
                name: self.name.clone(),
                sets: self.sets,
            });
        }
        if self.ways == 0 {
            return Err(ConfigError::ZeroWays {
                name: self.name.clone(),
            });
        }
        if flat_slots(self.sets, self.ways).is_none() {
            return Err(ConfigError::CapacityOverflow {
                name: self.name.clone(),
                sets: self.sets,
                ways: self.ways,
            });
        }
        Ok(())
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * CACHE_LINE_SIZE as usize
    }
}

/// Configuration for the full memory hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// Cycles added by a DRAM access (after missing the LLC).
    pub dram_latency: u64,
    /// If true, an L1-I demand miss also prefetches the next sequential
    /// line (simple hardware prefetcher, used only for ablations; the
    /// paper's baseline relies on FDP alone).
    pub l1i_next_line_prefetch: bool,
    /// Optional EIP-like entangling instruction prefetcher at the L1-I
    /// (the hardware comparison point referenced by the paper's Fig. 1
    /// caption). `None` in the paper's baseline configurations.
    pub l1i_entangling: Option<EntanglingConfig>,
    /// Optional instruction TLB (adds walk latency to fetches that miss
    /// it). `None` in the baseline configurations so Table I timing is
    /// unchanged; enabled in ablations.
    pub itlb: Option<TlbConfig>,
}

impl HierarchyConfig {
    /// A Sunny-Cove-like hierarchy matching the paper's Table I scale:
    /// 32 KiB/8-way L1-I (4-cycle), 48 KiB/12-way L1-D (5-cycle),
    /// 512 KiB/8-way L2 (+10), 2 MiB/16-way LLC (+20), 200-cycle DRAM.
    pub fn sunny_cove_like() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::with_capacity_kib("L1I", 32, 8, 4, 8, ReplacementKind::Lru),
            l1d: CacheConfig::with_capacity_kib("L1D", 48, 12, 5, 16, ReplacementKind::Lru),
            l2: CacheConfig::with_capacity_kib("L2", 512, 8, 10, 32, ReplacementKind::Lru),
            llc: CacheConfig::with_capacity_kib("LLC", 2048, 16, 20, 64, ReplacementKind::Srrip),
            dram_latency: 200,
            l1i_next_line_prefetch: false,
            l1i_entangling: None,
            itlb: None,
        }
    }

    /// A small hierarchy for fast tests: 4 KiB L1s, 16 KiB L2, 64 KiB LLC.
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::with_capacity_kib("L1I", 4, 4, 2, 4, ReplacementKind::Lru),
            l1d: CacheConfig::with_capacity_kib("L1D", 4, 4, 2, 4, ReplacementKind::Lru),
            l2: CacheConfig::with_capacity_kib("L2", 16, 4, 6, 8, ReplacementKind::Lru),
            llc: CacheConfig::with_capacity_kib("LLC", 64, 8, 12, 16, ReplacementKind::Srrip),
            dram_latency: 60,
            l1i_next_line_prefetch: false,
            l1i_entangling: None,
            itlb: None,
        }
    }

    /// Total round-trip latency of a request that misses every level.
    pub fn worst_case_latency(&self) -> u64 {
        self.l1i.latency + self.l2.latency + self.llc.latency + self.dram_latency
    }

    /// Latency of a request satisfied by the LLC (the distance heuristic
    /// AsmDB multiplies by IPC).
    pub fn llc_round_trip(&self) -> u64 {
        self.l1i.latency + self.l2.latency + self.llc.latency
    }

    /// Validates every level (and the ITLB, when configured).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`], naming the offending structure.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        self.llc.validate()?;
        if let Some(itlb) = &self.itlb {
            itlb.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_sizing() {
        let c = CacheConfig::with_capacity_kib("L1I", 32, 8, 4, 8, ReplacementKind::Lru);
        assert_eq!(c.sets, 64);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "non-power-of-two")]
    fn bad_geometry_panics() {
        let _ = CacheConfig::with_capacity_kib("x", 48, 8, 4, 8, ReplacementKind::Lru);
    }

    #[test]
    fn bad_geometry_is_a_typed_error() {
        // Regression: 48 KiB / 8 ways = 96 sets used to panic deep inside
        // construction; the fallible path names the level and the numbers.
        let err = CacheConfig::try_with_capacity_kib("L2", 48, 8, 4, 8, ReplacementKind::Lru)
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BadCapacity {
                name: "L2".into(),
                capacity_kib: 48,
                ways: 8,
                sets: 96
            }
        );
        assert!(err.to_string().contains("L2"), "{err}");
        let err =
            CacheConfig::try_with_capacity_kib("x", 32, 0, 4, 8, ReplacementKind::Lru).unwrap_err();
        assert_eq!(err, ConfigError::ZeroWays { name: "x".into() });
    }

    #[test]
    fn validate_rejects_aliasing_set_counts() {
        let mut c = CacheConfig::with_capacity_kib("L1I", 32, 8, 4, 8, ReplacementKind::Lru);
        assert_eq!(c.validate(), Ok(()));
        c.sets = 96;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPowerOfTwoSets {
                name: "L1I".into(),
                sets: 96
            })
        );
    }

    #[test]
    fn hierarchy_validate_names_the_offending_level() {
        let mut h = HierarchyConfig::sunny_cove_like();
        assert_eq!(h.validate(), Ok(()));
        h.l2.sets = 12;
        let err = h.validate().unwrap_err();
        assert!(err.to_string().contains("L2"), "{err}");
        h.l2.sets = 1024;
        h.itlb = Some(TlbConfig {
            sets: 3,
            ways: 2,
            walk_latency: 20,
        });
        let err = h.validate().unwrap_err();
        assert!(err.to_string().contains("ITLB"), "{err}");
    }

    #[test]
    fn flat_capacity_math_survives_the_32_bit_boundary() {
        // Regression (mirrors the PR 3 fill-cursor test): the flat backing
        // store is indexed by `set * ways + way`. Computing the slot count
        // in `usize` space truncates on a 32-bit target once `sets * ways`
        // crosses 2^32, which would wrap indices back into bounds and alias
        // distinct sets. `flat_slots` multiplies in u64 space and rejects
        // anything `usize` cannot address; exercise the boundary values.
        assert_eq!(flat_slots(64, 8), Some(512));
        assert_eq!(flat_slots(1, 1), Some(1));
        // 2^31 x 4 = 2^33: representable in u64 on every target; a 32-bit
        // `usize` multiply would truncate it to 0.
        let big = 1usize << 31;
        match flat_slots(big, 4) {
            Some(slots) => assert_eq!(slots as u64, 1u64 << 33), // 64-bit host
            None => assert!((usize::MAX as u64) < (1u64 << 33)), // 32-bit host
        }
        // 2^62 x 4 = 2^64 overflows even u64's checked multiply.
        assert_eq!(flat_slots(1usize << 62, 4), None);
        assert_eq!(flat_slots(usize::MAX, 2), None);

        // `validate` surfaces the rejection as a typed error.
        let mut c = CacheConfig::with_capacity_kib("L1I", 32, 8, 4, 8, ReplacementKind::Lru);
        c.sets = 1usize << 62;
        c.ways = 4;
        assert_eq!(
            c.validate(),
            Err(ConfigError::CapacityOverflow {
                name: "L1I".into(),
                sets: 1usize << 62,
                ways: 4
            })
        );
    }

    #[test]
    fn sunny_cove_shape() {
        let h = HierarchyConfig::sunny_cove_like();
        assert_eq!(h.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(h.l1d.capacity_bytes(), 48 * 1024);
        assert_eq!(h.llc.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(h.worst_case_latency(), 4 + 10 + 20 + 200);
        assert_eq!(h.llc_round_trip(), 34);
    }
}
