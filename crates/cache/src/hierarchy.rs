//! The multi-level memory hierarchy walked by instruction and data requests.

use swip_types::{Counter, Cycle, LineAddr};

use crate::{Cache, CacheStats, EntanglingPrefetcher, HierarchyConfig, Outstanding, Tlb};

/// The level that satisfied a request.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// First-level cache (L1-I for instruction requests, L1-D for data).
    L1,
    /// Unified second-level cache.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Memory,
}

/// The outcome of a hierarchy access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Cycle at which the requested line is available to the requester.
    pub complete_at: Cycle,
    /// Where the request was satisfied.
    pub level: Level,
    /// True if the request merged with an already-outstanding miss (no new
    /// traffic was generated; `level` reports [`Level::L1`] conventionally).
    pub merged: bool,
}

/// Aggregate hierarchy statistics beyond the per-level cache counters.
#[derive(Copy, Clone, Debug, Default)]
pub struct HierarchyStats {
    /// Instruction fetches satisfied by the L1-I.
    pub instr_l1_hits: Counter,
    /// Instruction fetches satisfied by the L2.
    pub instr_l2_hits: Counter,
    /// Instruction fetches satisfied by the LLC.
    pub instr_llc_hits: Counter,
    /// Instruction fetches that went to memory.
    pub instr_memory: Counter,
    /// Instruction fetches that merged with an in-flight miss.
    pub instr_merged: Counter,
    /// Software/hardware instruction prefetches issued into the hierarchy.
    pub instr_prefetches: Counter,
    /// Data accesses that went past the L1-D.
    pub data_l1_misses: Counter,
}

/// A latency-accurate (tag-only) L1-I/L1-D + L2 + LLC + DRAM hierarchy.
///
/// Every access walks the levels, accumulating each level's latency until it
/// hits, fills the missing levels on the way back, and reports the
/// completion cycle. MSHR files merge requests to in-flight lines and bound
/// the number of outstanding instruction misses, providing the back-pressure
/// that throttles an aggressive FDP engine.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    dram_latency: u64,
    next_line: bool,
    i_mshrs: Outstanding,
    d_mshrs: Outstanding,
    stats: HierarchyStats,
    line_profile: Option<std::collections::HashMap<u64, u64>>,
    entangling: Option<EntanglingPrefetcher>,
    itlb: Option<Tlb>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from `config`.
    ///
    /// # Panics
    ///
    /// Panics if any level (or the ITLB) has invalid geometry;
    /// [`MemoryHierarchy::try_new`] is the fallible variant.
    pub fn new(config: HierarchyConfig) -> Self {
        match Self::try_new(config) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the hierarchy from `config`, rejecting invalid geometry with
    /// a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::ConfigError`] from
    /// [`HierarchyConfig::validate`], naming the offending structure.
    pub fn try_new(config: HierarchyConfig) -> Result<Self, crate::ConfigError> {
        config.validate()?;
        let itlb = match config.itlb.clone() {
            Some(c) => Some(Tlb::try_new(c)?),
            None => None,
        };
        Ok(MemoryHierarchy {
            i_mshrs: Outstanding::new(config.l1i.mshrs),
            d_mshrs: Outstanding::new(config.l1d.mshrs),
            l1i: Cache::try_new(config.l1i)?,
            l1d: Cache::try_new(config.l1d)?,
            l2: Cache::try_new(config.l2)?,
            llc: Cache::try_new(config.llc)?,
            dram_latency: config.dram_latency,
            next_line: config.l1i_next_line_prefetch,
            stats: HierarchyStats::default(),
            line_profile: None,
            entangling: config.l1i_entangling.clone().map(EntanglingPrefetcher::new),
            itlb,
        })
    }

    /// Statistics of the entangling prefetcher, if enabled.
    pub fn entangling_stats(&self) -> Option<crate::EntanglingStats> {
        self.entangling.as_ref().map(|e| *e.stats())
    }

    /// Statistics of the instruction TLB, if enabled.
    pub fn itlb_stats(&self) -> Option<crate::TlbStats> {
        self.itlb.as_ref().map(|t| *t.stats())
    }

    /// Starts recording per-line L1-I demand-miss counts (the raw input to
    /// AsmDB's profiling stage).
    pub fn enable_line_profile(&mut self) {
        self.line_profile = Some(std::collections::HashMap::new());
    }

    /// Per-line L1-I demand-miss counts (line number → misses); empty unless
    /// [`MemoryHierarchy::enable_line_profile`] was called.
    pub fn line_profile(&self) -> std::collections::HashMap<u64, u64> {
        self.line_profile.clone().unwrap_or_default()
    }

    /// Statistics for the L1 instruction cache.
    pub fn l1i_stats(&self) -> &CacheStats {
        self.l1i.stats()
    }

    /// Statistics for the L1 data cache.
    pub fn l1d_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// Statistics for the L2.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Statistics for the LLC.
    pub fn llc_stats(&self) -> &CacheStats {
        self.llc.stats()
    }

    /// Aggregate hierarchy statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// True if `line` currently resides in the L1-I (inspection helper).
    pub fn l1i_contains(&self, line: LineAddr) -> bool {
        self.l1i.contains(line)
    }

    /// Instruction-side MSHR entries still in flight as of `now`
    /// (inspection helper; entries retire lazily as `now` advances).
    pub fn i_mshrs_in_flight(&mut self, now: Cycle) -> usize {
        self.i_mshrs.len(now)
    }

    /// Requests under this many cycles are "short" stalls; exposed so
    /// reports can bucket head-stall severity.
    pub fn l1_latency(&self) -> u64 {
        self.l1i.latency()
    }

    /// Walks L2 → LLC → DRAM after an L1 miss, filling on the way back.
    /// Returns the latency beyond the L1 lookup plus the satisfying level.
    fn walk_beyond_l1(&mut self, line: LineAddr, is_prefetch: bool) -> (u64, Level) {
        if self.l2.access(line, is_prefetch) {
            return (self.l2.latency(), Level::L2);
        }
        if self.llc.access(line, is_prefetch) {
            self.l2.fill(line, is_prefetch);
            return (self.l2.latency() + self.llc.latency(), Level::Llc);
        }
        self.llc.fill(line, is_prefetch);
        self.l2.fill(line, is_prefetch);
        (
            self.l2.latency() + self.llc.latency() + self.dram_latency,
            Level::Memory,
        )
    }

    /// Issues a demand instruction fetch for `line` at cycle `now`.
    ///
    /// When the L1-I MSHR file is full the request cannot be issued:
    /// `complete_at` is [`Cycle::MAX`] and the fetch engine must retry on a
    /// later cycle. Otherwise the line is guaranteed present in the L1-I for
    /// subsequent accesses.
    pub fn fetch_instr(&mut self, line: LineAddr, now: Cycle) -> AccessResult {
        if let Some(done) = self.i_mshrs.lookup(line, now) {
            self.stats.instr_merged.incr();
            return AccessResult {
                complete_at: done,
                level: Level::L1,
                merged: true,
            };
        }
        // A miss needs an MSHR; refuse before touching any statistics so a
        // retried request is not double-counted as a demand access.
        if !self.l1i.contains(line) && self.i_mshrs.is_full(now) {
            return AccessResult {
                // MSHR full: the request cannot be issued this cycle. Callers
                // treat `complete_at == Cycle::MAX` as "retry later".
                complete_at: Cycle::MAX,
                level: Level::Memory,
                merged: false,
            };
        }
        let walk = self
            .itlb
            .as_mut()
            .map_or(0, |tlb| tlb.access(line.base(), now));
        let entangled = self
            .entangling
            .as_mut()
            .map(|e| e.on_demand_access(line, now))
            .unwrap_or_default();
        for dst in entangled {
            self.prefetch_instr(dst, now);
        }
        if self.l1i.access(line, false) {
            self.stats.instr_l1_hits.incr();
            return AccessResult {
                complete_at: now + self.l1i.latency() + walk,
                level: Level::L1,
                merged: false,
            };
        }
        let (beyond, level) = self.walk_beyond_l1(line, false);
        let done = now + self.l1i.latency() + beyond + walk;
        let allocated = self.i_mshrs.allocate(line, done, now);
        debug_assert!(allocated, "mshr availability was checked above");
        self.l1i.fill(line, false);
        if let Some(e) = self.entangling.as_mut() {
            e.on_demand_miss(line, now, self.l1i.latency() + beyond);
        }
        if let Some(profile) = self.line_profile.as_mut() {
            *profile.entry(line.number()).or_insert(0) += 1;
        }
        match level {
            Level::L2 => self.stats.instr_l2_hits.incr(),
            Level::Llc => self.stats.instr_llc_hits.incr(),
            Level::Memory => self.stats.instr_memory.incr(),
            Level::L1 => unreachable!(),
        }
        if self.next_line {
            self.prefetch_instr(line.next(), now);
        }
        AccessResult {
            complete_at: done,
            level,
            merged: false,
        }
    }

    /// Where a request for `line` would be satisfied, without side effects.
    pub fn peek_level(&self, line: LineAddr) -> Level {
        if self.l1i.contains(line) {
            Level::L1
        } else if self.l2.contains(line) {
            Level::L2
        } else if self.llc.contains(line) {
            Level::Llc
        } else {
            Level::Memory
        }
    }

    /// Issues an instruction prefetch for `line` at cycle `now`.
    ///
    /// Prefetches are dropped (returning `None`) when the MSHR file is full;
    /// they never back-pressure the requester.
    pub fn prefetch_instr(&mut self, line: LineAddr, now: Cycle) -> Option<AccessResult> {
        self.stats.instr_prefetches.incr();
        if let Some(done) = self.i_mshrs.lookup(line, now) {
            return Some(AccessResult {
                complete_at: done,
                level: Level::L1,
                merged: true,
            });
        }
        // Dropped prefetches must not perturb any cache state or statistics.
        if !self.l1i.contains(line) && self.i_mshrs.is_full(now) {
            return None;
        }
        if self.l1i.access(line, true) {
            return Some(AccessResult {
                complete_at: now + self.l1i.latency(),
                level: Level::L1,
                merged: false,
            });
        }
        let (beyond, level) = self.walk_beyond_l1(line, true);
        let done = now + self.l1i.latency() + beyond;
        let allocated = self.i_mshrs.allocate(line, done, now);
        debug_assert!(allocated, "mshr availability was checked above");
        self.l1i.fill(line, true);
        Some(AccessResult {
            complete_at: done,
            level,
            merged: false,
        })
    }

    /// Issues a data access (load or store) for `line` at cycle `now`.
    ///
    /// Data requests always succeed; a full L1-D MSHR file adds one L1 round
    /// trip of penalty rather than refusing (the backend model does not
    /// replay).
    pub fn access_data(&mut self, line: LineAddr, now: Cycle) -> AccessResult {
        if let Some(done) = self.d_mshrs.lookup(line, now) {
            return AccessResult {
                complete_at: done,
                level: Level::L1,
                merged: true,
            };
        }
        if self.l1d.access(line, false) {
            return AccessResult {
                complete_at: now + self.l1d.latency(),
                level: Level::L1,
                merged: false,
            };
        }
        self.stats.data_l1_misses.incr();
        let (beyond, level) = self.walk_beyond_l1(line, false);
        let full_penalty = if self.d_mshrs.len(now) >= 16 {
            self.l1d.latency()
        } else {
            0
        };
        let done = now + self.l1d.latency() + beyond + full_penalty;
        let _ = self.d_mshrs.allocate(line, done, now);
        self.l1d.fill(line, false);
        AccessResult {
            complete_at: done,
            level,
            merged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::tiny())
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn cold_miss_pays_full_latency_then_hits() {
        let mut m = mem();
        let cfg = HierarchyConfig::tiny();
        let r = m.fetch_instr(line(1), 0);
        assert_eq!(r.level, Level::Memory);
        assert_eq!(
            r.complete_at,
            cfg.l1i.latency + cfg.l2.latency + cfg.llc.latency + cfg.dram_latency
        );
        let r2 = m.fetch_instr(line(1), r.complete_at);
        assert_eq!(r2.level, Level::L1);
        assert_eq!(r2.complete_at, r.complete_at + cfg.l1i.latency);
    }

    #[test]
    fn merge_with_inflight_miss() {
        let mut m = mem();
        let r1 = m.fetch_instr(line(1), 0);
        let r2 = m.fetch_instr(line(1), 1);
        assert!(r2.merged);
        assert_eq!(r2.complete_at, r1.complete_at);
        assert_eq!(m.stats().instr_merged.get(), 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = mem();
        // Fill L1I (4 KiB = 64 lines) far past capacity; early lines fall to L2.
        for n in 0..256 {
            let r = m.fetch_instr(line(n), n * 1000);
            assert!(!r.merged);
        }
        let t = 10_000_000;
        let r = m.fetch_instr(line(0), t);
        assert!(
            r.level == Level::L2 || r.level == Level::Llc,
            "expected inner-cache hit, got {:?}",
            r.level
        );
        assert!(r.complete_at < t + HierarchyConfig::tiny().worst_case_latency());
    }

    #[test]
    fn mshr_exhaustion_backpressures_fetch() {
        let mut m = mem(); // 4 L1-I MSHRs
        for n in 0..4 {
            assert!(m.fetch_instr(line(n * 100), 0).complete_at < Cycle::MAX);
        }
        let blocked = m.fetch_instr(line(999), 0);
        assert_eq!(blocked.complete_at, Cycle::MAX);
        // Once earlier misses retire, the request can issue.
        let later = m.fetch_instr(line(999), 1000);
        assert!(later.complete_at < Cycle::MAX);
    }

    #[test]
    fn prefetch_fills_l1i() {
        let mut m = mem();
        let r = m.prefetch_instr(line(7), 0).unwrap();
        assert_eq!(r.level, Level::Memory);
        assert!(m.l1i_contains(line(7)));
        // Demand fetch before completion merges with the prefetch.
        let d = m.fetch_instr(line(7), 1);
        assert!(d.merged);
        assert_eq!(d.complete_at, r.complete_at);
    }

    #[test]
    fn prefetch_dropped_when_mshrs_full() {
        let mut m = mem();
        for n in 0..4 {
            m.fetch_instr(line(n * 100), 0);
        }
        assert!(m.prefetch_instr(line(999), 0).is_none());
    }

    #[test]
    fn next_line_prefetcher_warms_sequential_lines() {
        let mut cfg = HierarchyConfig::tiny();
        cfg.l1i_next_line_prefetch = true;
        let mut m = MemoryHierarchy::new(cfg);
        m.fetch_instr(line(10), 0);
        assert!(m.l1i_contains(line(11)));
    }

    #[test]
    fn data_path_independent_of_instruction_path() {
        let mut m = mem();
        let r = m.access_data(line(5), 0);
        assert_eq!(r.level, Level::Memory);
        assert!(!m.l1i_contains(line(5)));
        let r2 = m.access_data(line(5), r.complete_at + 1);
        assert_eq!(r2.level, Level::L1);
    }

    #[test]
    fn entangling_learns_miss_pairs_end_to_end() {
        let mut cfg = HierarchyConfig::tiny();
        cfg.l1i_entangling = Some(crate::EntanglingConfig::default());
        let mut m = MemoryHierarchy::new(cfg);
        // Recurring pattern: access line 1, then (80+ cycles later) miss
        // line 50. After training, accessing line 1 should prefetch line 50.
        let mut now = 0;
        for _ in 0..3 {
            m.fetch_instr(line(1), now);
            now += 200;
            m.fetch_instr(line(50), now);
            now += 200;
            // Evict-ish: touch unrelated lines so 50 misses again next round.
            for k in 100..180 {
                m.fetch_instr(LineAddr::from_line_number(k), now);
                now += 100;
            }
        }
        let stats = m.entangling_stats().expect("enabled");
        assert!(stats.entangles.get() >= 1);
        assert!(stats.prefetches.get() >= 1);
    }

    #[test]
    fn itlb_walks_add_latency_once_per_page() {
        let mut cfg = HierarchyConfig::tiny();
        cfg.itlb = Some(crate::TlbConfig {
            sets: 4,
            ways: 2,
            walk_latency: 25,
        });
        let mut m = MemoryHierarchy::new(cfg.clone());
        let mut plain = MemoryHierarchy::new(HierarchyConfig::tiny());
        let first_tlb = m.fetch_instr(line(1), 0).complete_at;
        let first_plain = plain.fetch_instr(line(1), 0).complete_at;
        assert_eq!(first_tlb, first_plain + 25, "cold fetch pays the walk");
        // Same page (line 1 and line 2 share page 0): no second walk.
        let second = m.fetch_instr(line(2), 1000).complete_at;
        let second_plain = plain.fetch_instr(line(2), 1000).complete_at;
        assert_eq!(second, second_plain);
        assert_eq!(m.itlb_stats().unwrap().walks.get(), 1);
    }

    #[test]
    fn instr_level_counters_sum_to_fetches() {
        let mut m = mem();
        for n in 0..10 {
            m.fetch_instr(line(n), n * 1000);
        }
        let s = m.stats();
        assert_eq!(
            s.instr_l1_hits.get()
                + s.instr_l2_hits.get()
                + s.instr_llc_hits.get()
                + s.instr_memory.get()
                + s.instr_merged.get(),
            10
        );
    }
}
