//! The composed branch-prediction unit driven by the decoupled front-end.

use std::fmt;

use swip_types::{Addr, BranchKind, Counter, Ratio};

use crate::direction::{make_predictor, DirectionKind, DirectionPredictor};
use crate::{Btb, GlobalHistory, IndirectPredictor, Ras};

/// Fixed instruction size assumed for return-address computation.
///
/// The paper models 32-bit instructions throughout; AsmDB's inserted
/// prefetches are also one instruction word.
const INSTR_BYTES: u64 = 4;

/// How the global history register is maintained.
///
/// The paper's FDP model adopts the Ishii et al. improvement of restricting
/// history to *taken* branches, so that conditional branches invisible to the
/// front-end (not-taken BTB misses "do not appear as branches but rather as
/// sequential instruction accesses") cannot desynchronize the speculative
/// history from the architectural one.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum HistoryMode {
    /// Record the outcome of every *conditional* branch (classic GHR). The
    /// speculative GHR can silently diverge on not-taken BTB misses; the
    /// divergence is repaired at the next redirect.
    Full,
    /// Record a path bit only for *taken* branches (Ishii-style). Not-taken
    /// branches — visible or not — leave the history untouched, keeping
    /// speculative and architectural history consistent by construction.
    #[default]
    TakenOnly,
}

/// Configuration for a [`BranchUnit`].
#[derive(Clone, Debug)]
pub struct BranchConfig {
    /// Number of BTB sets (power of two).
    pub btb_sets: usize,
    /// BTB associativity.
    pub btb_assoc: usize,
    /// Return-address-stack capacity.
    pub ras_entries: usize,
    /// log2 of the indirect predictor's entry count.
    pub indirect_log2_entries: u32,
    /// log2 of the direction predictor's table entry count.
    pub direction_log2_entries: u32,
    /// Which direction predictor to instantiate.
    pub direction: DirectionKind,
    /// Global-history maintenance policy.
    pub history_mode: HistoryMode,
}

impl Default for BranchConfig {
    /// A modern-core budget: 8K-entry 8-way BTB, 64-entry RAS, 4K-entry
    /// indirect predictor, 64K-weight hashed perceptron (Sunny-Cove-like,
    /// matching the paper's Table I scale).
    fn default() -> Self {
        BranchConfig {
            btb_sets: 1024,
            btb_assoc: 8,
            ras_entries: 64,
            indirect_log2_entries: 12,
            direction_log2_entries: 14,
            direction: DirectionKind::HashedPerceptron,
            history_mode: HistoryMode::TakenOnly,
        }
    }
}

/// Applies the history-mode policy for one (predicted or resolved) branch.
fn push_history(mode: HistoryMode, ghr: &mut GlobalHistory, pc: Addr, prediction: &Prediction) {
    match mode {
        HistoryMode::Full => {
            if prediction.kind == BranchKind::CondDirect {
                ghr.push(prediction.taken);
            }
        }
        HistoryMode::TakenOnly => {
            if prediction.taken {
                // Path bit: parity of pc/target word addresses gives the
                // history content that a pure "taken" bit would lack.
                let bit = ((pc.raw() >> 2) ^ (prediction.target.raw() >> 2)).count_ones() & 1;
                ghr.push(bit != 0);
            }
        }
    }
}

/// A front-end prediction for one instruction address.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Prediction {
    /// What kind of branch the BTB believes lives at this PC.
    pub kind: BranchKind,
    /// Predicted direction (`true` for all unconditional kinds).
    pub taken: bool,
    /// Predicted target when taken.
    pub target: Addr,
}

/// Counters reported by the branch unit.
#[derive(Copy, Clone, Debug, Default)]
pub struct BranchStats {
    /// Conditional direction prediction accuracy (resolved branches).
    pub direction: Ratio,
    /// BTB lookups that hit, over all front-end lookups.
    pub btb: Ratio,
    /// BTB fills that allocated a new entry.
    pub btb_fills: Counter,
    /// Indirect-target predictions that were correct at resolve.
    pub indirect: Ratio,
    /// Resolved branches flagged as mispredicted by the pipeline.
    pub mispredicts: Counter,
    /// Resolved branches of any kind.
    pub resolved: Counter,
}

impl BranchStats {
    /// Mispredictions per 1000 resolved branches.
    pub fn mpkb(&self) -> f64 {
        self.mispredicts.per(self.resolved.get(), 1000)
    }
}

/// Speculative front-end state snapshot for misprediction repair.
///
/// The front-end takes a checkpoint before consuming each prediction and
/// restores it when that prediction turns out wrong, exactly like the
/// GHR/RAS repair in the paper's post-fetch-correction description.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    ghr: GlobalHistory,
    ras: Ras,
}

/// The full branch-prediction complex: BTB + direction + RAS + indirect,
/// with separate speculative and architectural global histories.
///
/// See the crate-level docs for a usage sketch; the front-end calls
/// [`BranchUnit::predict_at`] while filling the FTQ and
/// [`BranchUnit::resolve`] as branches retire, calling
/// [`BranchUnit::resync_speculative`] after any redirect.
pub struct BranchUnit {
    config: BranchConfig,
    btb: Btb,
    direction: Box<dyn DirectionPredictor + Send>,
    indirect: IndirectPredictor,
    spec_ghr: GlobalHistory,
    arch_ghr: GlobalHistory,
    spec_ras: Ras,
    arch_ras: Ras,
    stats: BranchStats,
}

impl fmt::Debug for BranchUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BranchUnit")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl BranchUnit {
    /// Creates a branch unit from `config`.
    pub fn new(config: BranchConfig) -> Self {
        BranchUnit {
            btb: Btb::new(config.btb_sets, config.btb_assoc),
            direction: make_predictor(config.direction, config.direction_log2_entries),
            indirect: IndirectPredictor::new(config.indirect_log2_entries),
            spec_ghr: GlobalHistory::new(),
            arch_ghr: GlobalHistory::new(),
            spec_ras: Ras::new(config.ras_entries),
            arch_ras: Ras::new(config.ras_entries),
            config,
            stats: BranchStats::default(),
        }
    }

    /// The configuration this unit was built with.
    pub fn config(&self) -> &BranchConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }

    /// Produces the front-end prediction for the instruction at `pc`.
    ///
    /// Returns `None` when the BTB has no entry for `pc`: the front-end must
    /// treat the address as a non-branch and continue sequentially. This is
    /// the defining property of a BTB-driven FDP — unknown branches are
    /// invisible until they resolve once.
    ///
    /// Prediction reads speculative state but does not advance it; the fill
    /// engine calls [`BranchUnit::commit_spec`] for each branch it walks
    /// past, so the speculative history always reflects the fill path.
    pub fn predict_at(&mut self, pc: Addr) -> Option<Prediction> {
        let entry = self.btb.lookup(pc);
        self.stats.btb.record(entry.is_some());
        let entry = entry?;
        let fallthrough = pc.add(INSTR_BYTES);
        let prediction = match entry.kind {
            BranchKind::CondDirect => {
                let taken = self.direction.predict(pc, &self.spec_ghr);
                Prediction {
                    kind: entry.kind,
                    taken,
                    target: if taken { entry.target } else { fallthrough },
                }
            }
            BranchKind::UncondDirect | BranchKind::DirectCall => Prediction {
                kind: entry.kind,
                taken: true,
                target: entry.target,
            },
            BranchKind::IndirectCall | BranchKind::IndirectJump => {
                let target = self
                    .indirect
                    .predict(pc, &self.spec_ghr)
                    .unwrap_or(entry.target);
                Prediction {
                    kind: entry.kind,
                    taken: true,
                    target,
                }
            }
            BranchKind::Return => {
                let target = self.spec_ras.peek().unwrap_or(entry.target);
                Prediction {
                    kind: entry.kind,
                    taken: true,
                    target,
                }
            }
        };
        Some(prediction)
    }

    /// Advances speculative state (GHR, RAS) past one branch on the fill
    /// path with its actual kind/outcome. The trace-driven fill engine only
    /// ever walks the correct path, so committing actual outcomes keeps the
    /// speculative history exactly consistent with the architectural one —
    /// the invariant the taken-only-history improvement is designed to give
    /// real hardware.
    pub fn commit_spec(&mut self, pc: Addr, kind: BranchKind, target: Addr, taken: bool) {
        let outcome = Prediction {
            kind,
            taken,
            target,
        };
        push_history(self.config.history_mode, &mut self.spec_ghr, pc, &outcome);
        if taken {
            if kind.is_call() {
                self.spec_ras.push(pc.add(INSTR_BYTES));
            } else if kind == BranchKind::Return {
                self.spec_ras.pop();
            }
        }
    }

    /// Records a resolved branch: trains the BTB, direction and indirect
    /// predictors against the architectural history, and maintains the
    /// architectural RAS. `mispredicted` is the pipeline's verdict for this
    /// dynamic branch (used for statistics only).
    pub fn resolve(
        &mut self,
        pc: Addr,
        kind: BranchKind,
        target: Addr,
        taken: bool,
        mispredicted: bool,
    ) {
        self.stats.resolved.incr();
        if mispredicted {
            self.stats.mispredicts.incr();
        }

        if kind == BranchKind::CondDirect {
            let predicted = self.direction.predict(pc, &self.arch_ghr);
            self.stats.direction.record(predicted == taken);
            self.direction.update(pc, &self.arch_ghr, taken);
        }
        if kind.is_indirect() && kind != BranchKind::Return {
            if let Some(t) = self.indirect.predict(pc, &self.arch_ghr) {
                self.stats.indirect.record(t == target);
            } else {
                self.stats.indirect.record(false);
            }
            self.indirect.update(pc, &self.arch_ghr, target);
        }

        // BTB learns branches once they are taken; a never-taken conditional
        // stays invisible to the front-end (it fetches sequentially anyway).
        if taken && self.btb.insert(pc, kind, target) {
            self.stats.btb_fills.incr();
        }

        // Architectural RAS.
        if kind.is_call() {
            self.arch_ras.push(pc.add(INSTR_BYTES));
        } else if kind == BranchKind::Return {
            self.arch_ras.pop();
        }

        // Architectural history.
        let resolved = Prediction {
            kind,
            taken,
            target,
        };
        push_history(self.config.history_mode, &mut self.arch_ghr, pc, &resolved);
    }

    /// Snapshots the speculative GHR and RAS.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            ghr: self.spec_ghr,
            ras: self.spec_ras.clone(),
        }
    }

    /// Restores a snapshot taken with [`BranchUnit::checkpoint`].
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        self.spec_ghr = ckpt.ghr;
        self.spec_ras = ckpt.ras.clone();
    }

    /// Resynchronizes all speculative state to the architectural state.
    /// Called by the front-end after a resolve-time redirect.
    pub fn resync_speculative(&mut self) {
        self.spec_ghr = self.arch_ghr;
        self.spec_ras = self.arch_ras.clone();
    }

    /// Installs a BTB entry from the pre-decoder (post-fetch correction path:
    /// a taken branch the BTB missed is discovered once its line arrives).
    pub fn train_btb_from_predecode(&mut self, pc: Addr, kind: BranchKind, target: Addr) {
        if self.btb.insert(pc, kind, target) {
            self.stats.btb_fills.incr();
        }
    }

    /// Total predictor storage in bits (Table I reporting).
    pub fn storage_bits(&self) -> usize {
        self.direction.storage_bits()
            + self.indirect.storage_bits()
            + self.btb.capacity() * (64 + 3 + 64) // tag+kind+target upper bound
            + self.config.ras_entries * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BranchUnit {
        BranchUnit::new(BranchConfig {
            btb_sets: 64,
            btb_assoc: 4,
            ras_entries: 16,
            indirect_log2_entries: 8,
            direction_log2_entries: 10,
            direction: DirectionKind::Gshare,
            history_mode: HistoryMode::TakenOnly,
        })
    }

    #[test]
    fn unknown_pc_predicts_sequential() {
        let mut u = unit();
        assert!(u.predict_at(Addr::new(0x1000)).is_none());
        assert_eq!(u.stats().btb.hits(), 0);
        assert_eq!(u.stats().btb.total(), 1);
    }

    #[test]
    fn resolve_trains_btb_for_taken_branches_only() {
        let mut u = unit();
        u.resolve(
            Addr::new(0x10),
            BranchKind::CondDirect,
            Addr::new(0x100),
            false,
            false,
        );
        assert!(u.predict_at(Addr::new(0x10)).is_none());
        u.resolve(
            Addr::new(0x10),
            BranchKind::CondDirect,
            Addr::new(0x100),
            true,
            false,
        );
        assert!(u.predict_at(Addr::new(0x10)).is_some());
    }

    #[test]
    fn direction_predictor_learns_through_resolve() {
        let mut u = unit();
        let pc = Addr::new(0x20);
        for _ in 0..8 {
            u.resolve(pc, BranchKind::CondDirect, Addr::new(0x200), true, false);
        }
        let p = u.predict_at(pc).unwrap();
        assert!(p.taken);
        assert_eq!(p.target, Addr::new(0x200));
    }

    #[test]
    fn returns_use_speculative_ras() {
        let mut u = unit();
        let call_pc = Addr::new(0x100);
        let ret_pc = Addr::new(0x2000);
        // Teach the BTB about both branches.
        u.resolve(
            call_pc,
            BranchKind::DirectCall,
            Addr::new(0x2000),
            true,
            false,
        );
        u.resolve(ret_pc, BranchKind::Return, Addr::new(0x104), true, false);
        u.resync_speculative();
        // Prediction path: call pushes 0x104; return pops it.
        let c = u.predict_at(call_pc).unwrap();
        assert_eq!(c.target, Addr::new(0x2000));
        let r = u.predict_at(ret_pc).unwrap();
        assert_eq!(r.target, Addr::new(0x104));
    }

    #[test]
    fn checkpoint_restore_repairs_ras() {
        let mut u = unit();
        let call_pc = Addr::new(0x100);
        u.resolve(
            call_pc,
            BranchKind::DirectCall,
            Addr::new(0x2000),
            true,
            false,
        );
        u.resync_speculative();
        let ckpt = u.checkpoint();
        let _ = u.predict_at(call_pc); // speculative push
        u.restore(&ckpt);
        // After restore the speculative RAS must be empty again: returns fall
        // back to the BTB target.
        let ret_pc = Addr::new(0x300);
        u.resolve(ret_pc, BranchKind::Return, Addr::new(0x999), true, false);
        // resolve pushed arch state; re-sync spec to a known-empty ras
        u.resync_speculative();
        assert_eq!(u.predict_at(ret_pc).unwrap().target, Addr::new(0x999));
    }

    #[test]
    fn indirect_targets_update() {
        let mut u = unit();
        let pc = Addr::new(0x50);
        u.resolve(pc, BranchKind::IndirectJump, Addr::new(0x7000), true, false);
        u.resync_speculative();
        assert_eq!(u.predict_at(pc).unwrap().target, Addr::new(0x7000));
        u.resolve(pc, BranchKind::IndirectJump, Addr::new(0x8000), true, false);
        u.resync_speculative();
        assert_eq!(u.predict_at(pc).unwrap().target, Addr::new(0x8000));
    }

    #[test]
    fn mispredict_stats_counted() {
        let mut u = unit();
        u.resolve(
            Addr::new(0),
            BranchKind::CondDirect,
            Addr::new(0x40),
            true,
            true,
        );
        u.resolve(
            Addr::new(0),
            BranchKind::CondDirect,
            Addr::new(0x40),
            true,
            false,
        );
        assert_eq!(u.stats().mispredicts.get(), 1);
        assert_eq!(u.stats().resolved.get(), 2);
        assert_eq!(u.stats().mpkb(), 500.0);
    }

    #[test]
    fn predecode_training_makes_branch_visible() {
        let mut u = unit();
        let pc = Addr::new(0x60);
        assert!(u.predict_at(pc).is_none());
        u.train_btb_from_predecode(pc, BranchKind::UncondDirect, Addr::new(0x900));
        let p = u.predict_at(pc).unwrap();
        assert!(p.taken);
        assert_eq!(p.target, Addr::new(0x900));
    }

    #[test]
    fn full_history_mode_works_end_to_end() {
        let mut u = BranchUnit::new(BranchConfig {
            history_mode: HistoryMode::Full,
            ..BranchConfig::default()
        });
        let pc = Addr::new(0x40);
        for i in 0..64 {
            let taken = i % 2 == 0;
            u.commit_spec(pc, BranchKind::CondDirect, Addr::new(0x100), taken);
            u.resolve(pc, BranchKind::CondDirect, Addr::new(0x100), taken, false);
        }
        // With alternating outcomes recorded in full history, the predictor
        // should become accurate over the later half.
        assert!(u.stats().direction.rate() > 0.5);
        assert!(u.predict_at(pc).is_some());
    }

    #[test]
    fn commit_spec_maintains_the_speculative_ras() {
        let mut u = unit();
        let call_pc = Addr::new(0x100);
        let ret_pc = Addr::new(0x2000);
        u.resolve(
            call_pc,
            BranchKind::DirectCall,
            Addr::new(0x2000),
            true,
            false,
        );
        u.resolve(ret_pc, BranchKind::Return, Addr::new(0x104), true, false);
        u.resync_speculative();
        // Walk the call on the fill path; the return prediction must pop the
        // pushed address.
        u.commit_spec(call_pc, BranchKind::DirectCall, Addr::new(0x2000), true);
        let p = u.predict_at(ret_pc).unwrap();
        assert_eq!(p.target, Addr::new(0x104));
    }

    #[test]
    fn prediction_does_not_mutate_speculative_state() {
        let mut u = unit();
        let ret_pc = Addr::new(0x300);
        u.resolve(ret_pc, BranchKind::Return, Addr::new(0x999), true, false);
        u.resync_speculative();
        u.commit_spec(
            Addr::new(0x100),
            BranchKind::DirectCall,
            Addr::new(0x300),
            true,
        );
        // Two consecutive predictions must agree: peeking the RAS must not pop.
        let a = u.predict_at(ret_pc).unwrap();
        let b = u.predict_at(ret_pc).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.target, Addr::new(0x104));
    }

    #[test]
    fn storage_accounting_positive() {
        assert!(unit().storage_bits() > 0);
    }
}
