//! A TAGE-lite conditional direction predictor.
//!
//! A compact TAGE (TAgged GEometric history) implementation: a bimodal base
//! table plus tagged tables indexed by geometrically increasing history
//! lengths. The longest-history tag match provides the prediction; useful
//! counters steer allocation on mispredictions. Included as the
//! quality-axis alternative to the hashed perceptron — FDP's run-ahead
//! depth is bounded by direction accuracy, so predictor choice is a natural
//! ablation for the paper's study.

use swip_types::Addr;

use crate::direction::DirectionPredictor;
use crate::GlobalHistory;

/// Geometric history lengths of the tagged tables.
const HISTORIES: [usize; 6] = [4, 8, 16, 32, 64, 128];
const TAG_BITS: u32 = 9;
const CTR_MAX: i8 = 3;
const CTR_MIN: i8 = -4;

#[derive(Copy, Clone, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8,
    useful: u8,
    valid: bool,
}

/// The TAGE-lite predictor.
#[derive(Clone, Debug)]
pub struct TageLite {
    bimodal: Vec<i8>,
    /// All tagged tables in one contiguous allocation, indexed by
    /// `table * 2^index_bits + index` (flat layout; no per-table `Vec`).
    tagged: Vec<TaggedEntry>,
    index_bits: u32,
    /// Deterministic allocation "randomness" (LFSR-ish counter).
    alloc_seed: u64,
}

struct Lookup {
    provider: Option<(usize, usize)>,
    alt_taken: bool,
}

impl TageLite {
    /// Creates a TAGE-lite with `2^log2_entries` entries per tagged table.
    pub fn new(log2_entries: u32) -> Self {
        TageLite {
            bimodal: vec![0; 1 << log2_entries],
            tagged: vec![TaggedEntry::default(); HISTORIES.len() << log2_entries],
            index_bits: log2_entries,
            alloc_seed: 0x9e37_79b9,
        }
    }

    /// Flat slot of entry `i` in tagged table `t`.
    fn slot(&self, t: usize, i: usize) -> usize {
        (t << self.index_bits) + i
    }

    fn base_index(&self, pc: Addr) -> usize {
        let x = pc.raw() >> 2;
        ((x ^ (x >> self.index_bits as u64)) & ((1u64 << self.index_bits) - 1)) as usize
    }

    fn index(&self, table: usize, pc: Addr, hist: &GlobalHistory) -> usize {
        let h = hist.fold(HISTORIES[table], self.index_bits);
        (self.base_index(pc) as u64 ^ h ^ ((table as u64) << 2)) as usize
            & ((1 << self.index_bits) - 1)
    }

    fn tag(&self, table: usize, pc: Addr, hist: &GlobalHistory) -> u16 {
        let h = hist.fold(HISTORIES[table], TAG_BITS);
        let p = (pc.raw() >> 2) ^ (pc.raw() >> (2 + TAG_BITS as u64));
        ((p ^ (h << 1) ^ table as u64) & ((1 << TAG_BITS) - 1)) as u16
    }

    fn lookup(&self, pc: Addr, hist: &GlobalHistory) -> Lookup {
        let mut provider = None;
        let mut alt = None;
        for t in (0..HISTORIES.len()).rev() {
            let e = &self.tagged[self.slot(t, self.index(t, pc, hist))];
            if e.valid && e.tag == self.tag(t, pc, hist) {
                if provider.is_none() {
                    provider = Some((t, self.index(t, pc, hist)));
                } else if alt.is_none() {
                    alt = Some(e.ctr >= 0);
                    break;
                }
            }
        }
        Lookup {
            provider,
            alt_taken: alt.unwrap_or(self.bimodal[self.base_index(pc)] >= 0),
        }
    }

    fn predict_taken(&self, pc: Addr, hist: &GlobalHistory) -> bool {
        let l = self.lookup(pc, hist);
        match l.provider {
            Some((t, i)) => self.tagged[self.slot(t, i)].ctr >= 0,
            None => l.alt_taken,
        }
    }
}

fn bump(ctr: &mut i8, taken: bool) {
    if taken {
        *ctr = (*ctr + 1).min(CTR_MAX);
    } else {
        *ctr = (*ctr - 1).max(CTR_MIN);
    }
}

impl DirectionPredictor for TageLite {
    fn predict(&self, pc: Addr, hist: &GlobalHistory) -> bool {
        self.predict_taken(pc, hist)
    }

    fn update(&mut self, pc: Addr, hist: &GlobalHistory, taken: bool) {
        let l = self.lookup(pc, hist);
        let predicted = match l.provider {
            Some((t, i)) => self.tagged[self.slot(t, i)].ctr >= 0,
            None => l.alt_taken,
        };

        // Provider update (or bimodal when no provider).
        match l.provider {
            Some((t, i)) => {
                let s = self.slot(t, i);
                let provider_pred = self.tagged[s].ctr >= 0;
                // Useful bit: the provider differed from the alternate and
                // was right (increment) or wrong (decrement).
                if provider_pred != l.alt_taken {
                    let e = &mut self.tagged[s];
                    if provider_pred == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                bump(&mut self.tagged[s].ctr, taken);
            }
            None => {
                let idx = self.base_index(pc);
                bump(&mut self.bimodal[idx], taken);
            }
        }

        // Allocation on misprediction: claim a not-useful entry in one
        // longer-history table; age useful bits when none is free.
        if predicted != taken {
            let start = l.provider.map_or(0, |(t, _)| t + 1);
            if start < HISTORIES.len() {
                self.alloc_seed = self
                    .alloc_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let offset = (self.alloc_seed >> 33) as usize % (HISTORIES.len() - start);
                let mut allocated = false;
                for k in 0..(HISTORIES.len() - start) {
                    let t = start + (offset + k) % (HISTORIES.len() - start);
                    let i = self.index(t, pc, hist);
                    let s = self.slot(t, i);
                    if !self.tagged[s].valid || self.tagged[s].useful == 0 {
                        self.tagged[s] = TaggedEntry {
                            tag: self.tag(t, pc, hist),
                            ctr: if taken { 0 } else { -1 },
                            useful: 0,
                            valid: true,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    for t in start..HISTORIES.len() {
                        let i = self.index(t, pc, hist);
                        let s = self.slot(t, i);
                        let e = &mut self.tagged[s];
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
    }

    fn storage_bits(&self) -> usize {
        self.bimodal.len() * 3 + self.tagged.len() * (TAG_BITS as usize + 3 + 2 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train<P: DirectionPredictor>(p: &mut P, pc: Addr, pattern: &[bool], reps: usize) -> f64 {
        let mut h = GlobalHistory::new();
        // Warm-up phase.
        for _ in 0..reps {
            for &t in pattern {
                p.update(pc, &h, t);
                h.push(t);
            }
        }
        // Measurement phase.
        let mut correct = 0;
        let total = pattern.len() * 16;
        for _ in 0..16 {
            for &t in pattern {
                if p.predict(pc, &h) == t {
                    correct += 1;
                }
                p.update(pc, &h, t);
                h.push(t);
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_a_bias() {
        let mut p = TageLite::new(10);
        assert!(train(&mut p, Addr::new(0x40), &[true], 8) > 0.99);
    }

    #[test]
    fn learns_alternation_via_history() {
        let mut p = TageLite::new(10);
        let acc = train(&mut p, Addr::new(0x80), &[true, false], 32);
        assert!(acc > 0.9, "T/NT accuracy {acc}");
    }

    #[test]
    fn learns_a_loop_exit_pattern() {
        // 7 taken then 1 not-taken: classic trip-count pattern.
        let mut p = TageLite::new(10);
        let pattern = [true, true, true, true, true, true, true, false];
        let acc = train(&mut p, Addr::new(0xc0), &pattern, 64);
        assert!(acc > 0.85, "loop-exit accuracy {acc}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_catastrophically() {
        let mut p = TageLite::new(10);
        let a = Addr::new(0x100);
        let b = Addr::new(0x204);
        let mut h = GlobalHistory::new();
        for _ in 0..200 {
            p.update(a, &h, true);
            h.push(true);
            p.update(b, &h, false);
            h.push(false);
        }
        assert!(p.predict(a, &h));
        assert!(!p.predict(b, &h));
    }

    #[test]
    fn storage_accounting() {
        let p = TageLite::new(10);
        assert!(p.storage_bits() > 1024 * 3);
    }
}
