//! The return address stack.

use swip_types::Addr;

/// A fixed-capacity circular return-address stack.
///
/// Calls push their return address; returns pop it. When the stack
/// overflows, the oldest entry is silently overwritten (standard hardware
/// behavior — deep recursion wraps). The stack is cheaply cloneable so the
/// front-end can checkpoint it alongside the GHR for misprediction repair.
///
/// # Examples
///
/// ```
/// use swip_types::Addr;
/// use swip_branch::Ras;
///
/// let mut ras = Ras::new(16);
/// ras.push(Addr::new(0x104));
/// assert_eq!(ras.pop(), Some(Addr::new(0x104)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct Ras {
    entries: Vec<Addr>,
    top: usize,
    len: usize,
}

impl Ras {
    /// Creates a RAS with room for `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ras capacity must be nonzero");
        Ras {
            entries: vec![Addr::ZERO; capacity],
            top: 0,
            len: 0,
        }
    }

    /// Maximum number of live entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a return address, overwriting the oldest entry when full.
    pub fn push(&mut self, ret: Addr) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = ret;
        self.len = (self.len + 1).min(self.entries.len());
    }

    /// Pops the most recent return address, or `None` when empty.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.len == 0 {
            return None;
        }
        let ret = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.len -= 1;
        Some(ret)
    }

    /// The address a return would pop, without popping it.
    pub fn peek(&self) -> Option<Addr> {
        (self.len > 0).then(|| self.entries[self.top])
    }

    /// Discards all entries.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(8);
        ras.push(Addr::new(1));
        ras.push(Addr::new(2));
        ras.push(Addr::new(3));
        assert_eq!(ras.pop(), Some(Addr::new(3)));
        assert_eq!(ras.pop(), Some(Addr::new(2)));
        assert_eq!(ras.pop(), Some(Addr::new(1)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = Ras::new(2);
        ras.push(Addr::new(1));
        ras.push(Addr::new(2));
        ras.push(Addr::new(3)); // overwrites 1
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(Addr::new(3)));
        assert_eq!(ras.pop(), Some(Addr::new(2)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn peek_is_nondestructive() {
        let mut ras = Ras::new(4);
        ras.push(Addr::new(9));
        assert_eq!(ras.peek(), Some(Addr::new(9)));
        assert_eq!(ras.len(), 1);
        assert_eq!(ras.pop(), Some(Addr::new(9)));
        assert_eq!(ras.peek(), None);
    }

    #[test]
    fn clear_empties() {
        let mut ras = Ras::new(4);
        ras.push(Addr::new(1));
        ras.clear();
        assert!(ras.is_empty());
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn checkpoint_restore_via_clone() {
        let mut ras = Ras::new(4);
        ras.push(Addr::new(1));
        ras.push(Addr::new(2));
        let ckpt = ras.clone();
        ras.pop();
        ras.push(Addr::new(99));
        let mut restored = ckpt;
        assert_eq!(restored.pop(), Some(Addr::new(2)));
        assert_eq!(restored.pop(), Some(Addr::new(1)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = Ras::new(0);
    }
}
