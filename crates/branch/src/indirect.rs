//! The indirect branch target predictor.

use swip_types::Addr;

use crate::GlobalHistory;

#[derive(Copy, Clone, Debug)]
struct Entry {
    tag: u64,
    target: Addr,
    valid: bool,
}

/// A path-history-tagged indirect target predictor (ITTAGE-lite).
///
/// A single direct-mapped table is indexed by a hash of the branch PC and
/// the folded global history; entries are tagged with a second hash so
/// aliases miss rather than mispredict silently. This captures the dominant
/// indirect patterns (virtual dispatch that correlates with call path)
/// without the full multi-table ITTAGE machinery, which the paper's platform
/// does not require.
///
/// # Examples
///
/// ```
/// use swip_types::Addr;
/// use swip_branch::{GlobalHistory, IndirectPredictor};
///
/// let mut p = IndirectPredictor::new(10);
/// let h = GlobalHistory::new();
/// let pc = Addr::new(0x1000);
/// assert_eq!(p.predict(pc, &h), None);
/// p.update(pc, &h, Addr::new(0x4000));
/// assert_eq!(p.predict(pc, &h), Some(Addr::new(0x4000)));
/// ```
#[derive(Clone, Debug)]
pub struct IndirectPredictor {
    table: Vec<Entry>,
    index_bits: u32,
    history_len: usize,
}

impl IndirectPredictor {
    /// Creates a predictor with `2^log2_entries` entries.
    pub fn new(log2_entries: u32) -> Self {
        IndirectPredictor {
            table: vec![
                Entry {
                    tag: 0,
                    target: Addr::ZERO,
                    valid: false
                };
                1 << log2_entries
            ],
            index_bits: log2_entries,
            history_len: 27,
        }
    }

    fn index_and_tag(&self, pc: Addr, hist: &GlobalHistory) -> (usize, u64) {
        let p = pc.raw() >> 2;
        let h = hist.fold(self.history_len, self.index_bits);
        let idx = ((p ^ h) & ((1u64 << self.index_bits) - 1)) as usize;
        // Tag from a differently-folded view so index aliases usually differ.
        let tag = (p >> self.index_bits) ^ hist.fold(self.history_len, 11);
        (idx, tag)
    }

    /// Predicts the target of the indirect branch at `pc` under `hist`, or
    /// `None` on a tag miss (the front-end then falls back to the BTB
    /// target).
    pub fn predict(&self, pc: Addr, hist: &GlobalHistory) -> Option<Addr> {
        let (idx, tag) = self.index_and_tag(pc, hist);
        let e = &self.table[idx];
        (e.valid && e.tag == tag).then_some(e.target)
    }

    /// Trains the predictor with a resolved indirect target.
    pub fn update(&mut self, pc: Addr, hist: &GlobalHistory, target: Addr) {
        let (idx, tag) = self.index_and_tag(pc, hist);
        self.table[idx] = Entry {
            tag,
            target,
            valid: true,
        };
    }

    /// Storage budget in bits (for Table I reporting): tag (11) + target (64)
    /// + valid per entry.
    pub fn storage_bits(&self) -> usize {
        self.table.len() * (11 + 64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_of(bits: &[bool]) -> GlobalHistory {
        let mut h = GlobalHistory::new();
        for &b in bits {
            h.push(b);
        }
        h
    }

    #[test]
    fn miss_until_trained() {
        let p = IndirectPredictor::new(8);
        assert_eq!(p.predict(Addr::new(0x10), &GlobalHistory::new()), None);
    }

    #[test]
    fn distinguishes_paths() {
        let mut p = IndirectPredictor::new(10);
        let pc = Addr::new(0x1000);
        let path_a = history_of(&[true, true, false, true]);
        let path_b = history_of(&[false, false, true, false]);
        p.update(pc, &path_a, Addr::new(0xa000));
        p.update(pc, &path_b, Addr::new(0xb000));
        assert_eq!(p.predict(pc, &path_a), Some(Addr::new(0xa000)));
        assert_eq!(p.predict(pc, &path_b), Some(Addr::new(0xb000)));
    }

    #[test]
    fn retrains_on_target_change() {
        let mut p = IndirectPredictor::new(10);
        let pc = Addr::new(0x2000);
        let h = GlobalHistory::new();
        p.update(pc, &h, Addr::new(0x111_000));
        p.update(pc, &h, Addr::new(0x222_000));
        assert_eq!(p.predict(pc, &h), Some(Addr::new(0x222_000)));
    }

    #[test]
    fn storage_is_positive() {
        assert!(IndirectPredictor::new(10).storage_bits() > 0);
    }
}
