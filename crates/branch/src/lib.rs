//! Branch prediction structures for the `swip-fe` decoupled front-end.
//!
//! Fetch-directed prefetching (FDP) relies on the branch-prediction
//! structures to run ahead of fetch: the branch target buffer ([`Btb`])
//! discovers where branches are, the direction predictors
//! ([`Bimodal`], [`Gshare`], [`HashedPerceptron`]) decide conditional
//! outcomes, the return-address stack ([`Ras`]) supplies return targets, and
//! the [`IndirectPredictor`] supplies register-indirect targets. The
//! [`GlobalHistory`] register threads path context through the predictors and
//! supports the Ishii et al. improvement of tracking only taken branches.
//!
//! [`BranchUnit`] composes all of the above behind the interface the
//! front-end crate drives each cycle.
//!
//! # Examples
//!
//! ```
//! use swip_types::{Addr, BranchKind};
//! use swip_branch::{BranchConfig, BranchUnit};
//!
//! let mut unit = BranchUnit::new(BranchConfig::default());
//! // Front-end start-up: nothing known about pc 0x40 yet.
//! assert!(unit.predict_at(Addr::new(0x40)).is_none());
//! // After resolution the BTB learns the branch.
//! unit.resolve(Addr::new(0x40), BranchKind::CondDirect, Addr::new(0x80), true, false);
//! assert!(unit.predict_at(Addr::new(0x40)).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod direction;
mod ghr;
mod indirect;
mod ras;
mod tage;
mod unit;

pub use btb::{Btb, BtbEntry};
pub use direction::{Bimodal, DirectionKind, DirectionPredictor, Gshare, HashedPerceptron};
pub use ghr::GlobalHistory;
pub use indirect::IndirectPredictor;
pub use ras::Ras;
pub use tage::TageLite;
pub use unit::{BranchConfig, BranchStats, BranchUnit, Checkpoint, HistoryMode, Prediction};
