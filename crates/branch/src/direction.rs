//! Conditional-branch direction predictors.

use std::fmt;

use swip_types::Addr;

use crate::GlobalHistory;

/// A conditional-branch direction predictor.
///
/// Implementations are table-based structures updated at branch resolution.
/// The front-end passes the *speculative* global history at prediction time
/// and the *repaired* history at update time, mirroring how a decoupled
/// front-end trains its predictors out of the resolve stage.
pub trait DirectionPredictor: fmt::Debug {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&self, pc: Addr, hist: &GlobalHistory) -> bool;

    /// Trains the predictor with the resolved outcome.
    fn update(&mut self, pc: Addr, hist: &GlobalHistory, taken: bool);

    /// Storage budget in bits (for reporting against Table I).
    fn storage_bits(&self) -> usize;
}

/// Which direction predictor a [`crate::BranchUnit`] instantiates.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum DirectionKind {
    /// PC-indexed 2-bit counters.
    Bimodal,
    /// Global-history-XOR-PC indexed 2-bit counters.
    Gshare,
    /// Multi-table hashed perceptron (ChampSim's default predictor).
    #[default]
    HashedPerceptron,
    /// TAGE-lite: tagged geometric-history tables over a bimodal base.
    TageLite,
}

/// Creates a boxed predictor of the requested kind.
pub(crate) fn make_predictor(
    kind: DirectionKind,
    log2_entries: u32,
) -> Box<dyn DirectionPredictor + Send> {
    match kind {
        DirectionKind::Bimodal => Box::new(Bimodal::new(log2_entries)),
        DirectionKind::Gshare => Box::new(Gshare::new(log2_entries)),
        DirectionKind::HashedPerceptron => Box::new(HashedPerceptron::new(log2_entries)),
        DirectionKind::TageLite => Box::new(crate::TageLite::new(log2_entries)),
    }
}

fn pc_index(pc: Addr, bits: u32) -> usize {
    // Instructions are 4-byte aligned; drop the low bits and mix.
    let x = pc.raw() >> 2;
    let mixed = x ^ (x >> bits as u64);
    (mixed & ((1u64 << bits) - 1)) as usize
}

/// A saturating 2-bit counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
struct Counter2(u8);

impl Counter2 {
    const WEAKLY_TAKEN: Counter2 = Counter2(2);

    fn taken(self) -> bool {
        self.0 >= 2
    }

    fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// PC-indexed table of 2-bit counters — the classic Smith predictor.
///
/// Included as the conservative baseline and as an ablation point; its lower
/// accuracy makes the front-end redirect more often, which is useful when
/// studying FDP sensitivity to prediction quality.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<Counter2>,
    index_bits: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^log2_entries` counters.
    pub fn new(log2_entries: u32) -> Self {
        Bimodal {
            table: vec![Counter2::WEAKLY_TAKEN; 1 << log2_entries],
            index_bits: log2_entries,
        }
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: Addr, _hist: &GlobalHistory) -> bool {
        self.table[pc_index(pc, self.index_bits)].taken()
    }

    fn update(&mut self, pc: Addr, _hist: &GlobalHistory, taken: bool) {
        self.table[pc_index(pc, self.index_bits)].train(taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2
    }
}

/// Gshare: 2-bit counters indexed by PC XOR folded global history.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<Counter2>,
    index_bits: u32,
    history_len: usize,
}

impl Gshare {
    /// Creates a gshare predictor with `2^log2_entries` counters and a
    /// history length equal to the index width.
    pub fn new(log2_entries: u32) -> Self {
        Gshare {
            table: vec![Counter2::WEAKLY_TAKEN; 1 << log2_entries],
            index_bits: log2_entries,
            history_len: log2_entries as usize,
        }
    }

    fn index(&self, pc: Addr, hist: &GlobalHistory) -> usize {
        let h = hist.fold(self.history_len, self.index_bits);
        pc_index(pc, self.index_bits) ^ h as usize
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: Addr, hist: &GlobalHistory) -> bool {
        self.table[self.index(pc, hist)].taken()
    }

    fn update(&mut self, pc: Addr, hist: &GlobalHistory, taken: bool) {
        let idx = self.index(pc, hist);
        self.table[idx].train(taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2
    }
}

/// History lengths for the hashed-perceptron feature tables (geometric-ish
/// spacing, following the championship hashed perceptron).
const HP_HISTORY_LENGTHS: [usize; 8] = [0, 3, 8, 16, 32, 64, 128, 232];
const HP_WEIGHT_MAX: i8 = 63;
const HP_WEIGHT_MIN: i8 = -64;

/// A hashed perceptron direction predictor (Tarjan & Skadron; the ChampSim
/// default "hashed perceptron" used by the paper's simulation platform).
///
/// Eight feature tables of 7-bit signed weights are indexed by hashes of the
/// PC with geometrically-spaced history lengths; the prediction is the sign
/// of the summed weights, and training occurs on a misprediction or when the
/// magnitude of the sum is below an adaptive-free fixed threshold.
#[derive(Clone)]
pub struct HashedPerceptron {
    tables: Vec<Vec<i8>>,
    index_bits: u32,
    threshold: i32,
}

impl fmt::Debug for HashedPerceptron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashedPerceptron")
            .field("tables", &self.tables.len())
            .field("index_bits", &self.index_bits)
            .field("threshold", &self.threshold)
            .finish()
    }
}

impl HashedPerceptron {
    /// Creates a hashed perceptron with `2^log2_entries` weights per table.
    pub fn new(log2_entries: u32) -> Self {
        HashedPerceptron {
            tables: vec![vec![0i8; 1 << log2_entries]; HP_HISTORY_LENGTHS.len()],
            index_bits: log2_entries,
            // θ ≈ 2.14 * h + 20.58 with h the number of features, the classic
            // perceptron threshold heuristic.
            threshold: (2.14 * HP_HISTORY_LENGTHS.len() as f64 + 20.58) as i32,
        }
    }

    fn index(&self, table: usize, pc: Addr, hist: &GlobalHistory) -> usize {
        let len = HP_HISTORY_LENGTHS[table];
        let base = pc_index(pc, self.index_bits) as u64;
        let h = if len == 0 {
            0
        } else {
            hist.fold(len, self.index_bits)
        };
        // Mix in the table number so equal-length collisions differ.
        let mixed = base ^ h ^ ((table as u64) << (self.index_bits / 2));
        (mixed & ((1u64 << self.index_bits) - 1)) as usize
    }

    fn sum(&self, pc: Addr, hist: &GlobalHistory) -> i32 {
        self.tables
            .iter()
            .enumerate()
            .map(|(t, tbl)| tbl[self.index(t, pc, hist)] as i32)
            .sum()
    }
}

impl DirectionPredictor for HashedPerceptron {
    fn predict(&self, pc: Addr, hist: &GlobalHistory) -> bool {
        self.sum(pc, hist) >= 0
    }

    fn update(&mut self, pc: Addr, hist: &GlobalHistory, taken: bool) {
        let sum = self.sum(pc, hist);
        let predicted = sum >= 0;
        if predicted != taken || sum.abs() < self.threshold {
            for t in 0..self.tables.len() {
                let idx = self.index(t, pc, hist);
                let w = &mut self.tables[t][idx];
                if taken {
                    *w = (*w + 1).min(HP_WEIGHT_MAX);
                } else {
                    *w = (*w - 1).max(HP_WEIGHT_MIN);
                }
            }
        }
    }

    fn storage_bits(&self) -> usize {
        self.tables.iter().map(|t| t.len() * 7).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_loop<P: DirectionPredictor>(p: &mut P, pc: Addr, pattern: &[bool], reps: usize) {
        let mut h = GlobalHistory::new();
        for _ in 0..reps {
            for &taken in pattern {
                p.update(pc, &h, taken);
                h.push(taken);
            }
        }
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(10);
        let pc = Addr::new(0x1000);
        train_loop(&mut p, pc, &[true], 8);
        assert!(p.predict(pc, &GlobalHistory::new()));
        train_loop(&mut p, pc, &[false], 8);
        assert!(!p.predict(pc, &GlobalHistory::new()));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = Gshare::new(12);
        let pc = Addr::new(0x2000);
        // Alternating T/NT: bimodal can't learn it, gshare can.
        train_loop(&mut p, pc, &[true, false], 64);
        let mut h = GlobalHistory::new();
        let mut correct = 0;
        let mut expected = true;
        for _ in 0..32 {
            if p.predict(pc, &h) == expected {
                correct += 1;
            }
            p.update(pc, &h, expected);
            h.push(expected);
            expected = !expected;
        }
        assert!(
            correct >= 30,
            "gshare only got {correct}/32 on T/NT pattern"
        );
    }

    #[test]
    fn perceptron_learns_history_correlation() {
        let mut p = HashedPerceptron::new(12);
        let pc = Addr::new(0x3000);
        // Outcome equals the outcome two branches ago (period-4 pattern).
        let pattern = [true, true, false, false];
        train_loop(&mut p, pc, &pattern, 64);
        let mut h = GlobalHistory::new();
        // Rebuild history phase by replaying once without checking.
        for &t in &pattern {
            h.push(t);
        }
        let mut correct = 0;
        for i in 0..64 {
            let expected = pattern[i % 4];
            if p.predict(pc, &h) == expected {
                correct += 1;
            }
            p.update(pc, &h, expected);
            h.push(expected);
        }
        assert!(
            correct >= 56,
            "perceptron got {correct}/64 on periodic pattern"
        );
    }

    #[test]
    fn storage_bits_reported() {
        assert_eq!(Bimodal::new(10).storage_bits(), 2048);
        assert_eq!(Gshare::new(10).storage_bits(), 2048);
        assert_eq!(HashedPerceptron::new(10).storage_bits(), 8 * 1024 * 7);
    }

    #[test]
    fn factory_builds_each_kind() {
        for kind in [
            DirectionKind::Bimodal,
            DirectionKind::Gshare,
            DirectionKind::HashedPerceptron,
            DirectionKind::TageLite,
        ] {
            let p = make_predictor(kind, 8);
            assert!(p.storage_bits() > 0);
        }
    }

    #[test]
    fn prediction_is_pure() {
        let p = HashedPerceptron::new(10);
        let h = GlobalHistory::new();
        let a = p.predict(Addr::new(0x40), &h);
        let b = p.predict(Addr::new(0x40), &h);
        assert_eq!(a, b);
    }
}
