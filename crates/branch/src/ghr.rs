//! The global (branch) history register.

use std::fmt;

/// Width of the global history register in bits.
pub(crate) const HISTORY_BITS: usize = 256;
const WORDS: usize = HISTORY_BITS / 64;

/// A 256-bit global history shift register.
///
/// Bit 0 of word 0 is the most recent outcome. The register is `Copy` so the
/// front-end can cheaply checkpoint it per in-flight branch and restore it on
/// a misprediction — the post-fetch-correction mechanism the paper's FDP
/// model relies on ("the FTQ is flushed, the GHR is corrected, and
/// prefetching continues").
///
/// # Examples
///
/// ```
/// use swip_branch::GlobalHistory;
///
/// let mut h = GlobalHistory::new();
/// h.push(true);
/// h.push(false);
/// assert_eq!(h.recent(2), 0b10); // most recent outcome (false) in bit 0
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct GlobalHistory {
    words: [u64; WORDS],
}

impl GlobalHistory {
    /// Creates an all-zero (all-not-taken) history.
    pub const fn new() -> Self {
        GlobalHistory { words: [0; WORDS] }
    }

    /// Shifts in one outcome (`true` = taken) as the new most-recent bit.
    pub fn push(&mut self, taken: bool) {
        let mut carry = taken as u64;
        for w in self.words.iter_mut() {
            let out = *w >> 63;
            *w = (*w << 1) | carry;
            carry = out;
        }
    }

    /// Returns the `n` most recent outcomes packed into the low bits of a
    /// `u64` (most recent in bit 0).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn recent(&self, n: usize) -> u64 {
        assert!(n <= 64, "recent() supports at most 64 bits, got {n}");
        if n == 0 {
            return 0;
        }
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        self.words[0] & mask
    }

    /// XOR-folds the `len` most recent history bits down to `out_bits` bits.
    ///
    /// This is the standard index-hashing primitive for gshare- and
    /// perceptron-style predictors with long histories.
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is 0 or greater than 63, or if `len` exceeds the
    /// register width.
    pub fn fold(&self, len: usize, out_bits: u32) -> u64 {
        assert!(out_bits > 0 && out_bits < 64, "out_bits must be in 1..64");
        assert!(len <= HISTORY_BITS, "history length {len} exceeds register");
        let mask = (1u64 << out_bits) - 1;
        let mut acc = 0u64;
        let mut taken_bits = 0usize;
        let mut word = 0usize;
        while taken_bits < len {
            let take = (len - taken_bits).min(64);
            let mut w = self.words[word];
            if take < 64 {
                w &= (1u64 << take) - 1;
            }
            // Fold this word's chunk into the accumulator out_bits at a time.
            let mut folded = w;
            while folded != 0 {
                acc ^= folded & mask;
                folded >>= out_bits;
            }
            taken_bits += take;
            word += 1;
        }
        acc & mask
    }

    /// Clears the history to all-not-taken.
    pub fn clear(&mut self) {
        self.words = [0; WORDS];
    }
}

impl fmt::Debug for GlobalHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GlobalHistory({:016x}…)", self.words[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_most_recent_into_bit0() {
        let mut h = GlobalHistory::new();
        h.push(true);
        assert_eq!(h.recent(1), 1);
        h.push(false);
        assert_eq!(h.recent(1), 0);
        assert_eq!(h.recent(2), 0b10);
        h.push(true);
        assert_eq!(h.recent(3), 0b101);
    }

    #[test]
    fn carry_propagates_across_words() {
        let mut h = GlobalHistory::new();
        h.push(true);
        for _ in 0..64 {
            h.push(false);
        }
        // The taken bit is now bit 0 of word 1; folding 65 bits must see it.
        assert_eq!(h.recent(64), 0);
        assert_ne!(h.fold(65, 16), h.fold(64, 16));
    }

    #[test]
    fn fold_is_deterministic_and_bounded() {
        let mut h = GlobalHistory::new();
        for i in 0..100 {
            h.push(i % 3 == 0);
        }
        let a = h.fold(93, 12);
        let b = h.fold(93, 12);
        assert_eq!(a, b);
        assert!(a < (1 << 12));
    }

    #[test]
    fn different_histories_usually_fold_differently() {
        let mut h1 = GlobalHistory::new();
        let mut h2 = GlobalHistory::new();
        for i in 0..32 {
            h1.push(i % 2 == 0);
            h2.push(i % 2 == 1);
        }
        assert_ne!(h1.fold(32, 14), h2.fold(32, 14));
    }

    #[test]
    fn clear_resets() {
        let mut h = GlobalHistory::new();
        h.push(true);
        h.clear();
        assert_eq!(h, GlobalHistory::new());
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn recent_too_wide_panics() {
        let _ = GlobalHistory::new().recent(65);
    }
}
