//! The branch target buffer.

use swip_types::{Addr, BranchKind};

/// One BTB entry: the branch's kind and (last-seen) target.
///
/// FDP's path speculation treats instructions that miss in the BTB as
/// non-branches, so the BTB is the front-end's *only* map of where control
/// flow can diverge — its reach is a first-order determinant of how far FDP
/// can run ahead.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BtbEntry {
    /// PC of the branch this entry describes.
    pub pc: Addr,
    /// Branch flavor recorded at the last resolution.
    pub kind: BranchKind,
    /// Last-seen target (meaningless for returns, which use the RAS).
    pub target: Addr,
}

#[derive(Copy, Clone, Debug)]
struct Way {
    tag: u64,
    kind: BranchKind,
    target: Addr,
    lru: u64,
    valid: bool,
}

impl Way {
    const INVALID: Way = Way {
        tag: 0,
        kind: BranchKind::CondDirect,
        target: Addr::ZERO,
        lru: 0,
        valid: false,
    };
}

/// A set-associative branch target buffer with per-set LRU replacement.
///
/// # Examples
///
/// ```
/// use swip_types::{Addr, BranchKind};
/// use swip_branch::Btb;
///
/// let mut btb = Btb::new(1024, 4);
/// let pc = Addr::new(0x1004);
/// assert!(btb.lookup(pc).is_none());
/// btb.insert(pc, BranchKind::UncondDirect, Addr::new(0x2000));
/// assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x2000));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    /// All ways of all sets in one contiguous allocation, indexed by
    /// `set * assoc + way` (flat layout; no per-set `Vec` indirection).
    ways: Vec<Way>,
    set_bits: u32,
    assoc: usize,
    tick: u64,
}

impl Btb {
    /// Creates a BTB with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either argument is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(assoc > 0, "associativity must be nonzero");
        Btb {
            ways: vec![Way::INVALID; sets * assoc],
            set_bits: sets.trailing_zeros(),
            assoc,
            tick: 0,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.ways.len()
    }

    fn index_and_tag(&self, pc: Addr) -> (usize, u64) {
        let x = pc.raw() >> 2; // 4-byte aligned instructions
                               // Hash high bits into the index (as real BTBs do) so regularly
                               // strided code layouts do not collapse onto a few sets.
        let mixed = x ^ (x >> self.set_bits) ^ (x >> (2 * self.set_bits));
        let idx = (mixed & ((1u64 << self.set_bits) - 1)) as usize;
        let tag = x; // full tag; hashing the index forbids dropping bits
        (idx, tag)
    }

    /// Looks up `pc`, refreshing LRU state on a hit.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        let (idx, tag) = self.index_and_tag(pc);
        self.tick += 1;
        let tick = self.tick;
        let base = idx * self.assoc;
        for way in &mut self.ways[base..base + self.assoc] {
            if way.valid && way.tag == tag {
                way.lru = tick;
                return Some(BtbEntry {
                    pc,
                    kind: way.kind,
                    target: way.target,
                });
            }
        }
        None
    }

    /// Looks up `pc` without perturbing replacement state.
    pub fn peek(&self, pc: Addr) -> Option<BtbEntry> {
        let (idx, tag) = self.index_and_tag(pc);
        let base = idx * self.assoc;
        self.ways[base..base + self.assoc]
            .iter()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| BtbEntry {
                pc,
                kind: w.kind,
                target: w.target,
            })
    }

    /// Installs or updates the entry for `pc`. Returns `true` if this
    /// *allocated* a new entry (miss fill), `false` if it updated in place.
    pub fn insert(&mut self, pc: Addr, kind: BranchKind, target: Addr) -> bool {
        let (idx, tag) = self.index_and_tag(pc);
        self.tick += 1;
        let tick = self.tick;
        let base = idx * self.assoc;
        let set = &mut self.ways[base..base + self.assoc];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.kind = kind;
            way.target = target;
            way.lru = tick;
            return false;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("btb set is never empty");
        *victim = Way {
            tag,
            kind,
            target,
            lru: tick,
            valid: true,
        };
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(64, 2);
        let pc = Addr::new(0x1000);
        assert!(btb.lookup(pc).is_none());
        assert!(btb.insert(pc, BranchKind::CondDirect, Addr::new(0x40)));
        let e = btb.lookup(pc).unwrap();
        assert_eq!(e.kind, BranchKind::CondDirect);
        assert_eq!(e.target, Addr::new(0x40));
    }

    #[test]
    fn update_in_place_returns_false() {
        let mut btb = Btb::new(64, 2);
        let pc = Addr::new(0x1000);
        btb.insert(pc, BranchKind::CondDirect, Addr::new(0x40));
        assert!(!btb.insert(pc, BranchKind::CondDirect, Addr::new(0x80)));
        assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x80));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut btb = Btb::new(1, 2);
        // All PCs map to set 0.
        let a = Addr::new(0x0);
        let b = Addr::new(0x4);
        let c = Addr::new(0x8);
        btb.insert(a, BranchKind::CondDirect, Addr::new(0x100));
        btb.insert(b, BranchKind::CondDirect, Addr::new(0x200));
        btb.lookup(a); // refresh a; b becomes LRU
        btb.insert(c, BranchKind::CondDirect, Addr::new(0x300));
        assert!(btb.peek(a).is_some());
        assert!(btb.peek(b).is_none());
        assert!(btb.peek(c).is_some());
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut btb = Btb::new(1, 2);
        let a = Addr::new(0x0);
        let b = Addr::new(0x4);
        let c = Addr::new(0x8);
        btb.insert(a, BranchKind::CondDirect, Addr::new(0x100));
        btb.insert(b, BranchKind::CondDirect, Addr::new(0x200));
        btb.peek(a); // must NOT refresh; a stays LRU
        btb.insert(c, BranchKind::CondDirect, Addr::new(0x300));
        assert!(btb.peek(a).is_none());
        assert!(btb.peek(b).is_some());
    }

    #[test]
    fn distinct_pcs_do_not_alias_within_capacity() {
        let mut btb = Btb::new(256, 4);
        for i in 0..256u64 {
            btb.insert(Addr::new(i * 4), BranchKind::UncondDirect, Addr::new(i));
        }
        for i in 0..256u64 {
            assert_eq!(
                btb.peek(Addr::new(i * 4)).unwrap().target,
                Addr::new(i),
                "pc {i} lost"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _ = Btb::new(3, 2);
    }

    #[test]
    fn capacity() {
        assert_eq!(Btb::new(1024, 8).capacity(), 8192);
    }
}
