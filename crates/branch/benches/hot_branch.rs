//! Microbenchmarks for the branch crate's hot kernels: the flat
//! set-associative BTB and the full predict/resolve path through the
//! TAGE-lite direction predictor's flattened tagged tables.

use criterion::{criterion_group, criterion_main, Criterion};
use swip_branch::{BranchConfig, BranchUnit, Btb, DirectionKind};
use swip_types::{Addr, BranchKind};

fn bench_btb(c: &mut Criterion) {
    let mut g = c.benchmark_group("branch_hot");
    g.bench_function("btb_lookup_hit", |b| {
        let mut btb = Btb::new(1024, 8);
        for i in 0..4096u64 {
            btb.insert(
                Addr::new(0x1000 + i * 8),
                BranchKind::CondDirect,
                Addr::new(0x9000),
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            std::hint::black_box(btb.lookup(Addr::new(0x1000 + i * 8)))
        });
    });
    g.bench_function("btb_insert_churn", |b| {
        let mut btb = Btb::new(1024, 8);
        let mut i = 0u64;
        b.iter(|| {
            // A footprint larger than capacity keeps inserts replacing
            // LRU ways in the flat array.
            i = (i + 1) % 16384;
            std::hint::black_box(btb.insert(
                Addr::new(0x1000 + i * 8),
                BranchKind::CondDirect,
                Addr::new(0x9000),
            ))
        });
    });
    g.finish();
}

fn bench_tage(c: &mut Criterion) {
    let mut g = c.benchmark_group("branch_hot");
    let config = BranchConfig {
        direction: DirectionKind::TageLite,
        ..BranchConfig::default()
    };
    g.bench_function("tage_predict_at", |b| {
        let mut unit = BranchUnit::new(config.clone());
        for i in 0..1024u64 {
            unit.resolve(
                Addr::new(0x1000 + i * 12),
                BranchKind::CondDirect,
                Addr::new(0x4000 + i * 4),
                i.is_multiple_of(3),
                false,
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            std::hint::black_box(unit.predict_at(Addr::new(0x1000 + i * 12)))
        });
    });
    g.bench_function("tage_resolve", |b| {
        let mut unit = BranchUnit::new(config.clone());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            unit.resolve(
                Addr::new(0x1000 + i * 8),
                BranchKind::CondDirect,
                Addr::new(0x9000),
                i.is_multiple_of(3),
                false,
            );
        });
    });
    g.finish();
}

criterion_group!(benches, bench_btb, bench_tage);
criterion_main!(benches);
