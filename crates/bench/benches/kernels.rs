//! Criterion microbenchmarks for the simulator's hot kernels plus
//! end-to-end throughput of the pipelines behind every paper figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use swip_asmdb::{Asmdb, AsmdbConfig, Cfg};
use swip_branch::{BranchConfig, BranchUnit, GlobalHistory};
use swip_cache::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy, ReplacementKind};
use swip_core::{SimConfig, Simulator};
use swip_frontend::{Frontend, FrontendConfig};
use swip_trace::Trace;
use swip_types::{Addr, BranchKind};
use swip_workloads::{cvp1_suite, generate};

fn small_workload() -> Trace {
    let mut spec = cvp1_suite(30_000).remove(16);
    spec.instructions = 30_000;
    generate(&spec)
}

fn bench_branch(c: &mut Criterion) {
    let mut g = c.benchmark_group("branch");
    g.bench_function("predict_at", |b| {
        let mut unit = BranchUnit::new(BranchConfig::default());
        for i in 0..1024u64 {
            unit.resolve(
                Addr::new(0x1000 + i * 12),
                BranchKind::CondDirect,
                Addr::new(0x4000 + i * 4),
                true,
                false,
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            std::hint::black_box(unit.predict_at(Addr::new(0x1000 + i * 12)))
        });
    });
    g.bench_function("resolve", |b| {
        let mut unit = BranchUnit::new(BranchConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            unit.resolve(
                Addr::new(0x1000 + i * 8),
                BranchKind::CondDirect,
                Addr::new(0x9000),
                i.is_multiple_of(3),
                false,
            );
        });
    });
    g.bench_function("ghr_fold", |b| {
        let mut h = GlobalHistory::new();
        for i in 0u64..200 {
            h.push(i.is_multiple_of(3));
        }
        b.iter(|| std::hint::black_box(h.fold(128, 14)));
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("l1_access_hit", |b| {
        let mut cache = Cache::new(CacheConfig::with_capacity_kib(
            "L1I",
            32,
            8,
            4,
            8,
            ReplacementKind::Lru,
        ));
        for n in 0..512u64 {
            cache.fill(Addr::new(n * 64).line(), false);
        }
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % 512;
            std::hint::black_box(cache.access(Addr::new(n * 64).line(), false))
        });
    });
    g.bench_function("hierarchy_fetch", |b| {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::sunny_cove_like());
        let mut now = 0u64;
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 7) % 4096;
            now += 500;
            std::hint::black_box(mem.fetch_instr(Addr::new(n * 64).line(), now))
        });
    });
    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    g.sample_size(20);
    let trace = small_workload();
    g.bench_function("drain_30k_instrs", |b| {
        b.iter_batched(
            || {
                (
                    Frontend::new(FrontendConfig::industry_standard()),
                    MemoryHierarchy::new(HierarchyConfig::sunny_cove_like()),
                )
            },
            |(mut fe, mut mem)| {
                let mut out = Vec::new();
                let mut now = 0;
                while !fe.is_done(&trace) && now < 10_000_000 {
                    out.clear();
                    fe.cycle(now, &trace, &mut mem, usize::MAX, &mut out);
                    for d in &out {
                        let i = &trace.instructions()[d.seq as usize];
                        if i.is_branch() {
                            fe.handle_resolution(d.seq, i, now + 1);
                        }
                    }
                    now += 1;
                }
                now
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let trace = small_workload();
    for (name, cfg) in [
        ("ftq2_30k", SimConfig::conservative()),
        ("ftq24_30k", SimConfig::sunny_cove_like()),
    ] {
        g.bench_function(name, |b| {
            let sim = Simulator::new(cfg.clone());
            b.iter(|| std::hint::black_box(sim.run(&trace)));
        });
    }
    g.finish();
}

fn bench_asmdb(c: &mut Criterion) {
    let mut g = c.benchmark_group("asmdb");
    g.sample_size(10);
    let trace = small_workload();
    g.bench_function("cfg_from_trace", |b| {
        b.iter(|| std::hint::black_box(Cfg::from_trace(&trace)));
    });
    let asmdb = Asmdb::new(AsmdbConfig::default());
    let cfg = SimConfig::conservative();
    let profile = asmdb.profile(&trace, &cfg);
    g.bench_function("plan", |b| {
        b.iter(|| std::hint::black_box(asmdb.plan(&trace, &profile, &cfg)));
    });
    let (plan, _) = asmdb.plan(&trace, &profile, &cfg);
    g.bench_function("rewrite", |b| {
        b.iter(|| std::hint::black_box(swip_asmdb::rewrite_trace(&trace, &plan)));
    });
    g.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    g.bench_function("workload_generate_30k", |b| {
        let spec = {
            let mut s = cvp1_suite(30_000).remove(16);
            s.instructions = 30_000;
            s
        };
        b.iter(|| std::hint::black_box(generate(&spec)));
    });
    let trace = small_workload();
    g.bench_function("trace_codec_roundtrip", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            trace.write_to(&mut buf).unwrap();
            std::hint::black_box(Trace::read_from(buf.as_slice()).unwrap())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_branch,
    bench_cache,
    bench_frontend,
    bench_simulator,
    bench_asmdb,
    bench_substrate
);
criterion_main!(benches);
