//! Integration tests for the parallel experiment engine: determinism
//! across thread counts, memoization (in-memory and on-disk), and clean
//! failure on poisoned jobs.

use std::sync::atomic::{AtomicUsize, Ordering};

use swip_bench::{figures, ExperimentPlan, SessionBuilder};

/// The engine's thread count must not affect results: a plan run on one
/// thread and on four threads yields byte-identical figure rows in the
/// same order.
#[test]
fn results_are_deterministic_across_thread_counts() {
    let rows: Vec<Vec<String>> = [1usize, 4]
        .iter()
        .map(|&threads| {
            let session = SessionBuilder::new()
                .instructions(15_000)
                .stride(24)
                .threads(threads)
                .build()
                .unwrap();
            let plan = ExperimentPlan::all_figures(session.workloads());
            session
                .run(&plan)
                .unwrap()
                .iter()
                .map(figures::fig1_row)
                .collect()
        })
        .collect();
    assert!(!rows[0].is_empty());
    assert_eq!(rows[0], rows[1]);
}

/// Running the same plan twice on one session generates each trace and
/// AsmDB profile exactly once; the second pass is served from the memo.
#[test]
fn second_run_hits_the_cache() {
    let session = SessionBuilder::new()
        .instructions(10_000)
        .stride(24)
        .threads(2)
        .build()
        .unwrap();
    let plan = ExperimentPlan::all_figures(session.workloads());
    let n = plan.workloads().len();

    session.run(&plan).unwrap();
    let first = session.counters();
    assert_eq!(first.trace_generations, n as u64);
    assert_eq!(first.asmdb_profiles, n as u64);

    session.run(&plan).unwrap();
    let second = session.counters();
    assert_eq!(second.trace_generations, n as u64, "trace regenerated");
    assert_eq!(second.asmdb_profiles, n as u64, "asmdb re-profiled");
    assert!(second.trace_cache_hits > first.trace_cache_hits);
    assert!(second.asmdb_cache_hits > first.asmdb_cache_hits);
    assert_eq!(second.sim_runs, 2 * first.sim_runs);
}

/// Two sessions sharing a cache directory: the second reads every trace
/// from disk instead of regenerating it.
#[test]
fn disk_cache_is_shared_between_sessions() {
    let dir = std::env::temp_dir().join(format!("swip-engine-cache-{}", std::process::id()));
    let build = || {
        SessionBuilder::new()
            .instructions(8_000)
            .stride(24)
            .threads(2)
            .cache_dir(&dir)
            .build()
            .unwrap()
    };

    let first = build();
    let specs = first.workloads();
    let n = specs.len();
    for spec in &specs {
        first.trace(spec);
    }
    assert_eq!(first.counters().trace_generations, n as u64);

    let second = build();
    for spec in &specs {
        second.trace(spec);
    }
    let c = second.counters();
    assert_eq!(c.trace_generations, 0, "disk cache missed");
    assert_eq!(c.trace_disk_hits, n as u64);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A panicking job fails the whole session with a typed error naming the
/// job — it must not hang the pool or poison unrelated jobs' results.
#[test]
fn poisoned_job_fails_cleanly() {
    let session = SessionBuilder::new()
        .instructions(5_000)
        .stride(24)
        .threads(4)
        .build()
        .unwrap();
    let items: Vec<usize> = (0..8).collect();
    let completed = AtomicUsize::new(0);
    let err = session
        .par_map(&items, |_, &i| {
            if i == 3 {
                panic!("injected failure in job {i}");
            }
            completed.fetch_add(1, Ordering::SeqCst);
            i * 2
        })
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("injected failure"), "unhelpful error: {msg}");
}
