//! [`ExperimentPlan`]: the deduplicated workload × configuration job
//! matrix a [`Session`](crate::Session) executes.

use std::fmt;

use swip_report::PlanSpec;
use swip_types::PrefetcherId;
use swip_workloads::WorkloadSpec;

use crate::ConfigId;

/// A typed rejection while resolving a [`PlanSpec`] against a session's
/// workload suite.
///
/// Resolution failures are admission errors: `swip-serve` maps them to
/// HTTP 400 before a job is ever queued, so a typo'd workload name can
/// never reach a worker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// The spec named a workload the session is not scoped to (wrong name,
    /// or excluded by the session's stride).
    UnknownWorkload(String),
    /// The spec named a configuration label that does not exist.
    UnknownConfig(String),
    /// The spec named a prefetcher label that does not exist.
    UnknownPrefetcher(String),
    /// The spec resolved to zero jobs.
    Empty,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownWorkload(name) => {
                write!(f, "unknown workload {name:?} (not in this session's suite)")
            }
            PlanError::UnknownConfig(label) => write!(
                f,
                "unknown configuration {label:?} (expected one of: {})",
                ConfigId::ALL.map(ConfigId::label).join(", ")
            ),
            PlanError::UnknownPrefetcher(label) => write!(
                f,
                "unknown prefetcher {label:?} (expected one of: {})",
                PrefetcherId::label_list()
            ),
            PlanError::Empty => write!(f, "plan resolves to zero jobs"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A deduplicated experiment matrix: every (workload, configuration) pair
/// becomes one independent job on the session's thread pool.
///
/// Workloads are deduplicated by name (first occurrence wins) and
/// configurations are stored in the canonical [`ConfigId::ALL`] order, so
/// two plans built from the same sets compare and execute identically
/// regardless of the order the caller listed them in.
#[derive(Clone, Debug)]
pub struct ExperimentPlan {
    workloads: Vec<WorkloadSpec>,
    configs: Vec<ConfigId>,
}

impl ExperimentPlan {
    /// Builds a plan from `workloads` × `configs`, deduplicating both axes.
    pub fn new(workloads: Vec<WorkloadSpec>, configs: &[ConfigId]) -> Self {
        let mut seen = std::collections::HashSet::new();
        let workloads: Vec<WorkloadSpec> = workloads
            .into_iter()
            .filter(|w| seen.insert(w.name.clone()))
            .collect();
        let mut ids: Vec<ConfigId> = ConfigId::ALL
            .into_iter()
            .filter(|id| configs.contains(id))
            .collect();
        ids.dedup();
        ExperimentPlan {
            workloads,
            configs: ids,
        }
    }

    /// The paper's six-configuration plan behind Figures 1 and 9–11.
    pub fn all_figures(workloads: Vec<WorkloadSpec>) -> Self {
        Self::new(workloads, &ConfigId::PAPER)
    }

    /// The prefetcher-zoo comparison plan: one industry-standard-front-end
    /// configuration per mechanism in `prefetchers`.
    pub fn prefetcher_zoo(workloads: Vec<WorkloadSpec>, prefetchers: &[PrefetcherId]) -> Self {
        let configs: Vec<ConfigId> = prefetchers
            .iter()
            .map(|&p| ConfigId::for_prefetcher(p))
            .collect();
        Self::new(workloads, &configs)
    }

    /// Resolves a wire [`PlanSpec`] against the workloads `available` to
    /// this session. An empty axis in the spec selects everything on that
    /// axis (for configurations: the paper's six, [`ConfigId::PAPER`]);
    /// names and labels are matched exactly. Prefetcher labels union their
    /// canonical configuration ([`ConfigId::for_prefetcher`]) into the
    /// selection — naming one therefore narrows an otherwise-empty
    /// `configs` axis to exactly that mechanism's configuration.
    ///
    /// # Errors
    ///
    /// [`PlanError::UnknownWorkload`] / [`PlanError::UnknownConfig`] /
    /// [`PlanError::UnknownPrefetcher`] for names that do not resolve, and
    /// [`PlanError::Empty`] when the plan would contain zero jobs.
    pub fn from_spec(spec: &PlanSpec, available: &[WorkloadSpec]) -> Result<Self, PlanError> {
        let workloads: Vec<WorkloadSpec> = if spec.workloads.is_empty() {
            available.to_vec()
        } else {
            spec.workloads
                .iter()
                .map(|name| {
                    available
                        .iter()
                        .find(|w| &w.name == name)
                        .cloned()
                        .ok_or_else(|| PlanError::UnknownWorkload(name.clone()))
                })
                .collect::<Result<_, _>>()?
        };
        let mut configs: Vec<ConfigId> = if spec.configs.is_empty() && spec.prefetchers.is_empty() {
            ConfigId::PAPER.to_vec()
        } else {
            spec.configs
                .iter()
                .map(|label| {
                    ConfigId::from_label(label).map_err(|e| PlanError::UnknownConfig(e.label))
                })
                .collect::<Result<_, _>>()?
        };
        for label in &spec.prefetchers {
            let prefetcher = PrefetcherId::from_label(label)
                .map_err(|e| PlanError::UnknownPrefetcher(e.label))?;
            configs.push(ConfigId::for_prefetcher(prefetcher));
        }
        let plan = Self::new(workloads, &configs);
        if plan.is_empty() {
            return Err(PlanError::Empty);
        }
        Ok(plan)
    }

    /// This plan as a wire [`PlanSpec`] (both name axes always explicit).
    /// Custom insertions are admission-time inputs, and prefetcher labels
    /// are resolved into configurations — neither survives into the
    /// resolved plan, so the spec never carries them.
    pub fn to_spec(&self) -> PlanSpec {
        PlanSpec {
            workloads: self.workloads.iter().map(|w| w.name.clone()).collect(),
            configs: self.configs.iter().map(|c| c.label().to_string()).collect(),
            insertions: Vec::new(),
            prefetchers: Vec::new(),
        }
    }

    /// The plan's workloads, in execution (and result) order.
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// The plan's configurations, in canonical order.
    pub fn configs(&self) -> &[ConfigId] {
        &self.configs
    }

    /// Whether executing this plan requires the AsmDB pipeline (and hence
    /// produces bloat accounting in its results).
    pub fn wants_asmdb(&self) -> bool {
        self.configs.iter().any(|c| c.needs_asmdb())
    }

    /// Number of independent jobs (workloads × configurations).
    pub fn job_count(&self) -> usize {
        self.workloads.len() * self.configs.len()
    }

    /// True when the plan has no jobs.
    pub fn is_empty(&self) -> bool {
        self.job_count() == 0
    }

    /// The plan's independent cells in workload-major plan order: one
    /// `(workload name, config label)` pair per job. This is the shard
    /// axis for `swip-fleet` — every cell is an independent unit of work,
    /// and reassembling cells in this order reproduces the single-node
    /// report byte-for-byte.
    pub fn cells(&self) -> Vec<(String, String)> {
        self.jobs()
            .into_iter()
            .map(|(w, c)| (self.workloads[w].name.clone(), c.label().to_string()))
            .collect()
    }

    /// All jobs in workload-major order: `(workload index, config)`.
    pub(crate) fn jobs(&self) -> Vec<(usize, ConfigId)> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for w in 0..self.workloads.len() {
            for &c in &self.configs {
                jobs.push((w, c));
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_workloads::cvp1_suite;

    #[test]
    fn deduplicates_both_axes() {
        let mut w = cvp1_suite(1_000)[..2].to_vec();
        w.push(w[0].clone()); // duplicate workload
        let plan = ExperimentPlan::new(
            w,
            &[
                ConfigId::Fdp,
                ConfigId::Base,
                ConfigId::Fdp, // duplicate config
            ],
        );
        assert_eq!(plan.workloads().len(), 2);
        // Canonical order: Base before Fdp, regardless of caller order.
        assert_eq!(plan.configs(), &[ConfigId::Base, ConfigId::Fdp]);
        assert_eq!(plan.job_count(), 4);
        assert!(!plan.wants_asmdb());
    }

    #[test]
    fn spec_resolution_round_trips() {
        let available = cvp1_suite(1_000)[..4].to_vec();
        // Empty axes select the paper's default sweep.
        let plan = ExperimentPlan::from_spec(&PlanSpec::default(), &available).unwrap();
        assert_eq!(plan.workloads().len(), 4);
        assert_eq!(plan.configs(), &ConfigId::PAPER);
        // Named axes resolve exactly, and to_spec round-trips.
        let spec = PlanSpec {
            workloads: vec![available[1].name.clone()],
            configs: vec!["ftq2_fdp".into(), "ftq24_fdp".into()],
            insertions: Vec::new(),
            prefetchers: Vec::new(),
        };
        let plan = ExperimentPlan::from_spec(&spec, &available).unwrap();
        assert_eq!(plan.workloads().len(), 1);
        assert_eq!(plan.configs(), &[ConfigId::Base, ConfigId::Fdp]);
        let plan2 = ExperimentPlan::from_spec(&plan.to_spec(), &available).unwrap();
        assert_eq!(plan2.to_spec(), plan.to_spec());
    }

    #[test]
    fn prefetcher_labels_resolve_to_zoo_configs() {
        let available = cvp1_suite(1_000)[..2].to_vec();
        // Prefetchers alone narrow the plan to their configurations.
        let spec = PlanSpec {
            workloads: Vec::new(),
            configs: Vec::new(),
            insertions: Vec::new(),
            prefetchers: vec!["mana".into(), "shadow-btb".into()],
        };
        let plan = ExperimentPlan::from_spec(&spec, &available).unwrap();
        assert_eq!(plan.configs(), &[ConfigId::Mana, ConfigId::ShadowBtb]);
        assert!(!plan.wants_asmdb());
        // Prefetchers union with explicit configs, canonical order kept.
        let spec = PlanSpec {
            workloads: Vec::new(),
            configs: vec!["ftq24_fdp".into()],
            insertions: Vec::new(),
            prefetchers: vec!["asmdb".into()],
        };
        let plan = ExperimentPlan::from_spec(&spec, &available).unwrap();
        assert_eq!(plan.configs(), &[ConfigId::Fdp, ConfigId::AsmdbFdp]);
        // The full zoo helper holds the front-end constant.
        let plan = ExperimentPlan::prefetcher_zoo(available, &PrefetcherId::ALL);
        assert_eq!(
            plan.configs(),
            &[
                ConfigId::Fdp,
                ConfigId::AsmdbFdp,
                ConfigId::Mana,
                ConfigId::ShadowBtb
            ]
        );
    }

    #[test]
    fn spec_resolution_rejects_unknown_names() {
        let available = cvp1_suite(1_000)[..2].to_vec();
        let spec = PlanSpec {
            workloads: vec!["nope".into()],
            configs: vec![],
            insertions: Vec::new(),
            prefetchers: Vec::new(),
        };
        assert_eq!(
            ExperimentPlan::from_spec(&spec, &available).unwrap_err(),
            PlanError::UnknownWorkload("nope".into())
        );
        let spec = PlanSpec {
            workloads: vec![],
            configs: vec!["turbo".into()],
            insertions: Vec::new(),
            prefetchers: Vec::new(),
        };
        let err = ExperimentPlan::from_spec(&spec, &available).unwrap_err();
        assert_eq!(err, PlanError::UnknownConfig("turbo".into()));
        assert!(err.to_string().contains("ftq24_asmdb_noov"), "{err}");
        let spec = PlanSpec {
            workloads: vec![],
            configs: vec![],
            insertions: Vec::new(),
            prefetchers: vec!["markov".into()],
        };
        let err = ExperimentPlan::from_spec(&spec, &available).unwrap_err();
        assert_eq!(err, PlanError::UnknownPrefetcher("markov".into()));
        assert!(err.to_string().contains("shadow_btb"), "{err}");
        assert_eq!(
            ExperimentPlan::from_spec(&PlanSpec::default(), &[]).unwrap_err(),
            PlanError::Empty
        );
    }

    #[test]
    fn jobs_are_workload_major() {
        let plan = ExperimentPlan::new(
            cvp1_suite(1_000)[..2].to_vec(),
            &[ConfigId::Base, ConfigId::AsmdbFdp],
        );
        assert!(plan.wants_asmdb());
        assert_eq!(
            plan.jobs(),
            vec![
                (0, ConfigId::Base),
                (0, ConfigId::AsmdbFdp),
                (1, ConfigId::Base),
                (1, ConfigId::AsmdbFdp),
            ]
        );
    }
}
