//! [`ExperimentPlan`]: the deduplicated workload × configuration job
//! matrix a [`Session`](crate::Session) executes.

use swip_workloads::WorkloadSpec;

use crate::ConfigId;

/// A deduplicated experiment matrix: every (workload, configuration) pair
/// becomes one independent job on the session's thread pool.
///
/// Workloads are deduplicated by name (first occurrence wins) and
/// configurations are stored in the canonical [`ConfigId::ALL`] order, so
/// two plans built from the same sets compare and execute identically
/// regardless of the order the caller listed them in.
#[derive(Clone, Debug)]
pub struct ExperimentPlan {
    workloads: Vec<WorkloadSpec>,
    configs: Vec<ConfigId>,
}

impl ExperimentPlan {
    /// Builds a plan from `workloads` × `configs`, deduplicating both axes.
    pub fn new(workloads: Vec<WorkloadSpec>, configs: &[ConfigId]) -> Self {
        let mut seen = std::collections::HashSet::new();
        let workloads: Vec<WorkloadSpec> = workloads
            .into_iter()
            .filter(|w| seen.insert(w.name.clone()))
            .collect();
        let mut ids: Vec<ConfigId> = ConfigId::ALL
            .into_iter()
            .filter(|id| configs.contains(id))
            .collect();
        ids.dedup();
        ExperimentPlan {
            workloads,
            configs: ids,
        }
    }

    /// The full six-configuration plan behind Figures 1 and 9–11.
    pub fn all_figures(workloads: Vec<WorkloadSpec>) -> Self {
        Self::new(workloads, &ConfigId::ALL)
    }

    /// The plan's workloads, in execution (and result) order.
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// The plan's configurations, in canonical order.
    pub fn configs(&self) -> &[ConfigId] {
        &self.configs
    }

    /// Whether executing this plan requires the AsmDB pipeline (and hence
    /// produces bloat accounting in its results).
    pub fn wants_asmdb(&self) -> bool {
        self.configs.iter().any(|c| c.needs_asmdb())
    }

    /// Number of independent jobs (workloads × configurations).
    pub fn job_count(&self) -> usize {
        self.workloads.len() * self.configs.len()
    }

    /// True when the plan has no jobs.
    pub fn is_empty(&self) -> bool {
        self.job_count() == 0
    }

    /// All jobs in workload-major order: `(workload index, config)`.
    pub(crate) fn jobs(&self) -> Vec<(usize, ConfigId)> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for w in 0..self.workloads.len() {
            for &c in &self.configs {
                jobs.push((w, c));
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_workloads::cvp1_suite;

    #[test]
    fn deduplicates_both_axes() {
        let mut w = cvp1_suite(1_000)[..2].to_vec();
        w.push(w[0].clone()); // duplicate workload
        let plan = ExperimentPlan::new(
            w,
            &[
                ConfigId::Fdp,
                ConfigId::Base,
                ConfigId::Fdp, // duplicate config
            ],
        );
        assert_eq!(plan.workloads().len(), 2);
        // Canonical order: Base before Fdp, regardless of caller order.
        assert_eq!(plan.configs(), &[ConfigId::Base, ConfigId::Fdp]);
        assert_eq!(plan.job_count(), 4);
        assert!(!plan.wants_asmdb());
    }

    #[test]
    fn jobs_are_workload_major() {
        let plan = ExperimentPlan::new(
            cvp1_suite(1_000)[..2].to_vec(),
            &[ConfigId::Base, ConfigId::AsmdbFdp],
        );
        assert!(plan.wants_asmdb());
        assert_eq!(
            plan.jobs(),
            vec![
                (0, ConfigId::Base),
                (0, ConfigId::AsmdbFdp),
                (1, ConfigId::Base),
                (1, ConfigId::AsmdbFdp),
            ]
        );
    }
}
