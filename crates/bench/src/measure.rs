//! Tracked simulator-throughput measurement (`swip bench --measure`).
//!
//! The hot-path work in this workspace is judged by one number: how many
//! simulated instructions per second of wall clock the cycle loop
//! retires. This module times a pinned sweep — every session workload
//! under each of the six paper configurations, run serially on one
//! thread so the number is a property of the simulator, not of the
//! machine's core count — and writes the result as
//! `BENCH_throughput.json` so successive commits can be compared.
//!
//! Trace generation and AsmDB profiling are warmed (memoized on the
//! [`Session`]) before the clock starts; the timed region is simulation
//! only.
//!
//! Since schema version 2 the tracked file is a **history**: every
//! `--measure` run appends one [`ThroughputReport`] entry to
//! [`ThroughputHistory`] instead of overwriting the file, so the metric's
//! trajectory across commits stays in the document. A bare v1 report found
//! on disk is migrated into a single-entry history on the next append.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use swip_report::Json;

use crate::{ConfigId, Session};

/// Default output path, relative to the working directory (the repo root
/// under `cargo run`).
pub const THROUGHPUT_FILE: &str = "BENCH_throughput.json";

/// Wall-clock throughput of one [`ConfigId`] over the measured sweep.
#[derive(Clone, Debug)]
pub struct ConfigThroughput {
    /// The configuration measured.
    pub config: ConfigId,
    /// Simulated (retired) instructions summed over the sweep.
    pub instructions: u64,
    /// Simulated cycles summed over the sweep.
    pub cycles: u64,
    /// Wall-clock seconds for the serial sweep.
    pub seconds: f64,
    /// `instructions / seconds` — the tracked metric.
    pub instrs_per_sec: f64,
}

/// The full measurement: per-configuration rows plus the aggregate.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Instruction budget per workload.
    pub instructions: u64,
    /// Workload-suite stride.
    pub stride: usize,
    /// Number of workloads in the sweep.
    pub workloads: usize,
    /// One row per configuration, in canonical order.
    pub configs: Vec<ConfigThroughput>,
    /// Total simulated instructions across all configurations.
    pub total_instructions: u64,
    /// Total wall-clock seconds across all configurations.
    pub total_seconds: f64,
}

impl ThroughputReport {
    /// Aggregate instructions per second across every configuration.
    pub fn total_instrs_per_sec(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.total_instructions as f64 / self.total_seconds
        } else {
            0.0
        }
    }

    /// The report as a [`Json`] tree (schema version 1).
    pub fn to_json(&self) -> Json {
        let configs = self
            .configs
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("config".into(), Json::Str(c.config.label().into())),
                    ("instructions".into(), Json::U64(c.instructions)),
                    ("cycles".into(), Json::U64(c.cycles)),
                    ("seconds".into(), Json::F64(c.seconds)),
                    ("instrs_per_sec".into(), Json::F64(c.instrs_per_sec)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::U64(1)),
            ("kind".into(), Json::Str("swip-throughput".into())),
            ("instructions".into(), Json::U64(self.instructions)),
            ("stride".into(), Json::U64(self.stride as u64)),
            ("workloads".into(), Json::U64(self.workloads as u64)),
            ("configs".into(), Json::Arr(configs)),
            (
                "total_instructions".into(),
                Json::U64(self.total_instructions),
            ),
            ("total_seconds".into(), Json::F64(self.total_seconds)),
            (
                "total_instrs_per_sec".into(),
                Json::F64(self.total_instrs_per_sec()),
            ),
        ])
    }

    /// Writes the report as pretty JSON to `path`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure creating or writing the file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<PathBuf> {
        let path = path.as_ref().to_path_buf();
        std::fs::write(&path, self.to_json().render_pretty())?;
        Ok(path)
    }

    /// True when `json` looks like a throughput report (the `kind` tag).
    pub fn is_throughput_json(json: &Json) -> bool {
        json.get("kind").and_then(Json::as_str) == Some("swip-throughput")
    }

    /// Parses a report back from its [`Json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field, so
    /// `scripts/check.sh` (via `swip report`) rejects truncated or
    /// hand-mangled files instead of summarizing garbage.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        fn u64_field(json: &Json, key: &str) -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        }
        fn f64_field(json: &Json, key: &str) -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
        }
        if !Self::is_throughput_json(json) {
            return Err("not a swip-throughput report (bad or missing \"kind\")".into());
        }
        let version = u64_field(json, "version")?;
        if version != 1 {
            return Err(format!("unsupported throughput-report version {version}"));
        }
        let configs = json
            .get("configs")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing or non-array field \"configs\"".to_string())?
            .iter()
            .map(|c| {
                let label = c
                    .get("config")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "config row without a \"config\" label".to_string())?;
                let config = ConfigId::from_label(label).map_err(|e| e.to_string())?;
                Ok(ConfigThroughput {
                    config,
                    instructions: u64_field(c, "instructions")?,
                    cycles: u64_field(c, "cycles")?,
                    seconds: f64_field(c, "seconds")?,
                    instrs_per_sec: f64_field(c, "instrs_per_sec")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ThroughputReport {
            instructions: u64_field(json, "instructions")?,
            stride: u64_field(json, "stride")? as usize,
            workloads: u64_field(json, "workloads")? as usize,
            configs,
            total_instructions: u64_field(json, "total_instructions")?,
            total_seconds: f64_field(json, "total_seconds")?,
        })
    }

    /// A human-readable summary (the `swip report` rendering).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "throughput: {} workloads x {} instrs (stride {})",
            self.workloads, self.instructions, self.stride
        );
        for c in &self.configs {
            let _ = writeln!(
                out,
                "  {:<18} {:>12} instrs  {:>8.3} s  {:>12.0} instrs/s",
                c.config.label(),
                c.instructions,
                c.seconds,
                c.instrs_per_sec
            );
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>12} instrs  {:>8.3} s  {:>12.0} instrs/s",
            "total",
            self.total_instructions,
            self.total_seconds,
            self.total_instrs_per_sec()
        );
        out
    }
}

/// The tracked measurement history (schema version 2 of
/// `BENCH_throughput.json`): an append-only array of
/// [`ThroughputReport`] entries, oldest first.
#[derive(Clone, Debug, Default)]
pub struct ThroughputHistory {
    /// Every recorded measurement, in append order.
    pub entries: Vec<ThroughputReport>,
}

impl ThroughputHistory {
    /// The `kind` tag distinguishing a history from a bare v1 report.
    pub const KIND: &'static str = "swip-throughput-history";

    /// True when `json` looks like a throughput history (the `kind` tag).
    pub fn is_history_json(json: &Json) -> bool {
        json.get("kind").and_then(Json::as_str) == Some(Self::KIND)
    }

    /// The history as a [`Json`] tree (schema version 2).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::U64(2)),
            ("kind".into(), Json::Str(Self::KIND.into())),
            (
                "entries".into(),
                Json::Arr(self.entries.iter().map(ThroughputReport::to_json).collect()),
            ),
        ])
    }

    /// Parses a history back from its [`Json`] form. A bare v1
    /// [`ThroughputReport`] is accepted and migrated to a single-entry
    /// history, so pre-history files keep validating.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        if ThroughputReport::is_throughput_json(json) {
            return Ok(ThroughputHistory {
                entries: vec![ThroughputReport::from_json(json)?],
            });
        }
        if !Self::is_history_json(json) {
            return Err("not a swip-throughput-history (bad or missing \"kind\")".into());
        }
        let version = json
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing or non-integer field \"version\"".to_string())?;
        if version != 2 {
            return Err(format!("unsupported throughput-history version {version}"));
        }
        let entries = json
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing or non-array field \"entries\"".to_string())?
            .iter()
            .map(ThroughputReport::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ThroughputHistory { entries })
    }

    /// The most recent measurement.
    pub fn latest(&self) -> Option<&ThroughputReport> {
        self.entries.last()
    }

    /// Per-config regressions of the newest entry against the previous
    /// one: every configuration whose `instrs_per_sec` dropped by more
    /// than `threshold_pct` percent, as human-readable lines. Empty when
    /// the history has fewer than two entries or nothing regressed.
    /// Configurations present in only one of the two entries are skipped —
    /// a grown or shrunk config axis is not a regression.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<String> {
        let [.., prev, last] = self.entries.as_slice() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for cur in &last.configs {
            let Some(old) = prev.configs.iter().find(|c| c.config == cur.config) else {
                continue;
            };
            if old.instrs_per_sec <= 0.0 {
                continue;
            }
            let drop_pct = (old.instrs_per_sec - cur.instrs_per_sec) / old.instrs_per_sec * 100.0;
            if drop_pct > threshold_pct {
                out.push(format!(
                    "{}: {:.0} -> {:.0} instrs/s ({:.1}% drop, threshold {:.0}%)",
                    cur.config.label(),
                    old.instrs_per_sec,
                    cur.instrs_per_sec,
                    drop_pct,
                    threshold_pct
                ));
            }
        }
        out
    }

    /// A human-readable summary (the `swip report` rendering): the latest
    /// entry in full, plus the aggregate trajectory across entries.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "throughput history: {} entries", self.entries.len());
        if self.entries.len() > 1 {
            let trail: Vec<String> = self
                .entries
                .iter()
                .map(|e| format!("{:.0}", e.total_instrs_per_sec()))
                .collect();
            let _ = writeln!(out, "  aggregate instrs/s: {}", trail.join(" -> "));
        }
        if let Some(latest) = self.latest() {
            let _ = write!(out, "latest: {}", latest.summary());
        }
        out
    }
}

/// Appends `report` to the history file at `path`, creating the file (or
/// migrating a bare v1 report found there) as needed. Returns the path
/// and the new entry count.
///
/// # Errors
///
/// I/O failures reading or writing the file, and
/// [`io::ErrorKind::InvalidData`] when an existing file is neither a
/// throughput history nor a v1 report — a corrupt tracked file should
/// stop the run, not be silently replaced.
pub fn append_measurement(
    report: &ThroughputReport,
    path: impl AsRef<Path>,
) -> io::Result<(PathBuf, usize)> {
    let path = path.as_ref().to_path_buf();
    let mut history = match std::fs::read_to_string(&path) {
        Ok(text) => {
            let invalid = |e: String| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            };
            let json = Json::parse(&text).map_err(|e| invalid(e.to_string()))?;
            ThroughputHistory::from_json(&json).map_err(invalid)?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => ThroughputHistory::default(),
        Err(e) => return Err(e),
    };
    history.entries.push(report.clone());
    std::fs::write(&path, history.to_json().render_pretty())?;
    Ok((path, history.entries.len()))
}

/// Migrates the history file at `path` to the schema-v2 history format in
/// place. A bare v1 report becomes a single-entry history; a file already
/// in history form is left untouched. Returns the entry count and whether
/// the file was rewritten.
///
/// # Errors
///
/// I/O failures, and [`io::ErrorKind::InvalidData`] when the file is
/// neither a throughput history nor a v1 report.
pub fn migrate_history_file(path: impl AsRef<Path>) -> io::Result<(usize, bool)> {
    let path = path.as_ref();
    let invalid = |e: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    };
    let text = std::fs::read_to_string(path)?;
    let json = Json::parse(&text).map_err(|e| invalid(e.to_string()))?;
    let history = ThroughputHistory::from_json(&json).map_err(invalid)?;
    if ThroughputHistory::is_history_json(&json) {
        return Ok((history.entries.len(), false));
    }
    std::fs::write(path, history.to_json().render_pretty())?;
    Ok((history.entries.len(), true))
}

/// Measures simulator throughput over the session's workload sweep.
///
/// Each configuration's jobs run serially on the calling thread; traces
/// and AsmDB outputs are warmed first so the timed region is the cycle
/// loop (plus memoized-`Arc` lookups), matching what the hot-path
/// optimizations actually target.
pub fn measure_throughput(session: &Session) -> ThroughputReport {
    let specs = session.workloads();

    // Warm every memoized input outside the timed region.
    for spec in &specs {
        let _ = session.trace(spec);
        let _ = session.asmdb(spec);
    }

    // The tracked metric sweeps the paper six only, so the history stays
    // comparable across commits that grow the zoo.
    let mut configs = Vec::with_capacity(ConfigId::PAPER.len());
    let mut total_instructions = 0u64;
    let mut total_seconds = 0.0f64;
    for id in ConfigId::PAPER {
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let start = Instant::now();
        for spec in &specs {
            let report = session.run_job(spec, id);
            instructions += report.instructions;
            cycles += report.cycles;
        }
        let seconds = start.elapsed().as_secs_f64();
        let instrs_per_sec = if seconds > 0.0 {
            instructions as f64 / seconds
        } else {
            0.0
        };
        eprintln!(
            "[measure] {:<18} {:>10} instrs in {:>8.3} s  ({:>12.0} instrs/s)",
            id.label(),
            instructions,
            seconds,
            instrs_per_sec
        );
        total_instructions += instructions;
        total_seconds += seconds;
        configs.push(ConfigThroughput {
            config: id,
            instructions,
            cycles,
            seconds,
            instrs_per_sec,
        });
    }

    ThroughputReport {
        instructions: session.instructions(),
        stride: session.stride(),
        workloads: specs.len(),
        configs,
        total_instructions,
        total_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionBuilder;

    #[test]
    fn measures_all_six_configs_and_round_trips_as_json() {
        let session = SessionBuilder::new()
            .instructions(2_000)
            .stride(24)
            .build()
            .unwrap();
        let report = measure_throughput(&session);
        assert_eq!(report.configs.len(), ConfigId::PAPER.len());
        assert_eq!(report.workloads, session.workloads().len());
        assert!(report.total_instructions > 0);
        assert!(report.total_instrs_per_sec() > 0.0);
        for c in &report.configs {
            assert!(c.instructions > 0, "{}", c.config.label());
            assert!(c.cycles > 0, "{}", c.config.label());
        }

        // The emitted JSON must be loadable by swip-report's parser —
        // check.sh leans on exactly this round trip.
        let parsed = Json::parse(&report.to_json().render_pretty()).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("swip-throughput")
        );
        assert_eq!(
            parsed
                .get("configs")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(6)
        );
        let total = parsed
            .get("total_instrs_per_sec")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(total > 0.0);

        // And through the typed loader `swip report` uses.
        assert!(ThroughputReport::is_throughput_json(&parsed));
        let loaded = ThroughputReport::from_json(&parsed).unwrap();
        assert_eq!(loaded.total_instructions, report.total_instructions);
        assert_eq!(loaded.configs.len(), 6);
        assert!(loaded.total_instrs_per_sec() > 0.0);
        assert!(!loaded.summary().is_empty());
    }

    #[test]
    fn history_appends_and_migrates_v1_files() {
        let session = SessionBuilder::new()
            .instructions(2_000)
            .stride(24)
            .build()
            .unwrap();
        let report = measure_throughput(&session);
        let path = std::env::temp_dir().join("swip_measure_history_test.json");
        let _ = std::fs::remove_file(&path);

        // First append creates a fresh v2 history with one entry.
        let (p, n) = append_measurement(&report, &path).unwrap();
        assert_eq!(n, 1);
        let json = Json::parse(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert!(ThroughputHistory::is_history_json(&json));
        assert_eq!(json.get("version").and_then(Json::as_u64), Some(2));

        // Second append grows the array.
        let (_, n) = append_measurement(&report, &path).unwrap();
        assert_eq!(n, 2);
        let history = ThroughputHistory::from_json(
            &Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap(),
        )
        .unwrap();
        assert_eq!(history.entries.len(), 2);
        assert!(history.latest().unwrap().total_instrs_per_sec() > 0.0);
        assert!(history.summary().contains("2 entries"));
        assert!(history.summary().contains("->"));

        // A pre-history v1 file on disk migrates to entries[0] + the append.
        report.write_to(&path).unwrap();
        let (_, n) = append_measurement(&report, &path).unwrap();
        assert_eq!(n, 2);

        // Corrupt tracked files stop the run instead of being replaced.
        std::fs::write(&path, "{\"kind\": \"mystery\"}").unwrap();
        let err = append_measurement(&report, &path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn regressions_compare_newest_entry_to_previous() {
        let row = |ips: f64| ConfigThroughput {
            config: ConfigId::Base,
            instructions: 1_000,
            cycles: 2_000,
            seconds: 0.1,
            instrs_per_sec: ips,
        };
        let entry = |ips: f64| ThroughputReport {
            instructions: 1_000,
            stride: 16,
            workloads: 3,
            configs: vec![row(ips)],
            total_instructions: 1_000,
            total_seconds: 0.1,
        };

        // Fewer than two entries: nothing to compare.
        let mut history = ThroughputHistory::default();
        assert!(history.regressions(25.0).is_empty());
        history.entries.push(entry(1_000.0));
        assert!(history.regressions(25.0).is_empty());

        // A 20% drop passes a 25% gate; a 30% drop fails it.
        history.entries.push(entry(800.0));
        assert!(history.regressions(25.0).is_empty());
        history.entries.push(entry(560.0)); // 30% below 800
        let found = history.regressions(25.0);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains(ConfigId::Base.label()), "{}", found[0]);
        assert!(found[0].contains("30.0% drop"), "{}", found[0]);

        // Only the newest pair matters: recovering clears the gate.
        history.entries.push(entry(900.0));
        assert!(history.regressions(25.0).is_empty());

        // A config present in only one entry is skipped, not flagged.
        history.entries.push(ThroughputReport {
            configs: vec![ConfigThroughput {
                config: ConfigId::Fdp,
                ..row(100.0)
            }],
            ..entry(100.0)
        });
        assert!(history.regressions(25.0).is_empty());
    }

    #[test]
    fn migrate_history_file_converts_v1_in_place() {
        let session = SessionBuilder::new()
            .instructions(2_000)
            .stride(24)
            .build()
            .unwrap();
        let report = measure_throughput(&session);
        let path = std::env::temp_dir().join("swip_measure_migrate_test.json");
        let _ = std::fs::remove_file(&path);

        // A bare v1 file is rewritten as a one-entry v2 history.
        report.write_to(&path).unwrap();
        let (n, migrated) = migrate_history_file(&path).unwrap();
        assert_eq!((n, migrated), (1, true));
        let json = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(ThroughputHistory::is_history_json(&json));
        assert_eq!(json.get("version").and_then(Json::as_u64), Some(2));

        // Idempotent: a second migration is a no-op.
        let before = std::fs::read_to_string(&path).unwrap();
        let (n, migrated) = migrate_history_file(&path).unwrap();
        assert_eq!((n, migrated), (1, false));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);

        // Corrupt files are typed errors.
        std::fs::write(&path, "{\"kind\": \"mystery\"}").unwrap();
        let err = migrate_history_file(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        assert!(ThroughputReport::from_json(&Json::parse("{}").unwrap()).is_err());
        let wrong_kind = Json::parse(r#"{"kind": "swip-run", "version": 1}"#).unwrap();
        assert!(ThroughputReport::from_json(&wrong_kind).is_err());
        let bad_version = Json::parse(r#"{"kind": "swip-throughput", "version": 99}"#).unwrap();
        assert!(ThroughputReport::from_json(&bad_version).is_err());
        let bad_label = Json::parse(
            r#"{"kind": "swip-throughput", "version": 1, "configs":
               [{"config": "ftq48_fdp", "instructions": 1, "cycles": 1,
                 "seconds": 0.1, "instrs_per_sec": 10.0}]}"#,
        )
        .unwrap();
        assert!(ThroughputReport::from_json(&bad_label)
            .unwrap_err()
            .contains("ftq48_fdp"));
    }
}
