//! The redesigned experiment-session API: [`SessionBuilder`] → [`Session`].
//!
//! A `Session` owns the scale knobs (instructions, stride), the AsmDB
//! tuning, the thread count, and two memoization layers:
//!
//! * generated [`Trace`]s, keyed by workload name (optionally persisted to
//!   a cache directory in the `SWIP` binary format), and
//! * AsmDB pipeline outputs ([`AsmdbOutput`]: profile, plan, rewritten
//!   trace, hints), keyed by workload name.
//!
//! Because every (workload, configuration) job goes through these memos,
//! an [`ExperimentPlan`](crate::ExperimentPlan) with all six paper
//! configurations still performs exactly **one** trace generation and
//! **one** AsmDB profile pass per workload, no matter how many threads are
//! racing — verified by the [`SessionCounters`] the session exposes.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use swip_asmdb::{Asmdb, AsmdbConfig, AsmdbOutput};
use swip_cache::ConfigError;
use swip_core::{SimConfig, SimReport, Simulator};
use swip_trace::Trace;
use swip_types::Fnv1a;
use swip_workloads::{cvp1_suite, generate, WorkloadSpec};

use crate::{AsmdbTuning, ConfigId};

/// A typed rejection from [`SessionBuilder::build`].
///
/// Invalid knobs are errors, not silent clamps: a stride of zero would
/// select no workloads, zero instructions would generate empty traces, and
/// zero threads cannot execute anything. Simulation configurations are
/// validated up front too ([`BuildError::Config`]), so a bad cache
/// geometry surfaces as one message before any trace is generated instead
/// of a panic on a worker thread mid-run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// `instructions == 0`.
    ZeroInstructions,
    /// `stride == 0`.
    ZeroStride,
    /// `threads == 0`.
    ZeroThreads,
    /// A simulation configuration the session would run is geometrically
    /// invalid (see [`ConfigError`]).
    Config(ConfigError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroInstructions => {
                write!(f, "instructions must be positive (got 0)")
            }
            BuildError::ZeroStride => write!(f, "stride must be positive (got 0)"),
            BuildError::ZeroThreads => write!(f, "threads must be positive (got 0)"),
            BuildError::Config(e) => write!(f, "invalid simulation configuration: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

/// Builder for a [`Session`]: scale, tuning, parallelism, and caching.
///
/// Knobs are explicit (`swip bench --instructions N --threads K`); the
/// old env-var-only `Harness::from_env` and its deprecated `SWIP_*` shim
/// are gone.
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    instructions: u64,
    stride: usize,
    asmdb: AsmdbConfig,
    threads: usize,
    cache_dir: Option<PathBuf>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            instructions: 300_000,
            stride: 1,
            asmdb: AsmdbConfig::default(),
            threads: default_threads(),
            cache_dir: None,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl SessionBuilder {
    /// A builder with the defaults (300 k instructions, full suite,
    /// default AsmDB tuning, one thread per available core, no disk cache).
    pub fn new() -> Self {
        Self::default()
    }

    /// Dynamic instructions per workload.
    #[must_use]
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Take every n-th workload of the 48.
    #[must_use]
    pub fn stride(mut self, n: usize) -> Self {
        self.stride = n;
        self
    }

    /// Worker threads for plan execution.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// AsmDB tuning by name.
    #[must_use]
    pub fn tuning(mut self, t: AsmdbTuning) -> Self {
        self.asmdb = t.config();
        self
    }

    /// Fully custom AsmDB knobs.
    #[must_use]
    pub fn asmdb_config(mut self, c: AsmdbConfig) -> Self {
        self.asmdb = c;
        self
    }

    /// Directory where generated traces are cached in the `SWIP` binary
    /// format, so a second session (or process) skips generation entirely.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Validates the knobs and builds the session.
    ///
    /// Miss-count thresholds are absolute, so AsmDB's `min_misses` is
    /// scaled with the run length (as the old harness did) to keep short
    /// calibration runs seeing insertions.
    ///
    /// # Errors
    ///
    /// Returns a typed [`BuildError`] for any zero-valued knob.
    pub fn build(self) -> Result<Session, BuildError> {
        if self.instructions == 0 {
            return Err(BuildError::ZeroInstructions);
        }
        if self.stride == 0 {
            return Err(BuildError::ZeroStride);
        }
        if self.threads == 0 {
            return Err(BuildError::ZeroThreads);
        }
        for id in ConfigId::ALL {
            id.sim_config().validate()?;
        }
        SimConfig::conservative().validate()?;
        let mut asmdb = self.asmdb;
        asmdb.min_misses = asmdb.min_misses.max(self.instructions / 100_000);
        Ok(Session {
            instructions: self.instructions,
            stride: self.stride,
            asmdb_config: asmdb,
            threads: self.threads,
            cache_dir: self.cache_dir,
            traces: Memo::new(),
            asmdb_outs: Memo::new(),
            counters: AtomicCounters::default(),
        })
    }
}

/// A snapshot of a session's cache and work counters.
///
/// The acceptance property of the engine is visible here: after executing
/// a six-configuration plan, `trace_generations` and `asmdb_profiles` both
/// equal the number of workloads — every extra lookup is a cache hit.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct SessionCounters {
    /// Traces generated from scratch.
    pub trace_generations: u64,
    /// Trace lookups served from the in-memory memo.
    pub trace_cache_hits: u64,
    /// Trace lookups served from the on-disk cache directory.
    pub trace_disk_hits: u64,
    /// AsmDB profile→plan→rewrite pipeline executions.
    pub asmdb_profiles: u64,
    /// AsmDB lookups served from the in-memory memo.
    pub asmdb_cache_hits: u64,
    /// Simulator runs executed by plan jobs (excludes AsmDB's internal
    /// profiling run).
    pub sim_runs: u64,
}

#[derive(Default)]
struct AtomicCounters {
    trace_generations: AtomicU64,
    trace_cache_hits: AtomicU64,
    trace_disk_hits: AtomicU64,
    asmdb_profiles: AtomicU64,
    asmdb_cache_hits: AtomicU64,
    sim_runs: AtomicU64,
}

/// A by-name memo where the first requester computes and every concurrent
/// requester blocks on the same cell instead of recomputing.
struct Memo<V> {
    map: Mutex<HashMap<String, Arc<OnceLock<Arc<V>>>>>,
}

impl<V> Memo<V> {
    fn new() -> Self {
        Memo {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn get_or_init(&self, key: &str, on_hit: impl FnOnce(), init: impl FnOnce() -> V) -> Arc<V> {
        let cell = {
            let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            map.entry(key.to_string()).or_default().clone()
        };
        if let Some(v) = cell.get() {
            on_hit();
            return Arc::clone(v);
        }
        Arc::clone(cell.get_or_init(|| Arc::new(init())))
    }
}

/// An experiment session: validated knobs, the worker pool, and the
/// memoized trace / AsmDB artifacts shared by all jobs.
///
/// Construct via [`SessionBuilder`]; execute an
/// [`ExperimentPlan`](crate::ExperimentPlan) with
/// [`Session::run`](crate::Session::run) /
/// [`Session::run_streaming`](crate::Session::run_streaming), or map an
/// arbitrary per-workload closure over the pool with
/// [`Session::par_map`](crate::Session::par_map).
pub struct Session {
    pub(crate) instructions: u64,
    pub(crate) stride: usize,
    pub(crate) asmdb_config: AsmdbConfig,
    pub(crate) threads: usize,
    cache_dir: Option<PathBuf>,
    traces: Memo<Trace>,
    asmdb_outs: Memo<AsmdbOutput>,
    counters: AtomicCounters,
}

impl Session {
    /// A builder with the defaults.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Dynamic instructions per workload.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Workload stride over the 48-trace suite.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Worker threads used for plan execution.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The AsmDB tuning (with `min_misses` already scaled to the run
    /// length).
    pub fn asmdb_config(&self) -> &AsmdbConfig {
        &self.asmdb_config
    }

    /// The workload subset this session runs.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        cvp1_suite(self.instructions)
            .into_iter()
            .step_by(self.stride)
            .collect()
    }

    /// The memoized trace for `spec`: generated at most once per session
    /// (or loaded from the cache directory, when configured).
    pub fn trace(&self, spec: &WorkloadSpec) -> Arc<Trace> {
        self.traces.get_or_init(
            &spec.name,
            || {
                self.counters
                    .trace_cache_hits
                    .fetch_add(1, Ordering::Relaxed);
            },
            || {
                if let Some(t) = self.load_cached_trace(spec) {
                    self.counters
                        .trace_disk_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return t;
                }
                self.counters
                    .trace_generations
                    .fetch_add(1, Ordering::Relaxed);
                let t = generate(spec);
                self.store_cached_trace(spec, &t);
                t
            },
        )
    }

    /// The memoized AsmDB pipeline output for `spec`: profiled at most
    /// once per session, on the conservative front-end (the paper profiles
    /// on the front-end AsmDB was designed against and evaluates the same
    /// rewritten binary everywhere).
    pub fn asmdb(&self, spec: &WorkloadSpec) -> Arc<AsmdbOutput> {
        self.asmdb_outs.get_or_init(
            &spec.name,
            || {
                self.counters
                    .asmdb_cache_hits
                    .fetch_add(1, Ordering::Relaxed);
            },
            || {
                let trace = self.trace(spec);
                self.counters.asmdb_profiles.fetch_add(1, Ordering::Relaxed);
                Asmdb::new(self.asmdb_config.clone()).run(&trace, &SimConfig::conservative())
            },
        )
    }

    /// A snapshot of the cache/work counters.
    pub fn counters(&self) -> SessionCounters {
        SessionCounters {
            trace_generations: self.counters.trace_generations.load(Ordering::Relaxed),
            trace_cache_hits: self.counters.trace_cache_hits.load(Ordering::Relaxed),
            trace_disk_hits: self.counters.trace_disk_hits.load(Ordering::Relaxed),
            asmdb_profiles: self.counters.asmdb_profiles.load(Ordering::Relaxed),
            asmdb_cache_hits: self.counters.asmdb_cache_hits.load(Ordering::Relaxed),
            sim_runs: self.counters.sim_runs.load(Ordering::Relaxed),
        }
    }

    /// Executes one (workload, configuration) job.
    pub(crate) fn run_job(&self, spec: &WorkloadSpec, id: ConfigId) -> SimReport {
        let sim = Simulator::new(id.sim_config());
        let report = match id {
            ConfigId::Base | ConfigId::Fdp => sim.run(&self.trace(spec)),
            // Zoo configurations run the original trace; the hardware
            // prefetcher is selected by `sim_config().prefetcher`.
            ConfigId::Mana | ConfigId::ShadowBtb => sim.run(&self.trace(spec)),
            ConfigId::AsmdbCons | ConfigId::AsmdbFdp => sim.run(&self.asmdb(spec).rewritten),
            ConfigId::AsmdbConsNoov | ConfigId::AsmdbFdpNoov => {
                // The memoized pipeline output carries a prebuilt shared
                // hint table; every no-overhead run of this workload shares
                // it by `Arc` instead of cloning the hint map.
                let out = self.asmdb(spec);
                sim.run_with_hint_table(&self.trace(spec), out.hint_table.clone())
            }
        };
        self.counters.sim_runs.fetch_add(1, Ordering::Relaxed);
        report
    }

    /// The configured trace cache directory, if any.
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.cache_dir.as_deref()
    }

    /// The content address of `spec`'s trace: an FNV-1a hash over every
    /// generator parameter (plus [`TRACE_CACHE_FORMAT`]), as 16 hex
    /// digits. A workload spec fully determines its trace, so two specs
    /// with equal fingerprints generate byte-identical traces — and two
    /// sessions with *different* generator tunings sharing one cache
    /// directory get disjoint filenames instead of reading each other's
    /// stale artifacts.
    pub fn trace_fingerprint(&self, spec: &WorkloadSpec) -> String {
        let mut h = Fnv1a::new();
        h.field(TRACE_CACHE_FORMAT.to_le_bytes().as_slice());
        h.field(spec.name.as_bytes());
        h.field(format!("{:?}", spec.family).as_bytes());
        h.field(&spec.seed.to_le_bytes());
        h.field(&(spec.functions as u64).to_le_bytes());
        h.field(&(spec.avg_blocks as u64).to_le_bytes());
        h.field(&(spec.avg_block_instrs as u64).to_le_bytes());
        h.field(&(spec.max_call_depth as u64).to_le_bytes());
        h.field(&spec.predictable_branch_fraction.to_bits().to_le_bytes());
        h.field(&spec.indirect_call_fraction.to_bits().to_le_bytes());
        h.field(&spec.load_fraction.to_bits().to_le_bytes());
        h.field(&spec.store_fraction.to_bits().to_le_bytes());
        h.field(&spec.hot_exponent.to_bits().to_le_bytes());
        h.field(&spec.loop_fraction.to_bits().to_le_bytes());
        h.field(&spec.root_persistence.to_bits().to_le_bytes());
        h.field(&spec.instructions.to_le_bytes());
        h.finish()
    }

    /// Where `spec`'s trace lives in the disk cache (whether or not it has
    /// been materialized yet); `None` without a cache directory. The
    /// filename is content-addressed: `{name}-{fingerprint}.swip`.
    pub fn trace_cache_path(&self, spec: &WorkloadSpec) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| {
            d.join(format!(
                "{}-{}.swip",
                spec.name,
                self.trace_fingerprint(spec)
            ))
        })
    }

    /// Resolves a trace fingerprint back to the session workload that owns
    /// it, for the `GET`/`PUT /v1/cache/{fingerprint}` routes.
    pub fn spec_for_fingerprint(&self, fingerprint: &str) -> Option<WorkloadSpec> {
        self.workloads()
            .into_iter()
            .find(|spec| self.trace_fingerprint(spec) == fingerprint)
    }

    /// Installs externally supplied trace bytes into the disk cache under
    /// `spec`'s content address, validating that they decode to a trace
    /// for that workload first. Used by the fleet coordinator to ship a
    /// warm cache to cold workers.
    ///
    /// # Errors
    ///
    /// Returns a message when no cache directory is configured, the bytes
    /// do not decode, the decoded trace names a different workload, or the
    /// write fails.
    pub fn import_cached_trace(&self, spec: &WorkloadSpec, bytes: &[u8]) -> Result<(), String> {
        let path = self
            .trace_cache_path(spec)
            .ok_or_else(|| "no cache directory configured".to_string())?;
        let trace = Trace::read_from(bytes).map_err(|e| format!("trace does not decode: {e}"))?;
        if trace.name() != spec.name {
            return Err(format!(
                "trace is for workload {:?}, expected {:?}",
                trace.name(),
                spec.name
            ));
        }
        let dir = path
            .parent()
            .ok_or_else(|| "cache path has no parent".to_string())?;
        fs::create_dir_all(dir).map_err(|e| format!("creating cache dir: {e}"))?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, bytes).map_err(|e| format!("writing cache file: {e}"))?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            format!("installing cache file: {e}")
        })
    }

    fn load_cached_trace(&self, spec: &WorkloadSpec) -> Option<Trace> {
        let path = self.trace_cache_path(spec)?;
        let file = fs::File::open(path).ok()?;
        let trace = Trace::read_from(file).ok()?;
        // The content address makes cross-spec collisions impossible for
        // honestly stored files; the name check guards against a corrupt
        // or hand-renamed cache entry.
        (trace.name() == spec.name).then_some(trace)
    }

    /// Best-effort disk-cache store: written to a temporary name and
    /// renamed, so concurrent sessions never observe a partial file.
    fn store_cached_trace(&self, spec: &WorkloadSpec, trace: &Trace) {
        let Some(path) = self.trace_cache_path(spec) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let Ok(file) = fs::File::create(&tmp) else {
            return;
        };
        if trace.write_to(file).is_ok() {
            let _ = fs::rename(&tmp, &path);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

/// Version stamp folded into every trace-cache fingerprint; bump when the
/// `SWIP` binary format or the generator algorithm changes so stale cache
/// files from older builds miss instead of decoding into wrong results.
const TRACE_CACHE_FORMAT: u64 = 1;

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("instructions", &self.instructions)
            .field("stride", &self.stride)
            .field("threads", &self.threads)
            .field("cache_dir", &self.cache_dir)
            .field("counters", &self.counters())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_zero_knobs_with_typed_errors() {
        assert_eq!(
            SessionBuilder::new().instructions(0).build().unwrap_err(),
            BuildError::ZeroInstructions
        );
        assert_eq!(
            SessionBuilder::new().stride(0).build().unwrap_err(),
            BuildError::ZeroStride
        );
        assert_eq!(
            SessionBuilder::new().threads(0).build().unwrap_err(),
            BuildError::ZeroThreads
        );
    }

    #[test]
    fn invalid_sim_configs_surface_as_build_errors() {
        // The built-in configurations are valid, so build() succeeds...
        assert!(SessionBuilder::new().build().is_ok());
        // ...and a geometry rejection threads through to BuildError with
        // the offending level's name in the message.
        let mut bad = SimConfig::sunny_cove_like();
        bad.memory.l1i.sets = 48;
        let err: BuildError = bad.validate().unwrap_err().into();
        assert!(matches!(err, BuildError::Config(_)));
        let msg = err.to_string();
        assert!(msg.contains("invalid simulation configuration"), "{msg}");
        assert!(msg.contains("L1I") && msg.contains("48"), "{msg}");
    }

    #[test]
    fn builder_scales_min_misses_with_run_length() {
        let s = SessionBuilder::new()
            .instructions(1_000_000)
            .build()
            .unwrap();
        assert_eq!(s.asmdb_config().min_misses, 10);
        let s = SessionBuilder::new().instructions(20_000).build().unwrap();
        assert_eq!(
            s.asmdb_config().min_misses,
            AsmdbConfig::default().min_misses
        );
    }

    #[test]
    fn stride_subsets_workloads() {
        let s = SessionBuilder::new()
            .instructions(10_000)
            .stride(16)
            .build()
            .unwrap();
        let w = s.workloads();
        assert_eq!(w.len(), 3); // 48 / 16
        assert_eq!(w[0].instructions, 10_000);
    }

    #[test]
    fn trace_fingerprint_covers_generator_tunings() {
        let s = SessionBuilder::new().instructions(5_000).build().unwrap();
        let spec = &s.workloads()[0];
        let base = s.trace_fingerprint(spec);
        assert_eq!(base, s.trace_fingerprint(spec));
        let mut tuned = spec.clone();
        tuned.seed ^= 1;
        assert_ne!(base, s.trace_fingerprint(&tuned));
        let mut tuned = spec.clone();
        tuned.hot_exponent += 0.125;
        assert_ne!(base, s.trace_fingerprint(&tuned));
        let mut tuned = spec.clone();
        tuned.instructions += 1;
        assert_ne!(base, s.trace_fingerprint(&tuned));
    }

    #[test]
    fn shared_cache_dir_does_not_cross_hit_between_tunings() {
        // Two sessions share one cache directory and ask for a workload
        // with the same name and instruction count but different generator
        // seeds. Before content addressing, the second session would read
        // the first session's trace (the filename was name+instructions
        // only); now the filenames differ and each session generates its
        // own trace.
        let dir = std::env::temp_dir().join(format!("swip-cache-collision-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let make = || {
            SessionBuilder::new()
                .instructions(5_000)
                .stride(48)
                .cache_dir(&dir)
                .build()
                .unwrap()
        };
        let warm = make();
        let spec = warm.workloads()[0].clone();
        let mut tuned = spec.clone();
        tuned.seed ^= 0xdead_beef;
        assert_ne!(
            warm.trace_cache_path(&spec),
            warm.trace_cache_path(&tuned),
            "different tunings must get disjoint cache filenames"
        );

        warm.trace(&spec); // generates and stores spec's trace
        let cold = make();
        let imposter = cold.trace(&tuned);
        let counters = cold.counters();
        assert_eq!(
            counters.trace_disk_hits, 0,
            "a differently-tuned spec must not hit the other tuning's cache file"
        );
        assert_eq!(counters.trace_generations, 1);
        // And the honest spec *does* hit disk in a fresh session.
        let reuse = make();
        let cached = reuse.trace(&spec);
        assert_eq!(reuse.counters().trace_disk_hits, 1);
        assert_eq!(cached.name(), spec.name);
        assert_eq!(imposter.name(), tuned.name);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_cached_trace_validates_and_installs() {
        let dir = std::env::temp_dir().join(format!("swip-cache-import-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let donor = SessionBuilder::new()
            .instructions(5_000)
            .stride(48)
            .cache_dir(dir.join("donor"))
            .build()
            .unwrap();
        let spec = donor.workloads()[0].clone();
        donor.trace(&spec);
        let bytes = fs::read(donor.trace_cache_path(&spec).unwrap()).unwrap();

        let cold = SessionBuilder::new()
            .instructions(5_000)
            .stride(48)
            .cache_dir(dir.join("cold"))
            .build()
            .unwrap();
        assert!(cold.import_cached_trace(&spec, &bytes).is_ok());
        assert_eq!(cold.counters().trace_generations, 0);
        cold.trace(&spec);
        let counters = cold.counters();
        assert_eq!(
            counters.trace_disk_hits, 1,
            "imported bytes must serve the lookup"
        );
        assert_eq!(counters.trace_generations, 0);

        // Garbage bytes and mismatched workloads are rejected.
        assert!(cold.import_cached_trace(&spec, b"not a trace").is_err());
        let mut other = cold.workloads()[0].clone();
        other.name = "someone_else".to_string();
        assert!(cold.import_cached_trace(&other, &bytes).is_err());

        // No cache dir configured → typed refusal.
        let no_cache = SessionBuilder::new().instructions(5_000).build().unwrap();
        assert!(no_cache.import_cached_trace(&spec, &bytes).is_err());

        // Fingerprint → spec resolution round-trips.
        let fp = cold.trace_fingerprint(&spec);
        assert_eq!(cold.spec_for_fingerprint(&fp).unwrap().name, spec.name);
        assert!(cold.spec_for_fingerprint("0000000000000000").is_none());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_memo_generates_once() {
        let s = SessionBuilder::new()
            .instructions(5_000)
            .stride(48)
            .build()
            .unwrap();
        let spec = &s.workloads()[0];
        let a = s.trace(spec);
        let b = s.trace(spec);
        assert!(Arc::ptr_eq(&a, &b));
        let c = s.counters();
        assert_eq!(c.trace_generations, 1);
        assert_eq!(c.trace_cache_hits, 1);
    }
}
