//! The experiment harness that regenerates every table and figure of the
//! paper.
//!
//! Each figure has a dedicated binary (`fig1`, `fig7` … `fig11`, `table1`)
//! that prints TSV rows to stdout and mirrors them into
//! `target/experiments/<name>.tsv`. The shared machinery here runs the six
//! simulation configurations of Figure 1 for each workload:
//!
//! 1. conservative baseline (2-entry FTQ FDP),
//! 2. AsmDB on the conservative front-end,
//! 3. AsmDB with no insertion overhead on the conservative front-end,
//! 4. industry-standard FDP (24-entry FTQ),
//! 5. AsmDB on the industry-standard FDP,
//! 6. AsmDB with no insertion overhead on the industry-standard FDP.
//!
//! Scale knobs (environment variables):
//!
//! * `SWIP_INSTRUCTIONS` — dynamic instructions per workload (default
//!   300 000; the paper simulates 100 M, which also works but takes hours).
//! * `SWIP_STRIDE` — take every n-th workload of the 48 (default 1 = all).
//! * `SWIP_ASMDB` — `default`, `aggressive`, or `wide` tuning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use swip_asmdb::{Asmdb, AsmdbConfig, RewriteReport};
use swip_core::{SimConfig, SimReport, Simulator};
use swip_trace::Trace;
use swip_workloads::{cvp1_suite, generate, WorkloadSpec};

/// Scale and tuning for one experiment invocation.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Dynamic instructions per workload.
    pub instructions: u64,
    /// Take every n-th workload.
    pub stride: usize,
    /// AsmDB tuning.
    pub asmdb: AsmdbConfig,
}

impl Harness {
    /// Builds a harness from the `SWIP_*` environment variables.
    pub fn from_env() -> Self {
        let instructions = std::env::var("SWIP_INSTRUCTIONS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300_000);
        let stride = std::env::var("SWIP_STRIDE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
            .max(1);
        let asmdb = match std::env::var("SWIP_ASMDB").as_deref() {
            Ok("aggressive") => AsmdbConfig::aggressive(),
            Ok("wide") => AsmdbConfig {
                min_reach: 0.25,
                max_sites_per_target: 3,
                window_factor: 8,
                miss_coverage: 0.95,
                min_misses: 4,
                ..AsmdbConfig::default()
            },
            _ => AsmdbConfig::default(),
        };
        // Miss-count thresholds are absolute; scale with the run length so
        // short calibration runs still see insertions.
        let mut asmdb = asmdb;
        asmdb.min_misses = asmdb.min_misses.max(instructions / 100_000);
        Harness {
            instructions,
            stride,
            asmdb,
        }
    }

    /// The workload subset this harness runs.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        cvp1_suite(self.instructions)
            .into_iter()
            .step_by(self.stride)
            .collect()
    }

    /// Runs the full six-configuration experiment for one workload.
    pub fn run_workload(&self, spec: &WorkloadSpec) -> WorkloadResults {
        let trace = generate(spec);
        self.run_trace(spec.name.clone(), &trace)
    }

    /// Runs the six configurations on an existing trace.
    pub fn run_trace(&self, name: String, trace: &Trace) -> WorkloadResults {
        let cons = SimConfig::conservative();
        let fdp = SimConfig::sunny_cove_like();
        let asmdb = Asmdb::new(self.asmdb.clone());
        // The paper profiles once (on the front-end AsmDB was designed
        // against) and evaluates the same rewritten binary everywhere.
        let out = asmdb.run(trace, &cons);
        WorkloadResults {
            name,
            bloat: out.report,
            base: Simulator::new(cons.clone()).run(trace),
            asmdb_cons: Simulator::new(cons.clone()).run(&out.rewritten),
            asmdb_cons_noov: Simulator::new(cons).run_with_hints(trace, &out.hints),
            fdp: Simulator::new(fdp.clone()).run(trace),
            asmdb_fdp: Simulator::new(fdp.clone()).run(&out.rewritten),
            asmdb_fdp_noov: Simulator::new(fdp).run_with_hints(trace, &out.hints),
        }
    }
}

/// The six per-workload simulation reports plus AsmDB's bloat accounting.
#[derive(Clone, Debug)]
pub struct WorkloadResults {
    /// Workload name.
    pub name: String,
    /// AsmDB rewrite accounting (Fig 7).
    pub bloat: RewriteReport,
    /// Conservative (2-entry FTQ) baseline.
    pub base: SimReport,
    /// AsmDB on the conservative front-end.
    pub asmdb_cons: SimReport,
    /// AsmDB, no insertion overhead, conservative front-end.
    pub asmdb_cons_noov: SimReport,
    /// Industry-standard FDP (24-entry FTQ).
    pub fdp: SimReport,
    /// AsmDB on the industry-standard FDP.
    pub asmdb_fdp: SimReport,
    /// AsmDB, no insertion overhead, industry-standard FDP.
    pub asmdb_fdp_noov: SimReport,
}

impl WorkloadResults {
    /// The five Figure-1 series as speedups over the conservative baseline,
    /// in the paper's legend order.
    pub fn fig1_series(&self) -> [(&'static str, f64); 5] {
        [
            ("AsmDB", self.asmdb_cons.speedup_over(&self.base)),
            (
                "AsmDB-NoInsertionOverhead",
                self.asmdb_cons_noov.speedup_over(&self.base),
            ),
            ("FDP(24-Entry-FTQ)", self.fdp.speedup_over(&self.base)),
            ("AsmDB+FDP", self.asmdb_fdp.speedup_over(&self.base)),
            (
                "AsmDB+FDP-NoInsertionOverhead",
                self.asmdb_fdp_noov.speedup_over(&self.base),
            ),
        ]
    }
}

/// The output directory for experiment TSVs (`target/experiments`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes TSV `rows` (with `header`) to stdout and to
/// `target/experiments/<name>.tsv`.
pub fn emit_tsv(name: &str, header: &str, rows: &[String]) {
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    let path = out_dir().join(format!("{name}.tsv"));
    match fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for r in rows {
                let _ = writeln!(f, "{r}");
            }
            eprintln!("[wrote {}]", path.display());
        }
        Err(e) => eprintln!("[could not write {}: {e}]", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_subsets_workloads() {
        let h = Harness {
            instructions: 10_000,
            stride: 16,
            asmdb: AsmdbConfig::default(),
        };
        let w = h.workloads();
        assert_eq!(w.len(), 3); // 48 / 16
        assert_eq!(w[0].instructions, 10_000);
    }

    #[test]
    fn six_configs_run_end_to_end() {
        let h = Harness {
            instructions: 20_000,
            stride: 48,
            asmdb: AsmdbConfig::default(),
        };
        let spec = &h.workloads()[0];
        let r = h.run_workload(spec);
        assert!(r.base.completed && r.fdp.completed);
        assert!(r.asmdb_cons.completed && r.asmdb_fdp.completed);
        assert!(r.asmdb_cons_noov.completed && r.asmdb_fdp_noov.completed);
        for (name, s) in r.fig1_series() {
            assert!(s > 0.0, "{name} speedup must be positive");
        }
    }
}
