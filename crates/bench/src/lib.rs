//! The experiment engine that regenerates every table and figure of the
//! paper.
//!
//! # The Session API
//!
//! Experiments are described by an [`ExperimentPlan`] — a deduplicated
//! matrix of workloads × [`ConfigId`] configurations — and executed by a
//! [`Session`] built via [`SessionBuilder`]:
//!
//! ```no_run
//! use swip_bench::{ExperimentPlan, SessionBuilder};
//!
//! let session = SessionBuilder::new()
//!     .instructions(300_000)
//!     .threads(4)
//!     .build()?;
//! let plan = ExperimentPlan::all_figures(session.workloads());
//! let results = session.run(&plan)?;
//! for r in &results {
//!     println!("{}: AsmDB+FDP {:.3}x", r.name(), r.asmdb_fdp().speedup_over(r.base()));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Independent (workload, configuration) jobs run on a self-scheduling
//! `std::thread` pool; generated traces and AsmDB pipeline outputs are
//! memoized on the session, so the six paper configurations share **one**
//! trace generation and **one** profile pass per workload (observable via
//! [`Session::counters`]). Results stream back in deterministic plan
//! order regardless of thread count.
//!
//! The paper's six simulation configurations (Figure 1):
//!
//! 1. conservative baseline (2-entry FTQ FDP),
//! 2. AsmDB on the conservative front-end,
//! 3. AsmDB with no insertion overhead on the conservative front-end,
//! 4. industry-standard FDP (24-entry FTQ),
//! 5. AsmDB on the industry-standard FDP,
//! 6. AsmDB with no insertion overhead on the industry-standard FDP.
//!
//! Beyond the paper six, the prefetcher zoo ([`ConfigId::Mana`],
//! [`ConfigId::ShadowBtb`]) runs hardware instruction prefetchers behind
//! the same plan machinery; `swip bench --prefetcher NAME` (or
//! `--figure prefetchers`) sweeps the zoo on the industry-standard
//! front-end and emits the Fig-9-style comparison TSV
//! ([`figures::emit_prefetchers`]).
//!
//! Each figure has a dedicated binary (`fig1`, `fig7` … `fig11`,
//! `table1`) that prints TSV rows to stdout and mirrors them into
//! `target/experiments/<name>.tsv`; `allfigs` (or `swip bench`) produces
//! the whole single-sweep evaluation at once. Scale knobs are explicit on
//! [`SessionBuilder`] and the `swip bench` flags; the deprecated `SWIP_*`
//! environment shim has been removed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;

mod config;
mod engine;
pub mod figures;
pub mod measure;
mod plan;
mod report;
mod results;
mod session;

pub use config::{AsmdbTuning, ConfigId, ConfigParseError};
pub use engine::EngineError;
pub use measure::{
    append_measurement, measure_throughput, migrate_history_file, ConfigThroughput,
    ThroughputHistory, ThroughputReport,
};
pub use plan::{ExperimentPlan, PlanError};
pub use report::{build_plan_report, build_run_report, emit_report, session_counter_pairs};
pub use results::WorkloadResults;
pub use session::{BuildError, Session, SessionBuilder, SessionCounters};

/// Any failure a figure binary can hit: invalid session knobs, a
/// panicking job, an I/O error while emitting TSVs, or an unknown figure
/// name.
#[derive(Debug)]
pub enum BenchError {
    /// Session construction was rejected.
    Build(BuildError),
    /// A job panicked on the worker pool.
    Engine(EngineError),
    /// Writing an experiment TSV failed.
    Io(io::Error),
    /// `swip bench --figure NAME` named a figure that does not exist.
    UnknownFigure(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Build(e) => write!(f, "invalid session: {e}"),
            BenchError::Engine(e) => write!(f, "{e}"),
            BenchError::Io(e) => write!(f, "could not write experiment output: {e}"),
            BenchError::UnknownFigure(name) => write!(
                f,
                "unknown figure {name:?} (expected all, table1, fig1, fig7..fig11, \
                 scenarios, or prefetchers)"
            ),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Build(e) => Some(e),
            BenchError::Engine(e) => Some(e),
            BenchError::Io(e) => Some(e),
            BenchError::UnknownFigure(_) => None,
        }
    }
}

impl From<BuildError> for BenchError {
    fn from(e: BuildError) -> Self {
        BenchError::Build(e)
    }
}

impl From<EngineError> for BenchError {
    fn from(e: EngineError) -> Self {
        BenchError::Engine(e)
    }
}

impl From<io::Error> for BenchError {
    fn from(e: io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// The output directory for experiment TSVs (`target/experiments`).
///
/// The directory is created by [`emit_tsv`], not here.
pub fn out_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Writes TSV `rows` (with `header`) to stdout and to
/// `target/experiments/<name>.tsv`, returning the file path.
///
/// # Errors
///
/// Propagates any I/O failure creating or writing the file, so figure
/// binaries exit nonzero instead of silently dropping output.
pub fn emit_tsv(name: &str, header: &str, rows: &[String]) -> io::Result<PathBuf> {
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    let dir = out_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.tsv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    f.flush()?;
    eprintln!("[wrote {}]", path.display());
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_configs_run_end_to_end() {
        let session = SessionBuilder::new()
            .instructions(20_000)
            .stride(48)
            .threads(2)
            .build()
            .unwrap();
        let plan = ExperimentPlan::all_figures(session.workloads());
        assert_eq!(plan.job_count(), 6);
        let results = session.run(&plan).unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.base().completed && r.fdp().completed);
        assert!(r.asmdb_cons().completed && r.asmdb_fdp().completed);
        assert!(r.asmdb_cons_noov().completed && r.asmdb_fdp_noov().completed);
        for (name, s) in r.fig1_series() {
            assert!(s > 0.0, "{name} speedup must be positive");
        }
        // One generation + one profile, despite six jobs racing.
        let c = session.counters();
        assert_eq!(c.trace_generations, 1);
        assert_eq!(c.asmdb_profiles, 1);
        assert_eq!(c.sim_runs, 6);
    }
}
