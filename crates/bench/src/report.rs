//! Building and emitting the structured [`RunReport`] for a bench run.
//!
//! Every `swip bench` sweep writes `target/experiments/report.json` next
//! to the figure TSVs: the same results, but with every counter flattened
//! under stable names (see [`swip_report::ConfigReport`]), the session's
//! cache/work counters, and a configuration fingerprint so two runs of the
//! same experiment are directly diffable via `swip report --diff`.

use std::fs;
use std::io;
use std::path::PathBuf;

use swip_asmdb::Cfg;
use swip_report::{ConfigReport, RunReport, WorkloadReport};

use crate::{ConfigId, Session, WorkloadResults};

/// Flattens one [`WorkloadResults`] into its report entry; `job_seconds`
/// is supplied by the caller because the two report flavors disagree on
/// whether wall-clock belongs in the document. When the results include an
/// AsmDB configuration, the entry also carries the statically predicted
/// coverage of the session's insertion plan (see [`predicted_coverage`]).
fn workload_report(session: &Session, r: &WorkloadResults, job_seconds: f64) -> WorkloadReport {
    let configs: Vec<ConfigReport> = ConfigId::ALL
        .iter()
        .filter_map(|&id| {
            r.get(id).map(|sim| {
                let mut c = ConfigReport::from_sim(id.label(), sim);
                c.prefetcher = id.prefetcher().label().to_string();
                c
            })
        })
        .collect();
    let ran_asmdb = ConfigId::ALL
        .iter()
        .any(|&id| id.needs_asmdb() && r.get(id).is_some());
    WorkloadReport {
        name: r.name().to_string(),
        job_seconds,
        coverage: if ran_asmdb {
            predicted_coverage(session, r.name())
        } else {
            Vec::new()
        },
        configs,
    }
}

/// Statically evaluates the session's AsmDB plan for `workload` with
/// `swip-analyze`'s coverage rules (DESIGN.md §14), returning the
/// [`PredictedCoverage`](swip_analyze::PredictedCoverage) counter pairs.
///
/// Fully deterministic — the plan, trace, and CFG are all memoized session
/// artifacts — so both report flavors can embed it without breaking the
/// byte-identity contract of [`build_plan_report`]. Empty when `workload`
/// is not in the session's suite.
pub fn predicted_coverage(session: &Session, workload: &str) -> Vec<(String, u64)> {
    let Some(spec) = session.workloads().into_iter().find(|w| w.name == workload) else {
        return Vec::new();
    };
    let trace = session.trace(&spec);
    let out = session.asmdb(&spec);
    let cfg = Cfg::from_trace(&trace);
    let entry = trace
        .instructions()
        .first()
        .and_then(|i| cfg.block_of(i.pc));
    let eval = swip_analyze::evaluate_plan(
        &cfg,
        entry,
        &out.plan,
        &swip_analyze::CoverageConfig::default(),
    );
    eval.coverage.counter_pairs()
}

/// The flattened session cache/work counters, as stored in a
/// [`RunReport`]'s `session` block and served by `swip-serve`'s
/// `/metrics` endpoint.
pub fn session_counter_pairs(session: &Session) -> Vec<(String, u64)> {
    let c = session.counters();
    vec![
        ("trace_generations".into(), c.trace_generations),
        ("trace_cache_hits".into(), c.trace_cache_hits),
        ("trace_disk_hits".into(), c.trace_disk_hits),
        ("asmdb_profiles".into(), c.asmdb_profiles),
        ("asmdb_cache_hits".into(), c.asmdb_cache_hits),
        ("sim_runs".into(), c.sim_runs),
    ]
}

/// Assembles the [`RunReport`] for a finished sweep: run knobs from the
/// session, one [`ConfigReport`] per executed (workload, configuration)
/// job, the session counters, and the sealed fingerprint.
pub fn build_run_report(session: &Session, figure: &str, results: &[WorkloadResults]) -> RunReport {
    let mut report = RunReport::new(
        figure,
        session.instructions(),
        session.stride() as u64,
        session.threads() as u64,
    );
    report.session = session_counter_pairs(session);
    for r in results {
        report
            .workloads
            .push(workload_report(session, r, r.job_seconds()));
    }
    report.seal();
    report
}

/// Assembles the *deterministic* [`RunReport`] for one plan execution —
/// the document `swip-serve` stores for a finished job.
///
/// Unlike [`build_run_report`], this flavor carries only the measurement:
/// the session counter block is empty (a warm server's cumulative cache
/// counters describe the process, not the job — they live on `/metrics`)
/// and `job_seconds` is zeroed (wall-clock lives on the job resource).
/// Two executions of the same plan at the same knobs therefore produce
/// **byte-identical** JSON, whether served or run offline — the property
/// the serve integration tests pin.
pub fn build_plan_report(session: &Session, results: &[WorkloadResults]) -> RunReport {
    let mut report = RunReport::new(
        "plan",
        session.instructions(),
        session.stride() as u64,
        session.threads() as u64,
    );
    for r in results {
        report.workloads.push(workload_report(session, r, 0.0));
    }
    report.seal();
    report
}

/// Writes the run report as pretty JSON to
/// `target/experiments/report.json`, returning the path.
///
/// # Errors
///
/// Propagates any I/O failure, like [`emit_tsv`](crate::emit_tsv).
pub fn emit_report(
    session: &Session,
    figure: &str,
    results: &[WorkloadResults],
) -> io::Result<PathBuf> {
    let report = build_run_report(session, figure, results);
    let dir = crate::out_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join("report.json");
    fs::write(&path, report.to_json())?;
    eprintln!("[wrote {}]", path.display());
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentPlan, SessionBuilder};
    use swip_report::RunReport;

    fn small_session() -> Session {
        SessionBuilder::new()
            .instructions(20_000)
            .stride(48)
            .threads(2)
            .build()
            .unwrap()
    }

    #[test]
    fn run_report_mirrors_the_results() {
        let session = small_session();
        let plan = ExperimentPlan::all_figures(session.workloads());
        let results = session.run(&plan).unwrap();
        let report = build_run_report(&session, "all", &results);

        assert_eq!(report.instructions, 20_000);
        assert_eq!(report.stride, 48);
        assert_eq!(report.session_counter("sim_runs"), Some(6));
        assert_eq!(report.session_counter("trace_generations"), Some(1));
        assert_eq!(report.workloads.len(), results.len());

        let r = &results[0];
        let w = report.workload(r.name()).unwrap();
        assert_eq!(w.configs.len(), 6);
        for id in ConfigId::PAPER {
            let sim = r.report(id);
            let c = w.config(id.label()).unwrap();
            assert_eq!(c.prefetcher, id.prefetcher().label());
            assert_eq!(c.counter("cycles"), Some(sim.cycles));
            assert_eq!(c.counter("instructions"), Some(sim.instructions));
            assert_eq!(
                c.counter("ftq.head_stall_cycles"),
                Some(sim.frontend.head_stall_cycles.get())
            );
            assert_eq!(c.value("effective_ipc"), Some(sim.effective_ipc));
        }
        // And it survives the JSON round trip with the fingerprint intact.
        let back = RunReport::from_json_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.compute_fingerprint(), back.fingerprint);
    }

    #[test]
    fn plan_reports_are_deterministic_across_sessions() {
        let plan_for = |s: &Session| ExperimentPlan::all_figures(s.workloads());

        // A warm session (second run hits every memo) ...
        let warm = small_session();
        let _ = warm.run(&plan_for(&warm)).unwrap();
        let warm_results = warm.run(&plan_for(&warm)).unwrap();
        let warm_report = build_plan_report(&warm, &warm_results);

        // ... and a cold one produce byte-identical plan reports.
        let cold = small_session();
        let cold_results = cold.run(&plan_for(&cold)).unwrap();
        let cold_report = build_plan_report(&cold, &cold_results);

        assert_eq!(warm_report.to_json(), cold_report.to_json());
        assert!(warm_report.session.is_empty());
        assert_eq!(warm_report.workloads[0].job_seconds, 0.0);
        assert_eq!(warm_report.figure, "plan");
        // The volatile flavor, by contrast, differs in its session block.
        assert_ne!(
            build_run_report(&warm, "all", &warm_results).session,
            build_run_report(&cold, "all", &cold_results).session
        );
    }

    #[test]
    fn coverage_rides_along_only_on_asmdb_sweeps() {
        let session = small_session();
        let all = ExperimentPlan::all_figures(session.workloads());
        let results = session.run(&all).unwrap();
        let report = build_run_report(&session, "all", &results);
        for w in &report.workloads {
            assert!(!w.coverage.is_empty(), "{} has no coverage", w.name);
            let sites = w.coverage_counter("sites").unwrap();
            // The classes partition the sites (DESIGN.md §14). A small
            // session can legitimately plan zero insertions; the block is
            // still embedded so `--predict-vs` can report "nothing ran".
            let sum: u64 = [
                "useful_sites",
                "dead_sites",
                "redundant_sites",
                "late_sites",
                "clobbering_sites",
            ]
            .iter()
            .map(|n| w.coverage_counter(n).unwrap())
            .sum();
            assert_eq!(sum, sites, "{}", w.name);
            // Trace-derived AsmDB plans anchor on executed blocks, so the
            // static evaluator must never call one dead.
            assert_eq!(w.coverage_counter("dead_sites"), Some(0));
        }
        // Base-only sweeps never touch the AsmDB pipeline, so no coverage.
        let base = ExperimentPlan::new(session.workloads(), &[ConfigId::Base, ConfigId::Fdp]);
        let results = session.run(&base).unwrap();
        let report = build_run_report(&session, "fig8", &results);
        assert!(report.workloads.iter().all(|w| w.coverage.is_empty()));
        assert!(!report.to_json().contains("\"coverage\""));
    }

    #[test]
    fn partial_plans_report_only_executed_configs() {
        let session = small_session();
        let plan = ExperimentPlan::new(session.workloads(), &crate::figures::FIG8_CONFIGS);
        let results = session.run(&plan).unwrap();
        let report = build_run_report(&session, "fig8", &results);
        let w = &report.workloads[0];
        assert_eq!(w.configs.len(), 2);
        assert!(w.config(ConfigId::Base.label()).is_some());
        assert!(w.config(ConfigId::Fdp.label()).is_some());
        assert!(w.config(ConfigId::AsmdbFdp.label()).is_none());
    }
}
