//! Shared figure emitters: one row-builder + TSV writer per paper figure,
//! used by both the per-figure binaries and `swip bench` / `allfigs`, so
//! every caller produces byte-identical TSVs.

use std::io;
use std::path::PathBuf;

use swip_asmdb::RewriteReport;
use swip_core::{SimConfig, SimReport};
use swip_types::{geomean, PrefetcherId};

use crate::{emit_tsv, BenchError, ConfigId, ExperimentPlan, Session, WorkloadResults};

/// The configurations Figure 8 needs (baseline front-ends only).
pub const FIG8_CONFIGS: [ConfigId; 2] = [ConfigId::Base, ConfigId::Fdp];

/// The configurations the scenario-taxonomy table needs.
pub const SCENARIO_CONFIGS: [ConfigId; 4] = [
    ConfigId::Base,
    ConfigId::AsmdbCons,
    ConfigId::Fdp,
    ConfigId::AsmdbFdp,
];

/// Formats one workload's Figure-1 row (name + five speedup columns).
pub fn fig1_row(r: &WorkloadResults) -> String {
    let s = r.fig1_series();
    format!(
        "{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
        r.name(),
        s[0].1,
        s[1].1,
        s[2].1,
        s[3].1,
        s[4].1
    )
}

/// Emits `fig1.tsv` (five speedup series + geomean) and prints the §IV
/// sanity row (average L1-I MPKI at the 24-entry FTQ) to stdout.
pub fn emit_fig1(results: &[WorkloadResults]) -> io::Result<PathBuf> {
    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for r in results {
        rows.push(fig1_row(r));
        for (i, (_, v)) in r.fig1_series().iter().enumerate() {
            series[i].push(*v);
        }
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
        geomean(&series[0]),
        geomean(&series[1]),
        geomean(&series[2]),
        geomean(&series[3]),
        geomean(&series[4])
    ));
    let path = emit_tsv(
        "fig1",
        "workload\tAsmDB\tAsmDB-NoOv\tFDP24\tAsmDB+FDP\tAsmDB+FDP-NoOv",
        &rows,
    )?;
    let mpki: f64 =
        results.iter().map(|r| r.fdp().l1i_mpki).sum::<f64>() / results.len().max(1) as f64;
    println!("# avg L1-I MPKI at 24-entry FTQ: {mpki:.2} (paper: 25.5)");
    Ok(path)
}

/// Formats one workload's Figure-7 (bloat) row.
pub fn fig7_row(name: &str, bloat: &RewriteReport) -> String {
    format!(
        "{}\t{:.4}\t{:.4}\t{}\t{}",
        name,
        bloat.static_bloat * 100.0,
        bloat.dynamic_bloat * 100.0,
        bloat.inserted_sites,
        bloat.inserted_dynamic
    )
}

/// Emits `fig7.tsv` (static/dynamic code bloat + suite averages).
pub fn emit_fig7(bloats: &[(String, RewriteReport)]) -> io::Result<PathBuf> {
    let mut rows = Vec::new();
    let (mut s_sum, mut d_sum) = (0.0, 0.0);
    for (name, bloat) in bloats {
        rows.push(fig7_row(name, bloat));
        s_sum += bloat.static_bloat * 100.0;
        d_sum += bloat.dynamic_bloat * 100.0;
    }
    let n = bloats.len().max(1) as f64;
    rows.push(format!("average\t{:.4}\t{:.4}\t-\t-", s_sum / n, d_sum / n));
    emit_tsv(
        "fig7",
        "workload\tstatic_bloat_pct\tdynamic_bloat_pct\tstatic_sites\tdynamic_prefetches",
        &rows,
    )
}

/// Emits `fig8.tsv` (head vs non-head fetch cycles) and prints the §V.B
/// line-request comparison to stdout.
pub fn emit_fig8(results: &[WorkloadResults]) -> io::Result<PathBuf> {
    let mut rows = Vec::new();
    let (mut acc2, mut acc24) = (0u64, 0u64);
    for r in results {
        rows.push(format!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            r.name(),
            r.fdp().frontend.head_fetch_cycles.mean(),
            r.fdp().frontend.nonhead_fetch_cycles.mean(),
            r.base().frontend.head_fetch_cycles.mean(),
            r.base().frontend.nonhead_fetch_cycles.mean(),
        ));
        acc24 += r.fdp().frontend.line_requests.get();
        acc2 += r.base().frontend.line_requests.get();
    }
    let path = emit_tsv(
        "fig8",
        "workload\thead_cycles_ftq24\tnonhead_cycles_ftq24\thead_cycles_ftq2\tnonhead_cycles_ftq2",
        &rows,
    )?;
    if acc2 > 0 {
        println!(
            "# L1-I line requests: FTQ24 issues {:.1}% fewer than FTQ2 (paper: ~14%)",
            (1.0 - acc24 as f64 / acc2 as f64) * 100.0
        );
    }
    Ok(path)
}

/// Emits one of the six-column counter figures (9, 10, 11).
fn emit_counter_fig(
    name: &str,
    results: &[WorkloadResults],
    get: fn(&SimReport) -> u64,
) -> io::Result<PathBuf> {
    let mut rows = Vec::new();
    for r in results {
        rows.push(format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.name(),
            get(r.base()),
            get(r.asmdb_cons()),
            get(r.asmdb_cons_noov()),
            get(r.fdp()),
            get(r.asmdb_fdp()),
            get(r.asmdb_fdp_noov()),
        ));
    }
    emit_tsv(
        name,
        "workload\tftq2_fdp\tftq2_asmdb\tftq2_asmdb_noov\tftq24_fdp\tftq24_asmdb\tftq24_asmdb_noov",
        &rows,
    )
}

/// Emits `fig9.tsv`: stall cycles incurred by the head FTQ entry.
pub fn emit_fig9(results: &[WorkloadResults]) -> io::Result<PathBuf> {
    emit_counter_fig("fig9", results, |r| r.frontend.head_stall_cycles.get())
}

/// Emits `fig10.tsv`: FTQ entries forced to wait on a stalling head.
pub fn emit_fig10(results: &[WorkloadResults]) -> io::Result<PathBuf> {
    emit_counter_fig("fig10", results, |r| {
        r.frontend.entries_waiting_on_head.get()
    })
}

/// Emits `fig11.tsv`: entries reaching the head while still fetching.
pub fn emit_fig11(results: &[WorkloadResults]) -> io::Result<PathBuf> {
    emit_counter_fig("fig11", results, |r| {
        r.frontend.partially_covered_entries.get()
    })
}

/// Emits `scenarios.tsv`: the §III per-cycle FTQ-state taxonomy.
pub fn emit_scenarios(results: &[WorkloadResults]) -> io::Result<PathBuf> {
    let mut rows = Vec::new();
    for r in results {
        for id in SCENARIO_CONFIGS {
            let (s1, s2, s3, empty) = r.report(id).frontend.scenario_fractions();
            rows.push(format!(
                "{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                r.name(),
                id.label(),
                s1,
                s2,
                s3,
                empty
            ));
        }
    }
    emit_tsv("scenarios", "workload\tconfig\ts1\ts2\ts3\tempty", &rows)
}

/// Emits `table1.tsv`: the paper's simulation parameters.
pub fn emit_table1() -> io::Result<PathBuf> {
    let mut rows = Vec::new();
    for (k, v) in SimConfig::sunny_cove_like().table_rows() {
        rows.push(format!("{k}\t{v}"));
    }
    rows.push(format!(
        "FTQ (conservative)\t{} entries",
        SimConfig::conservative().frontend.ftq_entries
    ));
    emit_tsv("table1", "parameter\tvalue", &rows)
}

/// Emits `prefetchers.tsv`: the Fig-9-style zoo comparison — one row per
/// (workload, prefetcher), every mechanism on the industry-standard
/// 24-entry-FTQ front-end so the rows differ only in the prefetcher.
pub fn emit_prefetchers(
    results: &[WorkloadResults],
    prefetchers: &[PrefetcherId],
) -> io::Result<PathBuf> {
    let mut rows = Vec::new();
    for r in results {
        for p in prefetchers {
            let report = r.report(ConfigId::for_prefetcher(*p));
            rows.push(format!(
                "{}\t{}\t{:.4}\t{:.4}",
                r.name(),
                p.label(),
                report.ipc,
                report.l1i_mpki
            ));
        }
    }
    emit_tsv("prefetchers", "workload\tprefetcher\tipc\tl1i_mpki", &rows)
}

/// Runs the prefetcher-zoo sweep over `prefetchers` (all four when the
/// caller passes [`PrefetcherId::ALL`]) and emits `prefetchers.tsv` plus
/// the embedded run report. This is the entry point behind
/// `swip bench --prefetcher`.
pub fn run_prefetcher_sweep(
    session: &Session,
    prefetchers: &[PrefetcherId],
) -> Result<Vec<PathBuf>, BenchError> {
    let mut unique: Vec<PrefetcherId> = Vec::new();
    for p in prefetchers {
        if !unique.contains(p) {
            unique.push(*p);
        }
    }
    let prefetchers = unique.as_slice();
    let plan = ExperimentPlan::prefetcher_zoo(session.workloads(), prefetchers);
    eprintln!(
        "prefetcher zoo: {} workloads × {} mechanisms ({}) at {} instructions on {} thread(s)",
        plan.workloads().len(),
        prefetchers.len(),
        prefetchers
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(", "),
        session.instructions(),
        session.threads()
    );
    let results = session.run(&plan)?;
    Ok(vec![
        emit_prefetchers(&results, prefetchers)?,
        crate::emit_report(session, "prefetchers", &results)?,
    ])
}

/// Runs the AsmDB pipeline (memoized) over the session's workloads in
/// parallel and returns each workload's bloat accounting, without any
/// evaluation simulations — all Figure 7 needs.
pub fn bloat_sweep(session: &Session) -> Result<Vec<(String, RewriteReport)>, BenchError> {
    let specs = session.workloads();
    Ok(session.par_map(&specs, |_, spec| {
        (spec.name.clone(), session.asmdb(spec).report)
    })?)
}

/// Runs the full six-configuration plan once and emits every figure of
/// the single-sweep evaluation (`fig1`, `fig7`–`fig11`, `scenarios`),
/// streaming a per-workload summary line to stderr in suite order.
pub fn emit_all(session: &Session) -> Result<Vec<PathBuf>, BenchError> {
    let plan = ExperimentPlan::all_figures(session.workloads());
    eprintln!(
        "running {} workloads × {} simulations (+1 profile each) at {} instructions on {} thread(s)",
        plan.workloads().len(),
        plan.configs().len(),
        session.instructions(),
        session.threads()
    );
    let n = plan.workloads().len();
    let mut i = 0usize;
    let results = session.run_streaming(&plan, |r| {
        i += 1;
        eprintln!(
            "[{i}/{n}] {}  FDP24 {:.3}x  AsmDB+FDP {:.3}x",
            r.name(),
            r.fdp().speedup_over(r.base()),
            r.asmdb_fdp().speedup_over(r.base())
        );
    })?;
    let bloats: Vec<(String, RewriteReport)> = results
        .iter()
        .map(|r| (r.name().to_string(), *r.bloat()))
        .collect();
    Ok(vec![
        emit_fig1(&results)?,
        emit_fig7(&bloats)?,
        emit_fig8(&results)?,
        emit_fig9(&results)?,
        emit_fig10(&results)?,
        emit_fig11(&results)?,
        emit_scenarios(&results)?,
        crate::emit_report(session, "all", &results)?,
    ])
}

/// Runs and emits one named figure (`fig1`, `fig7`–`fig11`, `scenarios`,
/// `table1`, `prefetchers`), or every single-sweep figure for `all`. This
/// is the entry point behind `swip bench --figure NAME` and the
/// per-figure binaries.
pub fn run_figure(session: &Session, name: &str) -> Result<Vec<PathBuf>, BenchError> {
    let all_six = || ExperimentPlan::all_figures(session.workloads());
    match name {
        "all" | "allfigs" => emit_all(session),
        "prefetchers" => run_prefetcher_sweep(session, &PrefetcherId::ALL),
        "table1" => Ok(vec![emit_table1()?]),
        "fig1" => Ok(vec![emit_fig1(&session.run(&all_six())?)?]),
        "fig7" => Ok(vec![emit_fig7(&bloat_sweep(session)?)?]),
        "fig8" => {
            let plan = ExperimentPlan::new(session.workloads(), &FIG8_CONFIGS);
            Ok(vec![emit_fig8(&session.run(&plan)?)?])
        }
        "fig9" => Ok(vec![emit_fig9(&session.run(&all_six())?)?]),
        "fig10" => Ok(vec![emit_fig10(&session.run(&all_six())?)?]),
        "fig11" => Ok(vec![emit_fig11(&session.run(&all_six())?)?]),
        "scenarios" => {
            let plan = ExperimentPlan::new(session.workloads(), &SCENARIO_CONFIGS);
            Ok(vec![emit_scenarios(&session.run(&plan)?)?])
        }
        other => Err(BenchError::UnknownFigure(other.to_string())),
    }
}
