//! The parallel job engine: a self-scheduling `std::thread` pool (idle
//! workers steal the next unclaimed job from a shared index — no external
//! dependencies) with panic containment and deterministic, ordered result
//! streaming.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, PoisonError};
use std::time::Instant;

use swip_core::SimReport;

use crate::{ConfigId, ExperimentPlan, Session, WorkloadResults};

/// A failure while executing jobs on the pool.
#[derive(Debug)]
pub enum EngineError {
    /// A worker panicked while running a job. The session fails cleanly —
    /// remaining queued jobs are abandoned and all workers are joined —
    /// instead of hanging or aborting the process.
    JobPanicked {
        /// Which job panicked (workload/config, or the item index for
        /// [`Session::par_map`] jobs).
        label: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::JobPanicked { label, message } => {
                write!(f, "job {label} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `n_jobs` jobs on up to `threads` workers. Workers claim jobs from
/// a shared atomic cursor; each completed job is handed to `on_done` on
/// the calling thread, in completion order. The first panicking job stops
/// further claims and surfaces as an [`EngineError::JobPanicked`].
fn pool_run<T: Send>(
    threads: usize,
    n_jobs: usize,
    job: impl Fn(usize) -> T + Sync,
    label: impl Fn(usize) -> String + Sync,
    mut on_done: impl FnMut(usize, T),
) -> Result<(), EngineError> {
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panicked: Mutex<Option<(String, String)>> = Mutex::new(None);
    let workers = threads.min(n_jobs).max(1);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (job, label, next, abort, panicked) = (&job, &label, &next, &abort, &panicked);
            s.spawn(move || loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| job(i))) {
                    Ok(v) => {
                        if tx.send((i, v)).is_err() {
                            break;
                        }
                    }
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut slot = panicked.lock().unwrap_or_else(PoisonError::into_inner);
                        if slot.is_none() {
                            *slot = Some((label(i), panic_message(payload.as_ref())));
                        }
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, v) in rx {
            on_done(i, v);
        }
    });
    match panicked
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        Some((label, message)) => Err(EngineError::JobPanicked { label, message }),
        None => Ok(()),
    }
}

/// Per-workload accumulation while that workload's jobs are in flight.
struct PendingWorkload {
    reports: [Option<SimReport>; 8],
    seconds: f64,
    remaining: usize,
}

impl Session {
    /// Executes `plan` on the session's thread pool and returns one
    /// [`WorkloadResults`] per plan workload, in plan order.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::JobPanicked`] if any job panicked.
    pub fn run(&self, plan: &ExperimentPlan) -> Result<Vec<WorkloadResults>, EngineError> {
        self.run_streaming(plan, |_| {})
    }

    /// Like [`Session::run`], but additionally streams each workload's
    /// assembled results to `on_result` — in deterministic plan order, as
    /// soon as all of that workload's jobs (and all earlier workloads')
    /// have completed. Out-of-order completions are buffered, so the
    /// callback sees exactly the same sequence regardless of thread count.
    ///
    /// Each job logs a `[k/N] workload/config <seconds>s` progress line on
    /// stderr as it finishes.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::JobPanicked`] if any job panicked.
    pub fn run_streaming<F>(
        &self,
        plan: &ExperimentPlan,
        mut on_result: F,
    ) -> Result<Vec<WorkloadResults>, EngineError>
    where
        F: FnMut(&WorkloadResults),
    {
        let jobs = plan.jobs();
        let total = jobs.len();
        let workloads = plan.workloads();
        let n_configs = plan.configs().len();
        let done = AtomicUsize::new(0);

        let mut pending: Vec<PendingWorkload> = workloads
            .iter()
            .map(|_| PendingWorkload {
                reports: Default::default(),
                seconds: 0.0,
                remaining: n_configs,
            })
            .collect();
        let mut results: Vec<WorkloadResults> = Vec::with_capacity(workloads.len());
        let mut next_emit = 0usize;

        pool_run(
            self.threads,
            total,
            |j| {
                let (w, id) = jobs[j];
                let spec = &workloads[w];
                let start = Instant::now();
                let report = self.run_job(spec, id);
                let seconds = start.elapsed().as_secs_f64();
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!("[{k}/{total}] {}/{} {seconds:.2}s", spec.name, id.label());
                (id, report, seconds)
            },
            |j| {
                let (w, id) = jobs[j];
                format!("{}/{}", workloads[w].name, id.label())
            },
            |j, (id, report, seconds)| {
                let (w, _) = jobs[j];
                {
                    let p = &mut pending[w];
                    p.reports[id.index()] = Some(report);
                    p.seconds += seconds;
                    p.remaining -= 1;
                }
                while next_emit < workloads.len() && pending[next_emit].remaining == 0 {
                    let p = &mut pending[next_emit];
                    let spec = &workloads[next_emit];
                    let bloat = plan.wants_asmdb().then(|| self.asmdb(spec).report);
                    let wr = WorkloadResults {
                        name: spec.name.clone(),
                        bloat,
                        reports: std::mem::take(&mut p.reports),
                        job_seconds: p.seconds,
                    };
                    on_result(&wr);
                    results.push(wr);
                    next_emit += 1;
                }
            },
        )?;
        Ok(results)
    }

    /// Maps `f` over `items` on the session's thread pool, returning the
    /// outputs in input order. `f` runs on worker threads and may use the
    /// session's memoized [`trace`](Session::trace) /
    /// [`asmdb`](Session::asmdb) artifacts freely.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::JobPanicked`] if `f` panicked on any item;
    /// the pool shuts down cleanly instead of hanging.
    pub fn par_map<I, T, F>(&self, items: &[I], f: F) -> Result<Vec<T>, EngineError>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = items.iter().map(|_| None).collect();
        pool_run(
            self.threads,
            items.len(),
            |i| f(i, &items[i]),
            |i| format!("item {i}"),
            |i, v| slots[i] = Some(v),
        )?;
        Ok(slots
            .into_iter()
            .map(|s| s.expect("job completed"))
            .collect())
    }
}

// The engine requires the simulation stack to be thread-safe; these
// assertions fail to compile if a non-Send/Sync type (Rc, RefCell, raw
// pointer) sneaks into any of the shared structures.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<ExperimentPlan>();
    assert_send_sync::<WorkloadResults>();
    assert_send_sync::<ConfigId>();
    assert_send_sync::<swip_core::Simulator>();
    assert_send_sync::<swip_core::SimConfig>();
    assert_send_sync::<swip_core::SimReport>();
    assert_send_sync::<swip_trace::Trace>();
    assert_send_sync::<swip_asmdb::AsmdbOutput>();
};
