//! Per-workload experiment results assembled by the engine.

use swip_asmdb::RewriteReport;
use swip_core::SimReport;

use crate::ConfigId;

/// The simulation reports a plan produced for one workload, plus AsmDB's
/// bloat accounting when the plan ran the AsmDB pipeline.
///
/// Only the configurations named in the executed
/// [`ExperimentPlan`](crate::ExperimentPlan) are present; the accessors
/// panic (with the missing configuration's name) when asked for a report
/// the plan never ran, which is always a caller bug.
#[derive(Clone, Debug)]
pub struct WorkloadResults {
    pub(crate) name: String,
    pub(crate) bloat: Option<RewriteReport>,
    pub(crate) reports: [Option<SimReport>; 8],
    pub(crate) job_seconds: f64,
}

impl WorkloadResults {
    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The report for `id`, if the plan ran it.
    pub fn get(&self, id: ConfigId) -> Option<&SimReport> {
        self.reports[id.index()].as_ref()
    }

    /// The report for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the executed plan did not include `id`.
    pub fn report(&self, id: ConfigId) -> &SimReport {
        self.get(id).unwrap_or_else(|| {
            panic!(
                "configuration {} was not part of the executed plan for {}",
                id.label(),
                self.name
            )
        })
    }

    /// AsmDB rewrite accounting (Fig 7).
    ///
    /// # Panics
    ///
    /// Panics if the executed plan included no AsmDB configuration.
    pub fn bloat(&self) -> &RewriteReport {
        self.bloat.as_ref().unwrap_or_else(|| {
            panic!(
                "plan ran no AsmDB configuration for {}, so no bloat report exists",
                self.name
            )
        })
    }

    /// Total simulation seconds spent on this workload's jobs.
    pub fn job_seconds(&self) -> f64 {
        self.job_seconds
    }

    /// Conservative (2-entry FTQ) baseline.
    pub fn base(&self) -> &SimReport {
        self.report(ConfigId::Base)
    }

    /// AsmDB on the conservative front-end.
    pub fn asmdb_cons(&self) -> &SimReport {
        self.report(ConfigId::AsmdbCons)
    }

    /// AsmDB, no insertion overhead, conservative front-end.
    pub fn asmdb_cons_noov(&self) -> &SimReport {
        self.report(ConfigId::AsmdbConsNoov)
    }

    /// Industry-standard FDP (24-entry FTQ).
    pub fn fdp(&self) -> &SimReport {
        self.report(ConfigId::Fdp)
    }

    /// AsmDB on the industry-standard FDP.
    pub fn asmdb_fdp(&self) -> &SimReport {
        self.report(ConfigId::AsmdbFdp)
    }

    /// AsmDB, no insertion overhead, industry-standard FDP.
    pub fn asmdb_fdp_noov(&self) -> &SimReport {
        self.report(ConfigId::AsmdbFdpNoov)
    }

    /// MANA-style record-and-replay on the industry-standard FDP.
    pub fn mana(&self) -> &SimReport {
        self.report(ConfigId::Mana)
    }

    /// Shadow-branch BTB pre-fill on the industry-standard FDP.
    pub fn shadow_btb(&self) -> &SimReport {
        self.report(ConfigId::ShadowBtb)
    }

    /// The five Figure-1 series as speedups over the conservative baseline,
    /// in the paper's legend order.
    pub fn fig1_series(&self) -> [(&'static str, f64); 5] {
        let base = self.base();
        [
            ("AsmDB", self.asmdb_cons().speedup_over(base)),
            (
                "AsmDB-NoInsertionOverhead",
                self.asmdb_cons_noov().speedup_over(base),
            ),
            ("FDP(24-Entry-FTQ)", self.fdp().speedup_over(base)),
            ("AsmDB+FDP", self.asmdb_fdp().speedup_over(base)),
            (
                "AsmDB+FDP-NoInsertionOverhead",
                self.asmdb_fdp_noov().speedup_over(base),
            ),
        ]
    }
}
