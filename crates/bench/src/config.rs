//! The experiment configuration axis: the paper's six simulation
//! configurations and the named AsmDB tunings.

use swip_asmdb::AsmdbConfig;
use swip_core::SimConfig;

/// One of the six simulation configurations behind the paper's figures.
///
/// The first three run on the conservative 2-entry-FTQ front-end, the last
/// three on the industry-standard 24-entry-FTQ FDP. `Asmdb*` variants
/// simulate the AsmDB-rewritten trace; `*Noov` variants simulate the
/// original trace with no-overhead prefetch hints.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ConfigId {
    /// Conservative baseline (2-entry FTQ FDP).
    Base,
    /// AsmDB on the conservative front-end.
    AsmdbCons,
    /// AsmDB with no insertion overhead on the conservative front-end.
    AsmdbConsNoov,
    /// Industry-standard FDP (24-entry FTQ).
    Fdp,
    /// AsmDB on the industry-standard FDP.
    AsmdbFdp,
    /// AsmDB with no insertion overhead on the industry-standard FDP.
    AsmdbFdpNoov,
}

impl ConfigId {
    /// All six configurations, in the canonical (figure-column) order.
    pub const ALL: [ConfigId; 6] = [
        ConfigId::Base,
        ConfigId::AsmdbCons,
        ConfigId::AsmdbConsNoov,
        ConfigId::Fdp,
        ConfigId::AsmdbFdp,
        ConfigId::AsmdbFdpNoov,
    ];

    /// Stable index into the canonical order (0–5).
    pub fn index(self) -> usize {
        match self {
            ConfigId::Base => 0,
            ConfigId::AsmdbCons => 1,
            ConfigId::AsmdbConsNoov => 2,
            ConfigId::Fdp => 3,
            ConfigId::AsmdbFdp => 4,
            ConfigId::AsmdbFdpNoov => 5,
        }
    }

    /// Short label used in progress lines and TSV columns.
    pub fn label(self) -> &'static str {
        match self {
            ConfigId::Base => "ftq2_fdp",
            ConfigId::AsmdbCons => "ftq2_asmdb",
            ConfigId::AsmdbConsNoov => "ftq2_asmdb_noov",
            ConfigId::Fdp => "ftq24_fdp",
            ConfigId::AsmdbFdp => "ftq24_asmdb",
            ConfigId::AsmdbFdpNoov => "ftq24_asmdb_noov",
        }
    }

    /// The inverse of [`ConfigId::label`]: resolves a label from a wire
    /// plan (`swip-serve` job submissions) or a report back to its id.
    pub fn from_label(label: &str) -> Option<Self> {
        ConfigId::ALL.into_iter().find(|id| id.label() == label)
    }

    /// Whether this configuration consumes the AsmDB pipeline's output
    /// (rewritten trace or no-overhead hints).
    pub fn needs_asmdb(self) -> bool {
        !matches!(self, ConfigId::Base | ConfigId::Fdp)
    }

    /// The simulator configuration this runs under.
    pub fn sim_config(self) -> SimConfig {
        match self {
            ConfigId::Base | ConfigId::AsmdbCons | ConfigId::AsmdbConsNoov => {
                SimConfig::conservative()
            }
            ConfigId::Fdp | ConfigId::AsmdbFdp | ConfigId::AsmdbFdpNoov => {
                SimConfig::sunny_cove_like()
            }
        }
    }
}

/// Named AsmDB tunings selectable from the CLI and the `SWIP_ASMDB` shim.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum AsmdbTuning {
    /// The paper-default tuning ([`AsmdbConfig::default`]).
    #[default]
    Default,
    /// Lower reach threshold, more sites per target
    /// ([`AsmdbConfig::aggressive`]).
    Aggressive,
    /// Wider windows and lower thresholds still (brackets the paper's
    /// operating point from above; see EXPERIMENTS.md).
    Wide,
}

impl AsmdbTuning {
    /// Parses a tuning name (`default` / `aggressive` / `wide`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "default" => Some(AsmdbTuning::Default),
            "aggressive" => Some(AsmdbTuning::Aggressive),
            "wide" => Some(AsmdbTuning::Wide),
            _ => None,
        }
    }

    /// The tuning's concrete knob values.
    pub fn config(self) -> AsmdbConfig {
        match self {
            AsmdbTuning::Default => AsmdbConfig::default(),
            AsmdbTuning::Aggressive => AsmdbConfig::aggressive(),
            AsmdbTuning::Wide => AsmdbConfig {
                min_reach: 0.25,
                max_sites_per_target: 3,
                window_factor: 8,
                miss_coverage: 0.95,
                min_misses: 4,
                ..AsmdbConfig::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_self_consistent() {
        for (i, id) in ConfigId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn asmdb_need_matches_variants() {
        assert!(!ConfigId::Base.needs_asmdb());
        assert!(!ConfigId::Fdp.needs_asmdb());
        assert!(ConfigId::AsmdbCons.needs_asmdb());
        assert!(ConfigId::AsmdbFdpNoov.needs_asmdb());
    }

    #[test]
    fn ftq_depth_per_config() {
        assert_eq!(ConfigId::Base.sim_config().frontend.ftq_entries, 2);
        assert_eq!(ConfigId::AsmdbFdp.sim_config().frontend.ftq_entries, 24);
    }

    #[test]
    fn labels_round_trip() {
        for id in ConfigId::ALL {
            assert_eq!(ConfigId::from_label(id.label()), Some(id));
        }
        assert_eq!(ConfigId::from_label("ftq48_fdp"), None);
    }

    #[test]
    fn tuning_names_round_trip() {
        assert_eq!(AsmdbTuning::parse("default"), Some(AsmdbTuning::Default));
        assert_eq!(
            AsmdbTuning::parse("aggressive"),
            Some(AsmdbTuning::Aggressive)
        );
        assert_eq!(AsmdbTuning::parse("wide"), Some(AsmdbTuning::Wide));
        assert_eq!(AsmdbTuning::parse("bogus"), None);
    }
}
