//! The experiment configuration axis: the paper's six simulation
//! configurations, the prefetcher-zoo extensions, and the named AsmDB
//! tunings.

use std::fmt;

use swip_asmdb::AsmdbConfig;
use swip_core::SimConfig;
use swip_types::PrefetcherId;

/// One simulation configuration of the experiment matrix.
///
/// The paper's six points ([`ConfigId::PAPER`]): the first three run on
/// the conservative 2-entry-FTQ front-end, the last three on the
/// industry-standard 24-entry-FTQ FDP. `Asmdb*` variants simulate the
/// AsmDB-rewritten trace; `*Noov` variants simulate the original trace
/// with no-overhead prefetch hints. The zoo extensions ([`ConfigId::Mana`]
/// and [`ConfigId::ShadowBtb`]) run the original trace on the
/// industry-standard front-end with the corresponding hardware prefetcher
/// installed (DESIGN.md §16).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ConfigId {
    /// Conservative baseline (2-entry FTQ FDP).
    Base,
    /// AsmDB on the conservative front-end.
    AsmdbCons,
    /// AsmDB with no insertion overhead on the conservative front-end.
    AsmdbConsNoov,
    /// Industry-standard FDP (24-entry FTQ).
    Fdp,
    /// AsmDB on the industry-standard FDP.
    AsmdbFdp,
    /// AsmDB with no insertion overhead on the industry-standard FDP.
    AsmdbFdpNoov,
    /// MANA-style metadata record-and-replay on the industry-standard FDP.
    Mana,
    /// Shadow-branch BTB pre-fill on the industry-standard FDP.
    ShadowBtb,
}

/// A failed [`ConfigId::from_label`] parse, carrying the rejected label.
/// The `Display` form lists every valid label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigParseError {
    /// The label that did not match any configuration.
    pub label: String,
}

impl fmt::Display for ConfigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<&str> = ConfigId::ALL.iter().map(|id| id.label()).collect();
        write!(
            f,
            "unknown configuration {:?} (expected one of: {})",
            self.label,
            labels.join(", ")
        )
    }
}

impl std::error::Error for ConfigParseError {}

impl ConfigId {
    /// Every configuration, in the canonical (figure-column) order: the
    /// paper's six followed by the zoo extensions.
    pub const ALL: [ConfigId; 8] = [
        ConfigId::Base,
        ConfigId::AsmdbCons,
        ConfigId::AsmdbConsNoov,
        ConfigId::Fdp,
        ConfigId::AsmdbFdp,
        ConfigId::AsmdbFdpNoov,
        ConfigId::Mana,
        ConfigId::ShadowBtb,
    ];

    /// The paper's six configurations (Figure 1) — the default sweep.
    pub const PAPER: [ConfigId; 6] = [
        ConfigId::Base,
        ConfigId::AsmdbCons,
        ConfigId::AsmdbConsNoov,
        ConfigId::Fdp,
        ConfigId::AsmdbFdp,
        ConfigId::AsmdbFdpNoov,
    ];

    /// Stable index into the canonical order (0–7).
    pub fn index(self) -> usize {
        match self {
            ConfigId::Base => 0,
            ConfigId::AsmdbCons => 1,
            ConfigId::AsmdbConsNoov => 2,
            ConfigId::Fdp => 3,
            ConfigId::AsmdbFdp => 4,
            ConfigId::AsmdbFdpNoov => 5,
            ConfigId::Mana => 6,
            ConfigId::ShadowBtb => 7,
        }
    }

    /// Short label used in progress lines and TSV columns.
    pub fn label(self) -> &'static str {
        match self {
            ConfigId::Base => "ftq2_fdp",
            ConfigId::AsmdbCons => "ftq2_asmdb",
            ConfigId::AsmdbConsNoov => "ftq2_asmdb_noov",
            ConfigId::Fdp => "ftq24_fdp",
            ConfigId::AsmdbFdp => "ftq24_asmdb",
            ConfigId::AsmdbFdpNoov => "ftq24_asmdb_noov",
            ConfigId::Mana => "ftq24_mana",
            ConfigId::ShadowBtb => "ftq24_shadow_btb",
        }
    }

    /// The inverse of [`ConfigId::label`]: resolves a label from a wire
    /// plan (`swip-serve` job submissions) or a report back to its id.
    ///
    /// # Errors
    ///
    /// A [`ConfigParseError`] naming the rejected label; its `Display`
    /// lists the valid ones.
    pub fn from_label(label: &str) -> Result<Self, ConfigParseError> {
        ConfigId::ALL
            .into_iter()
            .find(|id| id.label() == label)
            .ok_or_else(|| ConfigParseError {
                label: label.to_string(),
            })
    }

    /// The prefetch mechanism this configuration characterizes (the
    /// `prefetcher` column of the zoo comparison sweep).
    pub fn prefetcher(self) -> PrefetcherId {
        match self {
            ConfigId::Base | ConfigId::Fdp => PrefetcherId::Fdp,
            ConfigId::AsmdbCons
            | ConfigId::AsmdbConsNoov
            | ConfigId::AsmdbFdp
            | ConfigId::AsmdbFdpNoov => PrefetcherId::Asmdb,
            ConfigId::Mana => PrefetcherId::Mana,
            ConfigId::ShadowBtb => PrefetcherId::ShadowBtb,
        }
    }

    /// The canonical industry-standard-front-end configuration that
    /// characterizes `prefetcher` (the zoo comparison runs one
    /// configuration per mechanism, all on the 24-entry FTQ so the
    /// front-end is held constant).
    pub fn for_prefetcher(prefetcher: PrefetcherId) -> ConfigId {
        match prefetcher {
            PrefetcherId::Fdp => ConfigId::Fdp,
            PrefetcherId::Asmdb => ConfigId::AsmdbFdp,
            PrefetcherId::Mana => ConfigId::Mana,
            PrefetcherId::ShadowBtb => ConfigId::ShadowBtb,
        }
    }

    /// Whether this configuration consumes the AsmDB pipeline's output
    /// (rewritten trace or no-overhead hints).
    pub fn needs_asmdb(self) -> bool {
        !matches!(
            self,
            ConfigId::Base | ConfigId::Fdp | ConfigId::Mana | ConfigId::ShadowBtb
        )
    }

    /// The simulator configuration this runs under.
    pub fn sim_config(self) -> SimConfig {
        match self {
            ConfigId::Base | ConfigId::AsmdbCons | ConfigId::AsmdbConsNoov => {
                SimConfig::conservative()
            }
            ConfigId::Fdp | ConfigId::AsmdbFdp | ConfigId::AsmdbFdpNoov => {
                SimConfig::sunny_cove_like()
            }
            ConfigId::Mana => SimConfig {
                prefetcher: PrefetcherId::Mana,
                ..SimConfig::sunny_cove_like()
            },
            ConfigId::ShadowBtb => SimConfig {
                prefetcher: PrefetcherId::ShadowBtb,
                ..SimConfig::sunny_cove_like()
            },
        }
    }
}

/// Named AsmDB tunings selectable from the CLI and the `SWIP_ASMDB` shim.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum AsmdbTuning {
    /// The paper-default tuning ([`AsmdbConfig::default`]).
    #[default]
    Default,
    /// Lower reach threshold, more sites per target
    /// ([`AsmdbConfig::aggressive`]).
    Aggressive,
    /// Wider windows and lower thresholds still (brackets the paper's
    /// operating point from above; see EXPERIMENTS.md).
    Wide,
}

impl AsmdbTuning {
    /// Parses a tuning name (`default` / `aggressive` / `wide`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "default" => Some(AsmdbTuning::Default),
            "aggressive" => Some(AsmdbTuning::Aggressive),
            "wide" => Some(AsmdbTuning::Wide),
            _ => None,
        }
    }

    /// The tuning's concrete knob values.
    pub fn config(self) -> AsmdbConfig {
        match self {
            AsmdbTuning::Default => AsmdbConfig::default(),
            AsmdbTuning::Aggressive => AsmdbConfig::aggressive(),
            AsmdbTuning::Wide => AsmdbConfig {
                min_reach: 0.25,
                max_sites_per_target: 3,
                window_factor: 8,
                miss_coverage: 0.95,
                min_misses: 4,
                ..AsmdbConfig::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_self_consistent() {
        for (i, id) in ConfigId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn paper_set_is_a_prefix_of_all() {
        assert_eq!(&ConfigId::ALL[..6], &ConfigId::PAPER[..]);
    }

    #[test]
    fn asmdb_need_matches_variants() {
        assert!(!ConfigId::Base.needs_asmdb());
        assert!(!ConfigId::Fdp.needs_asmdb());
        assert!(ConfigId::AsmdbCons.needs_asmdb());
        assert!(ConfigId::AsmdbFdpNoov.needs_asmdb());
        assert!(!ConfigId::Mana.needs_asmdb());
        assert!(!ConfigId::ShadowBtb.needs_asmdb());
    }

    #[test]
    fn ftq_depth_per_config() {
        assert_eq!(ConfigId::Base.sim_config().frontend.ftq_entries, 2);
        assert_eq!(ConfigId::AsmdbFdp.sim_config().frontend.ftq_entries, 24);
        assert_eq!(ConfigId::Mana.sim_config().frontend.ftq_entries, 24);
        assert_eq!(ConfigId::ShadowBtb.sim_config().frontend.ftq_entries, 24);
    }

    #[test]
    fn zoo_configs_select_their_prefetcher() {
        assert_eq!(ConfigId::Mana.sim_config().prefetcher, PrefetcherId::Mana);
        assert_eq!(
            ConfigId::ShadowBtb.sim_config().prefetcher,
            PrefetcherId::ShadowBtb
        );
        assert_eq!(ConfigId::Fdp.sim_config().prefetcher, PrefetcherId::Fdp);
        for id in PrefetcherId::ALL {
            assert_eq!(ConfigId::for_prefetcher(id).prefetcher(), id);
        }
    }

    #[test]
    fn labels_round_trip() {
        for id in ConfigId::ALL {
            assert_eq!(ConfigId::from_label(id.label()), Ok(id));
        }
        let err = ConfigId::from_label("ftq48_fdp").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("ftq48_fdp"), "{msg}");
        for id in ConfigId::ALL {
            assert!(msg.contains(id.label()), "{msg} missing {}", id.label());
        }
    }

    #[test]
    fn tuning_names_round_trip() {
        assert_eq!(AsmdbTuning::parse("default"), Some(AsmdbTuning::Default));
        assert_eq!(
            AsmdbTuning::parse("aggressive"),
            Some(AsmdbTuning::Aggressive)
        );
        assert_eq!(AsmdbTuning::parse("wide"), Some(AsmdbTuning::Wide));
        assert_eq!(AsmdbTuning::parse("bogus"), None);
    }
}
