//! Regenerates Table I: the simulation parameters.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    match swip_bench::figures::emit_table1() {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
