//! Regenerates Table I: the simulation parameters.

use swip_core::SimConfig;

fn main() {
    let mut rows = Vec::new();
    for (k, v) in SimConfig::sunny_cove_like().table_rows() {
        rows.push(format!("{k}\t{v}"));
    }
    rows.push(format!(
        "FTQ (conservative)\t{} entries",
        SimConfig::conservative().frontend.ftq_entries
    ));
    swip_bench::emit_tsv("table1", "parameter\tvalue", &rows);
}
