//! Regenerates Fig9: stall cycles incurred by the head FTQ entry, for the 2-entry (a) and 24-entry (b)
//! front-ends, under baseline FDP, AsmDB+FDP, and AsmDB+FDP with no
//! insertion overhead. Counts are raw for the configured instruction budget
//! (the paper plots the same counters over 100 M instructions).

use swip_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let mut rows = Vec::new();
    for spec in h.workloads() {
        let r = h.run_workload(&spec);
        let row = format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.name,
            r.base.frontend.head_stall_cycles,
            r.asmdb_cons.frontend.head_stall_cycles,
            r.asmdb_cons_noov.frontend.head_stall_cycles,
            r.fdp.frontend.head_stall_cycles,
            r.asmdb_fdp.frontend.head_stall_cycles,
            r.asmdb_fdp_noov.frontend.head_stall_cycles,
        );
        eprintln!("{row}");
        rows.push(row);
    }
    swip_bench::emit_tsv(
        "fig9",
        "workload\tftq2_fdp\tftq2_asmdb\tftq2_asmdb_noov\tftq24_fdp\tftq24_asmdb\tftq24_asmdb_noov",
        &rows,
    );
}
