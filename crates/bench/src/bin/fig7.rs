//! Regenerates Figure 7: static (7a) and dynamic (7b) code bloat of
//! AsmDB. Runs only the AsmDB pipeline per workload — no evaluation
//! simulations are needed for this figure.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{figures, BenchError, SessionBuilder};

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let bloats = figures::bloat_sweep(&session)?;
    figures::emit_fig7(&bloats)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
