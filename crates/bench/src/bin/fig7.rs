//! Regenerates Figure 7: static (7a) and dynamic (7b) code bloat of AsmDB.

use swip_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let mut rows = Vec::new();
    let (mut s_sum, mut d_sum, mut n) = (0.0, 0.0, 0u32);
    for spec in h.workloads() {
        let r = h.run_workload(&spec);
        let row = format!(
            "{}\t{:.4}\t{:.4}\t{}\t{}",
            r.name,
            r.bloat.static_bloat * 100.0,
            r.bloat.dynamic_bloat * 100.0,
            r.bloat.inserted_sites,
            r.bloat.inserted_dynamic
        );
        eprintln!("{row}");
        rows.push(row);
        s_sum += r.bloat.static_bloat * 100.0;
        d_sum += r.bloat.dynamic_bloat * 100.0;
        n += 1;
    }
    rows.push(format!(
        "average\t{:.4}\t{:.4}\t-\t-",
        s_sum / n.max(1) as f64,
        d_sum / n.max(1) as f64
    ));
    swip_bench::emit_tsv(
        "fig7",
        "workload\tstatic_bloat_pct\tdynamic_bloat_pct\tstatic_sites\tdynamic_prefetches",
        &rows,
    );
}
