//! Section III support: the per-cycle FTQ-state taxonomy (Scenarios
//! 1/2/3) under each configuration.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{figures, BenchError, ExperimentPlan, SessionBuilder};

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let plan = ExperimentPlan::new(session.workloads(), &figures::SCENARIO_CONFIGS);
    let results = session.run_streaming(&plan, |r| eprintln!("done {}", r.name()))?;
    figures::emit_scenarios(&results)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
