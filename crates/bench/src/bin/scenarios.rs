//! Section III support: the per-cycle FTQ-state taxonomy (Scenarios 1/2/3)
//! under each configuration.

use swip_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let mut rows = Vec::new();
    for spec in h.workloads() {
        let r = h.run_workload(&spec);
        for (cfg, rep) in [
            ("ftq2_fdp", &r.base),
            ("ftq2_asmdb", &r.asmdb_cons),
            ("ftq24_fdp", &r.fdp),
            ("ftq24_asmdb", &r.asmdb_fdp),
        ] {
            let (s1, s2, s3, empty) = rep.frontend.scenario_fractions();
            rows.push(format!(
                "{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                r.name, cfg, s1, s2, s3, empty
            ));
        }
        eprintln!("done {}", r.name);
    }
    swip_bench::emit_tsv("scenarios", "workload\tconfig\ts1\ts2\ts3\tempty", &rows);
}
