//! Extension (§VI): metadata preloading vs. instruction insertion.
//!
//! The paper proposes offsetting the insertion overhead by "allocating a
//! portion of the binary to direct a hardware prefetcher", preloading that
//! metadata "into dedicated hardware structures in the LLC", and checking
//! it "on an access to the L1-I". This binary compares, on the
//! industry-standard FDP:
//!
//! * baseline FDP,
//! * AsmDB with inserted `prefetch.i` instructions,
//! * AsmDB as no-overhead hints (the paper's idealized upper bound),
//! * AsmDB as preloaded metadata (this extension: no instruction overhead,
//!   but realistic trigger/metadata-latency limitations).

use swip_asmdb::Asmdb;
use swip_bench::Harness;
use swip_core::{SimConfig, Simulator};
use swip_frontend::PreloadConfig;
use swip_types::geomean;
use swip_workloads::generate;

fn main() {
    let h = Harness::from_env();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut rows = Vec::new();
    for spec in h.workloads() {
        let trace = generate(&spec);
        let cons = SimConfig::conservative();
        let fdp = SimConfig::sunny_cove_like();
        let out = Asmdb::new(h.asmdb.clone()).run(&trace, &cons);
        let base = Simulator::new(cons).run(&trace);
        let runs = [
            Simulator::new(fdp.clone()).run(&trace),
            Simulator::new(fdp.clone()).run(&out.rewritten),
            Simulator::new(fdp.clone()).run_with_hints(&trace, &out.hints),
            Simulator::new(fdp).run_with_preload(
                &trace,
                &out.plan.to_preload_metadata(),
                PreloadConfig::default(),
            ),
        ];
        let mut cells = vec![spec.name.clone()];
        for (i, r) in runs.iter().enumerate() {
            let s = r.speedup_over(&base);
            series[i].push(s);
            cells.push(format!("{s:.4}"));
        }
        cells.push(format!("{}", runs[3].frontend.swpf_preloaded.get()));
        let row = cells.join("\t");
        eprintln!("{row}");
        rows.push(row);
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t-",
        geomean(&series[0]),
        geomean(&series[1]),
        geomean(&series[2]),
        geomean(&series[3])
    ));
    swip_bench::emit_tsv(
        "extension_preload",
        "workload\tfdp\tasmdb_instr\tasmdb_hints\tasmdb_preload\tpreload_prefetches",
        &rows,
    );
}
