//! Extension (§VI): metadata preloading vs. instruction insertion.
//!
//! The paper proposes offsetting the insertion overhead by "allocating a
//! portion of the binary to direct a hardware prefetcher", preloading
//! that metadata "into dedicated hardware structures in the LLC", and
//! checking it "on an access to the L1-I". This binary compares, on the
//! industry-standard FDP:
//!
//! * baseline FDP,
//! * AsmDB with inserted `prefetch.i` instructions,
//! * AsmDB as no-overhead hints (the paper's idealized upper bound),
//! * AsmDB as preloaded metadata (this extension: no instruction
//!   overhead, but realistic trigger/metadata-latency limitations).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{BenchError, SessionBuilder};
use swip_core::{SimConfig, Simulator};
use swip_frontend::PreloadConfig;
use swip_types::geomean;

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let specs = session.workloads();
    let per_workload = session.par_map(&specs, |_, spec| {
        let trace = session.trace(spec);
        let cons = SimConfig::conservative();
        let fdp = SimConfig::sunny_cove_like();
        let out = session.asmdb(spec);
        let base = Simulator::new(cons).run(&trace);
        let runs = [
            Simulator::new(fdp.clone()).run(&trace),
            Simulator::new(fdp.clone()).run(&out.rewritten),
            Simulator::new(fdp.clone()).run_with_hint_table(&trace, out.hint_table.clone()),
            Simulator::new(fdp).run_with_preload(
                &trace,
                &out.plan.to_preload_metadata(),
                PreloadConfig::default(),
            ),
        ];
        let speedups: Vec<f64> = runs.iter().map(|r| r.speedup_over(&base)).collect();
        let mut cells = vec![spec.name.clone()];
        cells.extend(speedups.iter().map(|s| format!("{s:.4}")));
        cells.push(format!("{}", runs[3].frontend.swpf_preloaded.get()));
        let row = cells.join("\t");
        eprintln!("{row}");
        (row, speedups)
    })?;
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut rows = Vec::new();
    for (row, speedups) in per_workload {
        rows.push(row);
        for (i, s) in speedups.into_iter().enumerate() {
            series[i].push(s);
        }
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t-",
        geomean(&series[0]),
        geomean(&series[1]),
        geomean(&series[2]),
        geomean(&series[3])
    ));
    swip_bench::emit_tsv(
        "extension_preload",
        "workload\tfdp\tasmdb_instr\tasmdb_hints\tasmdb_preload\tpreload_prefetches",
        &rows,
    )?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
