//! Regenerates Fig10: FTQ entries forced to wait on a stalling head, for the 2-entry (a) and 24-entry (b)
//! front-ends, under baseline FDP, AsmDB+FDP, and AsmDB+FDP with no
//! insertion overhead. Counts are raw for the configured instruction budget
//! (the paper plots the same counters over 100 M instructions).

use swip_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let mut rows = Vec::new();
    for spec in h.workloads() {
        let r = h.run_workload(&spec);
        let row = format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.name,
            r.base.frontend.entries_waiting_on_head,
            r.asmdb_cons.frontend.entries_waiting_on_head,
            r.asmdb_cons_noov.frontend.entries_waiting_on_head,
            r.fdp.frontend.entries_waiting_on_head,
            r.asmdb_fdp.frontend.entries_waiting_on_head,
            r.asmdb_fdp_noov.frontend.entries_waiting_on_head,
        );
        eprintln!("{row}");
        rows.push(row);
    }
    swip_bench::emit_tsv(
        "fig10",
        "workload\tftq2_fdp\tftq2_asmdb\tftq2_asmdb_noov\tftq24_fdp\tftq24_asmdb\tftq24_asmdb_noov",
        &rows,
    );
}
