//! Regenerates Fig10: FTQ entries forced to wait on a stalling head, for
//! the 2-entry (a) and 24-entry (b) front-ends, under baseline FDP,
//! AsmDB+FDP, and AsmDB+FDP with no insertion overhead. Counts are raw
//! for the configured instruction budget (the paper plots the same
//! counters over 100 M instructions).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{figures, BenchError, ExperimentPlan, SessionBuilder};

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let plan = ExperimentPlan::all_figures(session.workloads());
    let results = session.run(&plan)?;
    figures::emit_fig10(&results)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
