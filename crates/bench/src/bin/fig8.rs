//! Regenerates Figure 8: average cycles to fetch a head FTQ entry vs a
//! non-head entry, for the 24-entry and 2-entry front-ends; plus the §V.B
//! claim that the deeper FTQ issues fewer L1-I accesses. Only the two
//! baseline configurations are simulated.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{figures, BenchError, ExperimentPlan, SessionBuilder};

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let plan = ExperimentPlan::new(session.workloads(), &figures::FIG8_CONFIGS);
    let results = session.run(&plan)?;
    figures::emit_fig8(&results)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
