//! Regenerates Figure 8: average cycles to fetch a head FTQ entry vs a
//! non-head entry, for the 24-entry and 2-entry front-ends; plus the §V.B
//! claim that the deeper FTQ issues fewer L1-I accesses.

use swip_bench::Harness;

fn main() {
    let h = Harness::from_env();
    let mut rows = Vec::new();
    let (mut acc2, mut acc24) = (0u64, 0u64);
    for spec in h.workloads() {
        let r = h.run_workload(&spec);
        let row = format!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            r.name,
            r.fdp.frontend.head_fetch_cycles.mean(),
            r.fdp.frontend.nonhead_fetch_cycles.mean(),
            r.base.frontend.head_fetch_cycles.mean(),
            r.base.frontend.nonhead_fetch_cycles.mean(),
        );
        eprintln!("{row}");
        rows.push(row);
        acc24 += r.fdp.frontend.line_requests.get();
        acc2 += r.base.frontend.line_requests.get();
    }
    swip_bench::emit_tsv(
        "fig8",
        "workload\thead_cycles_ftq24\tnonhead_cycles_ftq24\thead_cycles_ftq2\tnonhead_cycles_ftq2",
        &rows,
    );
    if acc2 > 0 {
        println!(
            "# L1-I line requests: FTQ24 issues {:.1}% fewer than FTQ2 (paper: ~14%)",
            (1.0 - acc24 as f64 / acc2 as f64) * 100.0
        );
    }
}
