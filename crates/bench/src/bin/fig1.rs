//! Regenerates Figure 1: IPC of the five configurations over the
//! conservative 2-entry-FTQ baseline, per workload plus geomean.
//!
//! Also prints the §IV sanity row: average L1-I MPKI at the 24-entry FTQ.

use swip_bench::Harness;
use swip_types::geomean;

fn main() {
    let h = Harness::from_env();
    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut mpki = Vec::new();
    for spec in h.workloads() {
        let r = h.run_workload(&spec);
        let s = r.fig1_series();
        let row = format!(
            "{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
            r.name, s[0].1, s[1].1, s[2].1, s[3].1, s[4].1
        );
        eprintln!("{row}");
        rows.push(row);
        for (i, (_, v)) in s.iter().enumerate() {
            series[i].push(*v);
        }
        mpki.push(r.fdp.l1i_mpki);
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
        geomean(&series[0]),
        geomean(&series[1]),
        geomean(&series[2]),
        geomean(&series[3]),
        geomean(&series[4])
    ));
    swip_bench::emit_tsv(
        "fig1",
        "workload\tAsmDB\tAsmDB-NoOv\tFDP24\tAsmDB+FDP\tAsmDB+FDP-NoOv",
        &rows,
    );
    let avg_mpki: f64 = mpki.iter().sum::<f64>() / mpki.len().max(1) as f64;
    println!("# avg L1-I MPKI at 24-entry FTQ: {avg_mpki:.2} (paper: 25.5)");
}
