//! Regenerates Figure 1: IPC of the five configurations over the
//! conservative 2-entry-FTQ baseline, per workload plus geomean.
//!
//! Also prints the §IV sanity row: average L1-I MPKI at the 24-entry FTQ.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{figures, BenchError, ExperimentPlan, SessionBuilder};

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let plan = ExperimentPlan::all_figures(session.workloads());
    let results = session.run_streaming(&plan, |r| eprintln!("{}", figures::fig1_row(r)))?;
    figures::emit_fig1(&results)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
