//! Extension (§VI): feedback-directed software prefetching.
//!
//! The paper proposes "periodically updating an application's binary to
//! increase or decrease the number of prefetches inserted depending on
//! their performance impact". This binary implements that loop: starting
//! from the default tuning, each round evaluates the rewritten trace on
//! the industry-standard FDP; if it does not beat the previous round, the
//! insertion aggressiveness is cut (higher reach threshold, fewer sites)
//! and AsmDB re-plans.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_asmdb::Asmdb;
use swip_bench::{BenchError, SessionBuilder};
use swip_core::{SimConfig, Simulator};

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let specs = session.workloads();
    let rows = session.par_map(&specs, |_, spec| {
        let trace = session.trace(spec);
        let fdp = SimConfig::sunny_cove_like();
        let baseline = Simulator::new(fdp.clone()).run(&trace);
        let mut config = session.asmdb_config().clone();
        let mut best = baseline.effective_ipc;
        let mut best_round = 0usize;
        let mut cells = vec![spec.name.clone(), format!("{:.4}", baseline.effective_ipc)];
        for round in 1..=3 {
            let out = Asmdb::new(config.clone()).run(&trace, &fdp);
            let r = Simulator::new(fdp.clone()).run(&out.rewritten);
            cells.push(format!("{:.4}", r.effective_ipc));
            if r.effective_ipc > best {
                best = r.effective_ipc;
                best_round = round;
            } else {
                // Too much overhead: back off.
                config.min_reach = (config.min_reach + 0.25).min(0.95);
                config.max_sites_per_target = config.max_sites_per_target.saturating_sub(1).max(1);
            }
        }
        cells.push(format!("round{best_round}"));
        let row = cells.join("\t");
        eprintln!("{row}");
        row
    })?;
    swip_bench::emit_tsv(
        "feedback",
        "workload\tfdp_ipc\tround1_ipc\tround2_ipc\tround3_ipc\tbest",
        &rows,
    )?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
