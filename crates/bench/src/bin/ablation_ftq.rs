//! Ablation: FTQ depth sweep (the design axis separating the paper's
//! conservative and industry-standard front-ends).

use swip_bench::Harness;
use swip_core::{SimConfig, Simulator};
use swip_types::geomean;
use swip_workloads::generate;

const DEPTHS: [usize; 7] = [2, 4, 8, 12, 16, 24, 32];

fn main() {
    let h = Harness::from_env();
    let mut per_depth: Vec<Vec<f64>> = vec![Vec::new(); DEPTHS.len()];
    let mut rows = Vec::new();
    for spec in h.workloads() {
        let trace = generate(&spec);
        let base = Simulator::new(SimConfig::conservative()).run(&trace);
        let mut cells = vec![spec.name.clone()];
        for (i, &d) in DEPTHS.iter().enumerate() {
            let r = Simulator::new(SimConfig::sunny_cove_like().with_ftq_entries(d)).run(&trace);
            let s = r.speedup_over(&base);
            per_depth[i].push(s);
            cells.push(format!("{s:.4}"));
        }
        let row = cells.join("\t");
        eprintln!("{row}");
        rows.push(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for v in &per_depth {
        geo.push(format!("{:.4}", geomean(v)));
    }
    rows.push(geo.join("\t"));
    swip_bench::emit_tsv(
        "ablation_ftq",
        "workload\tftq2\tftq4\tftq8\tftq12\tftq16\tftq24\tftq32",
        &rows,
    );
}
