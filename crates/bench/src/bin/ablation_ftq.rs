//! Ablation: FTQ depth sweep (the design axis separating the paper's
//! conservative and industry-standard front-ends).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{BenchError, SessionBuilder};
use swip_core::{SimConfig, Simulator};
use swip_types::geomean;

const DEPTHS: [usize; 7] = [2, 4, 8, 12, 16, 24, 32];

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let specs = session.workloads();
    let per_workload = session.par_map(&specs, |_, spec| {
        let trace = session.trace(spec);
        let base = Simulator::new(SimConfig::conservative()).run(&trace);
        let speedups: Vec<f64> = DEPTHS
            .iter()
            .map(|&d| {
                Simulator::new(SimConfig::sunny_cove_like().with_ftq_entries(d))
                    .run(&trace)
                    .speedup_over(&base)
            })
            .collect();
        let mut cells = vec![spec.name.clone()];
        cells.extend(speedups.iter().map(|s| format!("{s:.4}")));
        let row = cells.join("\t");
        eprintln!("{row}");
        (row, speedups)
    })?;
    let mut per_depth: Vec<Vec<f64>> = vec![Vec::new(); DEPTHS.len()];
    let mut rows = Vec::new();
    for (row, speedups) in per_workload {
        rows.push(row);
        for (i, s) in speedups.into_iter().enumerate() {
            per_depth[i].push(s);
        }
    }
    let mut geo = vec!["geomean".to_string()];
    for v in &per_depth {
        geo.push(format!("{:.4}", geomean(v)));
    }
    rows.push(geo.join("\t"));
    swip_bench::emit_tsv(
        "ablation_ftq",
        "workload\tftq2\tftq4\tftq8\tftq12\tftq16\tftq24\tftq32",
        &rows,
    )?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
