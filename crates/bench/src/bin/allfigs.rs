//! Regenerates every figure of the paper in a single pass over the
//! workload suite (one trace generation + one AsmDB profile + six
//! simulations per workload, parallelized over the session's thread
//! pool), emitting `fig1.tsv`, `fig7.tsv`, `fig8.tsv`, `fig9.tsv`,
//! `fig10.tsv`, `fig11.tsv`, and `scenarios.tsv` together.
//!
//! Use the individual `figN` binaries to regenerate one figure; this
//! binary exists so the whole evaluation costs one suite sweep.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{figures, BenchError, SessionBuilder};

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    figures::emit_all(&session)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
