//! Regenerates every figure of the paper in a single pass over the
//! workload suite (one profile + six simulations per workload), emitting
//! `fig1.tsv`, `fig7.tsv`, `fig8.tsv`, `fig9.tsv`, `fig10.tsv`,
//! `fig11.tsv`, and `scenarios.tsv` together.
//!
//! Use the individual `figN` binaries to regenerate one figure; this binary
//! exists so the whole evaluation costs one suite sweep.

use swip_bench::{emit_tsv, Harness, WorkloadResults};
use swip_core::SimReport;
use swip_types::geomean;

fn main() {
    let h = Harness::from_env();
    let workloads = h.workloads();
    eprintln!(
        "running {} workloads × 7 simulations at {} instructions each",
        workloads.len(),
        h.instructions
    );
    let mut results: Vec<WorkloadResults> = Vec::new();
    for (i, spec) in workloads.iter().enumerate() {
        let r = h.run_workload(spec);
        eprintln!(
            "[{}/{}] {}  FDP24 {:.3}x  AsmDB+FDP {:.3}x",
            i + 1,
            workloads.len(),
            r.name,
            r.fdp.speedup_over(&r.base),
            r.asmdb_fdp.speedup_over(&r.base)
        );
        results.push(r);
    }

    // Figure 1.
    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for r in &results {
        let s = r.fig1_series();
        rows.push(format!(
            "{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
            r.name, s[0].1, s[1].1, s[2].1, s[3].1, s[4].1
        ));
        for (i, (_, v)) in s.iter().enumerate() {
            series[i].push(*v);
        }
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
        geomean(&series[0]),
        geomean(&series[1]),
        geomean(&series[2]),
        geomean(&series[3]),
        geomean(&series[4])
    ));
    emit_tsv(
        "fig1",
        "workload\tAsmDB\tAsmDB-NoOv\tFDP24\tAsmDB+FDP\tAsmDB+FDP-NoOv",
        &rows,
    );

    // Figure 7.
    let mut rows = Vec::new();
    let (mut s_sum, mut d_sum) = (0.0, 0.0);
    for r in &results {
        rows.push(format!(
            "{}\t{:.4}\t{:.4}\t{}\t{}",
            r.name,
            r.bloat.static_bloat * 100.0,
            r.bloat.dynamic_bloat * 100.0,
            r.bloat.inserted_sites,
            r.bloat.inserted_dynamic
        ));
        s_sum += r.bloat.static_bloat * 100.0;
        d_sum += r.bloat.dynamic_bloat * 100.0;
    }
    let n = results.len().max(1) as f64;
    rows.push(format!("average\t{:.4}\t{:.4}\t-\t-", s_sum / n, d_sum / n));
    emit_tsv(
        "fig7",
        "workload\tstatic_bloat_pct\tdynamic_bloat_pct\tstatic_sites\tdynamic_prefetches",
        &rows,
    );

    // Figure 8 (+ the §V.B access-count claim).
    let mut rows = Vec::new();
    let (mut acc2, mut acc24) = (0u64, 0u64);
    for r in &results {
        rows.push(format!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            r.name,
            r.fdp.frontend.head_fetch_cycles.mean(),
            r.fdp.frontend.nonhead_fetch_cycles.mean(),
            r.base.frontend.head_fetch_cycles.mean(),
            r.base.frontend.nonhead_fetch_cycles.mean(),
        ));
        acc24 += r.fdp.frontend.line_requests.get();
        acc2 += r.base.frontend.line_requests.get();
    }
    emit_tsv(
        "fig8",
        "workload\thead_cycles_ftq24\tnonhead_cycles_ftq24\thead_cycles_ftq2\tnonhead_cycles_ftq2",
        &rows,
    );
    if acc2 > 0 {
        println!(
            "# L1-I line requests: FTQ24 issues {:.1}% fewer than FTQ2 (paper: ~14%)",
            (1.0 - acc24 as f64 / acc2 as f64) * 100.0
        );
    }

    // Figures 9, 10, 11: same six-column layout over different counters.
    type CounterFn = fn(&SimReport) -> u64;
    let counter_figs: [(&str, CounterFn); 3] = [
        ("fig9", |r| r.frontend.head_stall_cycles.get()),
        ("fig10", |r| r.frontend.entries_waiting_on_head.get()),
        ("fig11", |r| r.frontend.partially_covered_entries.get()),
    ];
    for (name, get) in counter_figs {
        let mut rows = Vec::new();
        for r in &results {
            rows.push(format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                r.name,
                get(&r.base),
                get(&r.asmdb_cons),
                get(&r.asmdb_cons_noov),
                get(&r.fdp),
                get(&r.asmdb_fdp),
                get(&r.asmdb_fdp_noov),
            ));
        }
        emit_tsv(
            name,
            "workload\tftq2_fdp\tftq2_asmdb\tftq2_asmdb_noov\tftq24_fdp\tftq24_asmdb\tftq24_asmdb_noov",
            &rows,
        );
    }

    // Scenario taxonomy.
    let mut rows = Vec::new();
    for r in &results {
        for (cfg, rep) in [
            ("ftq2_fdp", &r.base),
            ("ftq2_asmdb", &r.asmdb_cons),
            ("ftq24_fdp", &r.fdp),
            ("ftq24_asmdb", &r.asmdb_fdp),
        ] {
            let (s1, s2, s3, empty) = rep.frontend.scenario_fractions();
            rows.push(format!(
                "{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                r.name, cfg, s1, s2, s3, empty
            ));
        }
    }
    emit_tsv("scenarios", "workload\tconfig\ts1\ts2\ts3\tempty", &rows);

    // Headline numbers for EXPERIMENTS.md.
    let mpki: f64 =
        results.iter().map(|r| r.fdp.l1i_mpki).sum::<f64>() / results.len().max(1) as f64;
    println!("# avg L1-I MPKI at 24-entry FTQ: {mpki:.2} (paper: 25.5)");
}
