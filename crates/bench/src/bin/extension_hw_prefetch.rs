//! Extension: hardware instruction prefetching on top of the
//! industry-standard FDP — next-line and an EIP-like entangling
//! prefetcher (the hardware comparison point referenced by the paper's
//! Fig. 1 caption) versus software prefetching (AsmDB, no-overhead).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{BenchError, SessionBuilder};
use swip_cache::EntanglingConfig;
use swip_core::{SimConfig, Simulator};
use swip_types::geomean;

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let specs = session.workloads();
    let per_workload = session.par_map(&specs, |_, spec| {
        let trace = session.trace(spec);
        let base = Simulator::new(SimConfig::conservative()).run(&trace);

        let fdp = SimConfig::sunny_cove_like();
        let mut fdp_nl = SimConfig::sunny_cove_like();
        fdp_nl.memory.l1i_next_line_prefetch = true;
        let mut fdp_eip = SimConfig::sunny_cove_like();
        fdp_eip.memory.l1i_entangling = Some(EntanglingConfig::default());

        let asmdb_out = session.asmdb(spec);

        let runs = [
            Simulator::new(fdp.clone()).run(&trace),
            Simulator::new(fdp_nl).run(&trace),
            Simulator::new(fdp_eip).run(&trace),
            Simulator::new(fdp).run_with_hint_table(&trace, asmdb_out.hint_table.clone()),
        ];
        let speedups: Vec<f64> = runs.iter().map(|r| r.speedup_over(&base)).collect();
        let mut cells = vec![spec.name.clone()];
        cells.extend(speedups.iter().map(|s| format!("{s:.4}")));
        let row = cells.join("\t");
        eprintln!("{row}");
        (row, speedups)
    })?;
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut rows = Vec::new();
    for (row, speedups) in per_workload {
        rows.push(row);
        for (i, s) in speedups.into_iter().enumerate() {
            series[i].push(s);
        }
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
        geomean(&series[0]),
        geomean(&series[1]),
        geomean(&series[2]),
        geomean(&series[3])
    ));
    swip_bench::emit_tsv(
        "extension_hw_prefetch",
        "workload\tfdp\tfdp+nextline\tfdp+eip\tfdp+asmdb_noov",
        &rows,
    )?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
