//! Extension: hardware instruction prefetching on top of the
//! industry-standard FDP — next-line and an EIP-like entangling prefetcher
//! (the hardware comparison point referenced by the paper's Fig. 1 caption)
//! versus software prefetching (AsmDB, no-overhead).

use swip_asmdb::Asmdb;
use swip_bench::Harness;
use swip_cache::EntanglingConfig;
use swip_core::{SimConfig, Simulator};
use swip_types::geomean;
use swip_workloads::generate;

fn main() {
    let h = Harness::from_env();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut rows = Vec::new();
    for spec in h.workloads() {
        let trace = generate(&spec);
        let cons = SimConfig::conservative();
        let base = Simulator::new(cons.clone()).run(&trace);

        let fdp = SimConfig::sunny_cove_like();
        let mut fdp_nl = SimConfig::sunny_cove_like();
        fdp_nl.memory.l1i_next_line_prefetch = true;
        let mut fdp_eip = SimConfig::sunny_cove_like();
        fdp_eip.memory.l1i_entangling = Some(EntanglingConfig::default());

        let asmdb_out = Asmdb::new(h.asmdb.clone()).run(&trace, &cons);

        let runs = [
            Simulator::new(fdp.clone()).run(&trace),
            Simulator::new(fdp_nl).run(&trace),
            Simulator::new(fdp_eip).run(&trace),
            Simulator::new(fdp).run_with_hints(&trace, &asmdb_out.hints),
        ];
        let mut cells = vec![spec.name.clone()];
        for (i, r) in runs.iter().enumerate() {
            let s = r.speedup_over(&base);
            series[i].push(s);
            cells.push(format!("{s:.4}"));
        }
        let row = cells.join("\t");
        eprintln!("{row}");
        rows.push(row);
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
        geomean(&series[0]),
        geomean(&series[1]),
        geomean(&series[2]),
        geomean(&series[3])
    ));
    swip_bench::emit_tsv(
        "extension_hw_prefetch",
        "workload\tfdp\tfdp+nextline\tfdp+eip\tfdp+asmdb_noov",
        &rows,
    );
}
