//! Ablation: post-fetch correction and GHR history mode, the two FDP
//! improvements the paper adopts from Ishii et al.

use swip_bench::Harness;
use swip_branch::{DirectionKind, HistoryMode};
use swip_core::{SimConfig, Simulator};
use swip_types::geomean;
use swip_workloads::generate;

fn main() {
    let h = Harness::from_env();
    let mut series: Vec<(String, Vec<f64>)> = vec![
        ("pfc+taken_only".into(), Vec::new()),
        ("no_pfc".into(), Vec::new()),
        ("full_history".into(), Vec::new()),
        ("gshare".into(), Vec::new()),
        ("tage_lite".into(), Vec::new()),
    ];
    let mut rows = Vec::new();
    for spec in h.workloads() {
        let trace = generate(&spec);
        let base = Simulator::new(SimConfig::conservative()).run(&trace);
        let standard = SimConfig::sunny_cove_like();
        let mut no_pfc = SimConfig::sunny_cove_like();
        no_pfc.frontend.enable_pfc = false;
        let mut full = SimConfig::sunny_cove_like();
        full.frontend.branch.history_mode = HistoryMode::Full;
        let mut gshare = SimConfig::sunny_cove_like();
        gshare.frontend.branch.direction = DirectionKind::Gshare;
        let mut tage = SimConfig::sunny_cove_like();
        tage.frontend.branch.direction = DirectionKind::TageLite;
        let mut cells = vec![spec.name.clone()];
        for (i, cfg) in [standard, no_pfc, full, gshare, tage]
            .into_iter()
            .enumerate()
        {
            let s = Simulator::new(cfg).run(&trace).speedup_over(&base);
            series[i].1.push(s);
            cells.push(format!("{s:.4}"));
        }
        let row = cells.join("\t");
        eprintln!("{row}");
        rows.push(row);
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
        geomean(&series[0].1),
        geomean(&series[1].1),
        geomean(&series[2].1),
        geomean(&series[3].1),
        geomean(&series[4].1)
    ));
    swip_bench::emit_tsv(
        "ablation_frontend",
        "workload\tpfc+taken_only\tno_pfc\tfull_history\tgshare\ttage_lite",
        &rows,
    );
}
