//! Ablation: post-fetch correction and GHR history mode, the two FDP
//! improvements the paper adopts from Ishii et al.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_bench::{BenchError, SessionBuilder};
use swip_branch::{DirectionKind, HistoryMode};
use swip_core::{SimConfig, Simulator};
use swip_types::geomean;

const SERIES: [&str; 5] = [
    "pfc+taken_only",
    "no_pfc",
    "full_history",
    "gshare",
    "tage_lite",
];

fn variants() -> [SimConfig; 5] {
    let standard = SimConfig::sunny_cove_like();
    let mut no_pfc = SimConfig::sunny_cove_like();
    no_pfc.frontend.enable_pfc = false;
    let mut full = SimConfig::sunny_cove_like();
    full.frontend.branch.history_mode = HistoryMode::Full;
    let mut gshare = SimConfig::sunny_cove_like();
    gshare.frontend.branch.direction = DirectionKind::Gshare;
    let mut tage = SimConfig::sunny_cove_like();
    tage.frontend.branch.direction = DirectionKind::TageLite;
    [standard, no_pfc, full, gshare, tage]
}

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let specs = session.workloads();
    let per_workload = session.par_map(&specs, |_, spec| {
        let trace = session.trace(spec);
        let base = Simulator::new(SimConfig::conservative()).run(&trace);
        let speedups: Vec<f64> = variants()
            .into_iter()
            .map(|cfg| Simulator::new(cfg).run(&trace).speedup_over(&base))
            .collect();
        let mut cells = vec![spec.name.clone()];
        cells.extend(speedups.iter().map(|s| format!("{s:.4}")));
        let row = cells.join("\t");
        eprintln!("{row}");
        (row, speedups)
    })?;
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); SERIES.len()];
    let mut rows = Vec::new();
    for (row, speedups) in per_workload {
        rows.push(row);
        for (i, s) in speedups.into_iter().enumerate() {
            series[i].push(s);
        }
    }
    rows.push(format!(
        "geomean\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
        geomean(&series[0]),
        geomean(&series[1]),
        geomean(&series[2]),
        geomean(&series[3]),
        geomean(&series[4])
    ));
    swip_bench::emit_tsv(
        "ablation_frontend",
        "workload\tpfc+taken_only\tno_pfc\tfull_history\tgshare\ttage_lite",
        &rows,
    )?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
