//! Ablation: AsmDB's fanout/reach threshold ("Increasing AsmDB's fanout
//! threshold decreases its accuracy but results in higher miss coverage").

use swip_asmdb::{Asmdb, AsmdbConfig};
use swip_bench::Harness;
use swip_core::{SimConfig, Simulator};
use swip_types::geomean;
use swip_workloads::generate;

const REACHES: [f64; 4] = [0.10, 0.30, 0.50, 0.70];

fn main() {
    let h = Harness::from_env();
    let mut per: Vec<Vec<f64>> = vec![Vec::new(); REACHES.len() * 2];
    let mut rows = Vec::new();
    for spec in h.workloads() {
        let trace = generate(&spec);
        let cons = SimConfig::conservative();
        let base = Simulator::new(cons.clone()).run(&trace);
        let mut cells = vec![spec.name.clone()];
        for (i, &reach) in REACHES.iter().enumerate() {
            let asmdb = Asmdb::new(AsmdbConfig {
                min_reach: reach,
                ..h.asmdb.clone()
            });
            let out = asmdb.run(&trace, &cons);
            let s = Simulator::new(cons.clone())
                .run(&out.rewritten)
                .speedup_over(&base);
            per[i * 2].push(s);
            per[i * 2 + 1].push(out.report.dynamic_bloat * 100.0);
            cells.push(format!("{s:.4}\t{:.2}", out.report.dynamic_bloat * 100.0));
        }
        let row = cells.join("\t");
        eprintln!("{row}");
        rows.push(row);
    }
    let mut geo = vec!["geomean/avg".to_string()];
    for (i, _) in REACHES.iter().enumerate() {
        let avg_bloat: f64 =
            per[i * 2 + 1].iter().sum::<f64>() / per[i * 2 + 1].len().max(1) as f64;
        geo.push(format!("{:.4}\t{avg_bloat:.2}", geomean(&per[i * 2])));
    }
    rows.push(geo.join("\t"));
    swip_bench::emit_tsv(
        "ablation_fanout",
        "workload\tr10_speedup\tr10_bloat\tr30_speedup\tr30_bloat\tr50_speedup\tr50_bloat\tr70_speedup\tr70_bloat",
        &rows,
    );
}
