//! Ablation: AsmDB's fanout/reach threshold ("Increasing AsmDB's fanout
//! threshold decreases its accuracy but results in higher miss
//! coverage").

#![forbid(unsafe_code)]

use std::process::ExitCode;

use swip_asmdb::{Asmdb, AsmdbConfig};
use swip_bench::{BenchError, SessionBuilder};
use swip_core::{SimConfig, Simulator};
use swip_types::geomean;

const REACHES: [f64; 4] = [0.10, 0.30, 0.50, 0.70];

fn run() -> Result<(), BenchError> {
    let session = SessionBuilder::new().build()?;
    let specs = session.workloads();
    let per_workload = session.par_map(&specs, |_, spec| {
        let trace = session.trace(spec);
        let cons = SimConfig::conservative();
        let base = Simulator::new(cons.clone()).run(&trace);
        let mut cells = vec![spec.name.clone()];
        let mut pairs = Vec::with_capacity(REACHES.len());
        for &reach in &REACHES {
            let asmdb = Asmdb::new(AsmdbConfig {
                min_reach: reach,
                ..session.asmdb_config().clone()
            });
            let out = asmdb.run(&trace, &cons);
            let s = Simulator::new(cons.clone())
                .run(&out.rewritten)
                .speedup_over(&base);
            let bloat = out.report.dynamic_bloat * 100.0;
            pairs.push((s, bloat));
            cells.push(format!("{s:.4}\t{bloat:.2}"));
        }
        let row = cells.join("\t");
        eprintln!("{row}");
        (row, pairs)
    })?;
    let mut per: Vec<Vec<f64>> = vec![Vec::new(); REACHES.len() * 2];
    let mut rows = Vec::new();
    for (row, pairs) in per_workload {
        rows.push(row);
        for (i, (s, bloat)) in pairs.into_iter().enumerate() {
            per[i * 2].push(s);
            per[i * 2 + 1].push(bloat);
        }
    }
    let mut geo = vec!["geomean/avg".to_string()];
    for (i, _) in REACHES.iter().enumerate() {
        let avg_bloat: f64 =
            per[i * 2 + 1].iter().sum::<f64>() / per[i * 2 + 1].len().max(1) as f64;
        geo.push(format!("{:.4}\t{avg_bloat:.2}", geomean(&per[i * 2])));
    }
    rows.push(geo.join("\t"));
    swip_bench::emit_tsv(
        "ablation_fanout",
        "workload\tr10_speedup\tr10_bloat\tr30_speedup\tr30_bloat\tr50_speedup\tr50_bloat\tr70_speedup\tr70_bloat",
        &rows,
    )?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
