//! The diagnostic model: rules, severities, locations, and reports.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` marks an artifact the simulator cannot be trusted with;
/// `Warn` marks something suspicious but survivable; `Info` is advisory.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// The artifact violates a hard invariant.
    Error,
    /// Suspicious, but simulation results may still be meaningful.
    Warn,
    /// Advisory only.
    Info,
}

impl Severity {
    /// Lower-case name used in both text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the analyzed artifact a diagnostic points.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Location {
    /// No specific location (whole-artifact diagnostics).
    None,
    /// Dynamic instruction index within the trace.
    Seq(u64),
    /// Static instruction address.
    Pc(u64),
    /// Basic-block id within the CFG.
    Block(u64),
    /// Index into the plan's insertion list.
    Insertion(u64),
}

impl Location {
    /// The location kind name used in JSON output.
    pub fn kind(self) -> &'static str {
        match self {
            Location::None => "none",
            Location::Seq(_) => "seq",
            Location::Pc(_) => "pc",
            Location::Block(_) => "block",
            Location::Insertion(_) => "insertion",
        }
    }

    /// The location value rendered as a string (`pc` renders as hex).
    pub fn value(self) -> String {
        match self {
            Location::None => String::new(),
            Location::Seq(n) | Location::Block(n) | Location::Insertion(n) => n.to_string(),
            Location::Pc(pc) => format!("{pc:#x}"),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::None => f.write_str("-"),
            other => write!(f, "{} {}", other.kind(), other.value()),
        }
    }
}

/// One finding from an analysis pass.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `T010`); the catalog lives in DESIGN.md.
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity,
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.location, self.message
        )
    }
}

/// The result of analyzing one artifact: every diagnostic, plus which
/// analysis families ran.
#[derive(Clone, Debug)]
pub struct Report {
    /// What was analyzed (trace name or file path).
    pub subject: String,
    /// Analysis families that ran (`decode`, `trace`, `cfg`, `plan`,
    /// `rewrite`, `coverage`). Families after a failing one are skipped.
    pub families: Vec<&'static str>,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Predicted-coverage summary, present when the `coverage` family ran
    /// (`analyze --coverage`).
    pub coverage: Option<crate::coverage::PredictedCoverage>,
}

impl Report {
    /// Builds a report (without a coverage summary; set
    /// [`Report::coverage`] after the coverage family runs).
    pub fn new(
        subject: impl Into<String>,
        families: Vec<&'static str>,
        diagnostics: Vec<Diagnostic>,
    ) -> Self {
        Report {
            subject: subject.into(),
            families,
            diagnostics,
            coverage: None,
        }
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Number of `Error` diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warn` diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of `Info` diagnostics.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    /// True when at least one `Error` was found.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Renders the report as a single stable JSON object (schema documented
    /// in DESIGN.md §8). Hand-rolled: the workspace carries no serialization
    /// dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 96);
        out.push_str("{\"subject\":");
        json_string(&mut out, &self.subject);
        out.push_str(",\"families\":[");
        for (i, f) in self.families.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, f);
        }
        out.push_str("],\"errors\":");
        out.push_str(&self.errors().to_string());
        out.push_str(",\"warnings\":");
        out.push_str(&self.warnings().to_string());
        out.push_str(",\"infos\":");
        out.push_str(&self.infos().to_string());
        if let Some(cov) = &self.coverage {
            out.push_str(",\"coverage\":{");
            for (i, (name, value)) in cov.counter_pairs().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(&mut out, name);
                out.push(':');
                out.push_str(&value.to_string());
            }
            out.push('}');
        }
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_string(&mut out, d.rule);
            out.push_str(",\"severity\":");
            json_string(&mut out, d.severity.name());
            out.push_str(",\"location\":{\"kind\":");
            json_string(&mut out, d.location.kind());
            out.push_str(",\"value\":");
            json_string(&mut out, &d.location.value());
            out.push_str("},\"message\":");
            json_string(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        if let Some(cov) = &self.coverage {
            writeln!(
                f,
                "predicted coverage: {}/{} sites useful ({} dead, {} redundant, {} late, \
                 {} clobbering); {}/{} target lines covered ({:.0}%)",
                cov.useful_sites,
                cov.sites,
                cov.dead_sites,
                cov.redundant_sites,
                cov.late_sites,
                cov.clobbering_sites,
                cov.covered_lines,
                cov.targeted_lines,
                cov.coverage_ratio() * 100.0,
            )?;
        }
        write!(
            f,
            "{}: {} error(s), {} warning(s), {} info(s) [{}]",
            self.subject,
            self.errors(),
            self.warnings(),
            self.infos(),
            self.families.join(",")
        )
    }
}

/// Appends `s` to `out` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let d = Diagnostic::new("T010", Severity::Error, Location::Seq(5), "discontinuity");
        assert_eq!(d.to_string(), "error[T010] seq 5: discontinuity");
        let d = Diagnostic::new("P001", Severity::Warn, Location::Pc(0x40), "x");
        assert_eq!(d.to_string(), "warn[P001] pc 0x40: x");
    }

    #[test]
    fn json_escapes_and_counts() {
        let r = Report::new(
            "we\"ird\nname",
            vec!["trace"],
            vec![
                Diagnostic::new("T001", Severity::Error, Location::None, "a\\b"),
                Diagnostic::new("T014", Severity::Warn, Location::Pc(16), "m"),
            ],
        );
        let j = r.to_json();
        assert!(j.contains("\"subject\":\"we\\\"ird\\nname\""));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"warnings\":1"));
        assert!(j.contains("{\"kind\":\"pc\",\"value\":\"0x10\"}"));
        assert!(j.contains("\"message\":\"a\\\\b\""));
        assert!(r.has_errors());
    }
}
