//! Family T: trace lints — semantic checks the codec cannot express.
//!
//! The codec guarantees structural validity (tags, registers, lengths);
//! these rules check the *meaning* of a decoded trace: control-flow
//! continuity, branch/taken consistency, per-PC kind stability, address
//! plausibility, and prefetch usefulness.

use std::collections::{HashMap, HashSet};
use std::mem::Discriminant;

use swip_trace::Trace;
use swip_types::{BranchKind, InstrKind};

use crate::diag::{Diagnostic, Location, Severity};

/// Data addresses below this are treated as null-page accesses (T014).
const NULL_PAGE: u64 = 0x1000;

/// Lints a decoded trace (rules T010–T016).
pub fn lint_trace(trace: &Trace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if trace.is_empty() {
        diags.push(Diagnostic::new(
            "T016",
            Severity::Info,
            Location::None,
            "trace contains no instructions",
        ));
        return diags;
    }

    // Static views used by several rules.
    let mut code_lines: HashSet<u64> = HashSet::new();
    for i in trace.iter() {
        code_lines.insert(i.pc.line().number());
    }

    let mut kinds: HashMap<u64, Discriminant<InstrKind>> = HashMap::new();
    let mut zero_size_reported: HashSet<u64> = HashSet::new();
    let mut data_reported: HashSet<u64> = HashSet::new();
    let mut prefetch_reported: HashSet<u64> = HashSet::new();

    for (seq, i) in trace.iter().enumerate() {
        let seq = seq as u64;

        // T010: the successor PC must be explained by this instruction.
        if let Some(next) = trace.instructions().get(seq as usize + 1) {
            if i.next_pc() != next.pc {
                diags.push(Diagnostic::new(
                    "T010",
                    Severity::Error,
                    Location::Seq(seq),
                    format!(
                        "control-flow discontinuity: {} at {} implies successor {}, trace continues at {}",
                        kind_name(&i.kind),
                        i.pc,
                        i.next_pc(),
                        next.pc
                    ),
                ));
            }
        }

        // T011: unconditional control transfers are always taken.
        if let InstrKind::Branch { kind, taken, .. } = i.kind {
            if kind != BranchKind::CondDirect && !taken {
                diags.push(Diagnostic::new(
                    "T011",
                    Severity::Error,
                    Location::Seq(seq),
                    format!(
                        "unconditional branch ({kind:?}) at {} recorded as not-taken",
                        i.pc
                    ),
                ));
            }
        }

        // T012: one PC, one instruction kind (the CFG builder and the
        // rewriter both assume this).
        let d = std::mem::discriminant(&i.kind);
        if let Some(prev) = kinds.insert(i.pc.raw(), d) {
            if prev != d {
                diags.push(Diagnostic::new(
                    "T012",
                    Severity::Error,
                    Location::Seq(seq),
                    format!("instruction kind at {} changed between executions", i.pc),
                ));
            }
        }

        // T013: zero-size instructions make fall-through ill-defined.
        if i.size == 0 && zero_size_reported.insert(i.pc.raw()) {
            diags.push(Diagnostic::new(
                "T013",
                Severity::Error,
                Location::Pc(i.pc.raw()),
                "instruction has size 0; fall-through would not advance",
            ));
        }

        // T014: data addresses should not alias executed code or the null
        // page (per static access site).
        if let InstrKind::Load { addr } | InstrKind::Store { addr } = i.kind {
            let implausible = addr.raw() < NULL_PAGE || code_lines.contains(&addr.line().number());
            if implausible && data_reported.insert(i.pc.raw()) {
                let why = if addr.raw() < NULL_PAGE {
                    "falls in the null page"
                } else {
                    "aliases an executed code line"
                };
                diags.push(Diagnostic::new(
                    "T014",
                    Severity::Warn,
                    Location::Pc(i.pc.raw()),
                    format!("data address {addr} at {} {why}", i.pc),
                ));
            }
        }

        // T015: a prefetch whose target line is never executed is dead
        // weight (per static target line).
        if let InstrKind::PrefetchI { target } = i.kind {
            let line = target.line().number();
            if !code_lines.contains(&line) && prefetch_reported.insert(line) {
                diags.push(Diagnostic::new(
                    "T015",
                    Severity::Warn,
                    Location::Pc(i.pc.raw()),
                    format!(
                        "prefetch.i at {} targets line {line:#x}, which never executes",
                        i.pc
                    ),
                ));
            }
        }
    }
    diags
}

fn kind_name(kind: &InstrKind) -> &'static str {
    match kind {
        InstrKind::Alu => "alu",
        InstrKind::Load { .. } => "load",
        InstrKind::Store { .. } => "store",
        InstrKind::Branch { .. } => "branch",
        InstrKind::PrefetchI { .. } => "prefetch.i",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_trace::TraceBuilder;
    use swip_types::{Addr, Instruction};

    fn rules(trace: &Trace) -> Vec<&'static str> {
        lint_trace(trace).iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_trace_is_clean() {
        let mut b = TraceBuilder::new("ok");
        b.alu().alu().cond_branch(Addr::new(0), true);
        assert!(rules(&b.finish()).is_empty());
    }

    #[test]
    fn empty_trace_is_info_only() {
        let t = Trace::from_instructions("e", vec![]);
        let d = lint_trace(&t);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "T016");
        assert_eq!(d[0].severity, Severity::Info);
    }

    #[test]
    fn discontinuity_is_t010() {
        let t = Trace::from_instructions(
            "bad",
            vec![
                Instruction::alu(Addr::new(0x0)),
                Instruction::alu(Addr::new(0x100)), // gap, no branch
            ],
        );
        assert_eq!(rules(&t), vec!["T010"]);
    }

    #[test]
    fn not_taken_jump_is_t011() {
        // The builder asserts against this, so fabricate via struct fields
        // (exactly what a hand-corrupted file decodes into).
        let mut i = Instruction::jump(Addr::new(0x0), Addr::new(0x40));
        if let InstrKind::Branch { taken, .. } = &mut i.kind {
            *taken = false;
        }
        let next = Instruction::alu(Addr::new(0x4)); // consistent with not-taken
        let t = Trace::from_instructions("bad", vec![i, next]);
        assert_eq!(rules(&t), vec!["T011"]);
    }

    #[test]
    fn kind_change_is_t012() {
        let t = Trace::from_instructions(
            "bad",
            vec![
                Instruction::alu(Addr::new(0x0)),
                Instruction::jump(Addr::new(0x4), Addr::new(0x0)),
                Instruction::load(Addr::new(0x0), Addr::new(0x90000)),
            ],
        );
        assert_eq!(rules(&t), vec!["T012"]);
    }

    #[test]
    fn zero_size_is_t013() {
        let t =
            Trace::from_instructions("bad", vec![Instruction::alu(Addr::new(0x0)).with_size(0)]);
        assert_eq!(rules(&t), vec!["T013"]);
    }

    #[test]
    fn code_aliasing_load_is_t014_once_per_site() {
        let mut instrs = Vec::new();
        for rep in 0..3u64 {
            let base = rep * 8;
            instrs.push(Instruction::load(Addr::new(base), Addr::new(0x4)).with_size(4));
            instrs.push(Instruction::jump(
                Addr::new(base + 4),
                Addr::new((rep + 1) * 8),
            ));
        }
        // Keep continuity: last jump targets 24, add a terminator there.
        instrs.push(Instruction::alu(Addr::new(24)));
        let t = Trace::from_instructions("bad", instrs);
        let r = rules(&t);
        assert_eq!(r.iter().filter(|r| **r == "T014").count(), 3, "{r:?}");
    }

    #[test]
    fn null_page_store_is_t014() {
        let t = Trace::from_instructions(
            "bad",
            vec![Instruction::store(Addr::new(0x4000), Addr::new(0x10))],
        );
        assert_eq!(rules(&t), vec!["T014"]);
    }

    #[test]
    fn useless_prefetch_is_t015() {
        let t = Trace::from_instructions(
            "bad",
            vec![
                Instruction::prefetch_i(Addr::new(0x0), Addr::new(0x9000)),
                Instruction::alu(Addr::new(0x4)),
            ],
        );
        assert_eq!(rules(&t), vec!["T015"]);
    }

    #[test]
    fn useful_prefetch_is_clean() {
        let t = Trace::from_instructions(
            "ok",
            vec![
                Instruction::prefetch_i(Addr::new(0x0), Addr::new(0x40)),
                Instruction::jump(Addr::new(0x4), Addr::new(0x40)),
                Instruction::alu(Addr::new(0x40)),
            ],
        );
        assert!(rules(&t).is_empty());
    }
}
