//! Family C: CFG well-formedness — the reconstructed graph must agree with
//! the trace it came from.
//!
//! [`swip_asmdb::Cfg::from_trace`] is believed to uphold all of these by
//! construction; the rules re-prove it from first principles so corruption
//! anywhere between reconstruction and planning (or a future alternative
//! CFG source) is caught before it poisons insertion planning.

use std::collections::HashMap;

use swip_asmdb::Cfg;
use swip_trace::Trace;
use swip_types::Instruction;

use crate::diag::{Diagnostic, Location, Severity};

/// Checks `cfg` against the trace it was reconstructed from (rules
/// C001–C007).
pub fn check_cfg(trace: &Trace, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Static instruction view (first execution wins, as in reconstruction).
    let mut static_instrs: HashMap<u64, Instruction> = HashMap::new();
    for i in trace.iter() {
        static_instrs.entry(i.pc.raw()).or_insert(*i);
    }

    // C006: every executed PC must be covered by a block.
    let mut missing_reported = std::collections::HashSet::new();
    for i in trace.iter() {
        if cfg.block_of(i.pc).is_none() && missing_reported.insert(i.pc.raw()) {
            diags.push(Diagnostic::new(
                "C006",
                Severity::Error,
                Location::Pc(i.pc.raw()),
                format!("executed pc {} is not covered by any CFG block", i.pc),
            ));
        }
    }

    for (id, block) in cfg.blocks() {
        let loc = Location::Block(id as u64);

        // C005: internal block structure.
        if block.is_empty() {
            diags.push(Diagnostic::new(
                "C005",
                Severity::Error,
                loc,
                "block has no instructions",
            ));
            continue;
        }
        if block.start != block.pcs[0] {
            diags.push(Diagnostic::new(
                "C005",
                Severity::Error,
                loc,
                format!(
                    "block start {} disagrees with its first instruction {}",
                    block.start, block.pcs[0]
                ),
            ));
        }
        for w in block.pcs.windows(2) {
            match static_instrs.get(&w[0].raw()) {
                Some(i) if i.is_branch() => {
                    diags.push(Diagnostic::new(
                        "C005",
                        Severity::Error,
                        loc,
                        format!("branch at {} in the middle of a block", w[0]),
                    ));
                }
                Some(i) if w[0].add(i.size as u64) != w[1] => {
                    diags.push(Diagnostic::new(
                        "C005",
                        Severity::Error,
                        loc,
                        format!("block is not contiguous between {} and {}", w[0], w[1]),
                    ));
                }
                _ => {}
            }
        }

        // C001: every edge endpoint must name a known block.
        for &(succ, _) in &block.succs {
            if succ >= cfg.len() {
                diags.push(Diagnostic::new(
                    "C001",
                    Severity::Error,
                    loc,
                    format!("successor edge to unknown block {succ}"),
                ));
            }
        }
        for &(pred, _) in &block.preds {
            if pred >= cfg.len() {
                diags.push(Diagnostic::new(
                    "C001",
                    Severity::Error,
                    loc,
                    format!("predecessor edge to unknown block {pred}"),
                ));
            }
        }

        // C002: each successor must start at an address the block's final
        // instruction can actually transfer to.
        if let Some(last) = static_instrs.get(&block.last_pc().raw()) {
            for &(succ, _) in &block.succs {
                if succ >= cfg.len() {
                    continue; // already C001
                }
                let succ_start = cfg.block(succ).start;
                // Indirect transfers (incl. returns) reach different targets
                // on different executions; the static view keeps only the
                // first, so any successor is plausible for them.
                let indirect = last.branch_kind().is_some_and(|k| k.is_indirect());
                let ok = if indirect {
                    true
                } else if last.is_branch() {
                    Some(succ_start) == last.branch_target() || succ_start == last.fallthrough()
                } else {
                    succ_start == last.fallthrough()
                };
                if !ok {
                    diags.push(Diagnostic::new(
                        "C002",
                        Severity::Error,
                        loc,
                        format!(
                            "edge to block {succ} starting at {}, unreachable from the {} at {}",
                            succ_start,
                            if last.is_branch() {
                                "branch"
                            } else {
                                "non-branch"
                            },
                            last.pc
                        ),
                    ));
                }
            }
            // ends_with_branch must mirror the final instruction.
            if block.ends_with_branch != last.is_branch() {
                diags.push(Diagnostic::new(
                    "C002",
                    Severity::Error,
                    loc,
                    format!(
                        "ends_with_branch={} disagrees with final instruction at {}",
                        block.ends_with_branch, last.pc
                    ),
                ));
            }
        }

        // C007: a block cannot leave more often than it executes.
        let out: u64 = block.succs.iter().map(|&(_, c)| c).sum();
        if out > block.exec_count {
            diags.push(Diagnostic::new(
                "C007",
                Severity::Warn,
                loc,
                format!(
                    "outgoing edge weight {out} exceeds execution count {}",
                    block.exec_count
                ),
            ));
        }
    }

    // C003: succs and preds must mirror each other with equal weights.
    for (id, block) in cfg.blocks() {
        for &(succ, w) in &block.succs {
            if succ >= cfg.len() {
                continue;
            }
            let mirrored = cfg
                .block(succ)
                .preds
                .iter()
                .any(|&(p, pw)| p == id && pw == w);
            if !mirrored {
                diags.push(Diagnostic::new(
                    "C003",
                    Severity::Error,
                    Location::Block(id as u64),
                    format!("edge {id}→{succ} (weight {w}) has no mirrored predecessor entry"),
                ));
            }
        }
    }

    // C004: blocks unreachable from the entry block along edges.
    if let Some(first) = trace.instructions().first() {
        if let Some(entry) = cfg.block_of(first.pc) {
            let mut seen = vec![false; cfg.len()];
            let mut stack = vec![entry];
            seen[entry] = true;
            while let Some(b) = stack.pop() {
                for &(s, _) in &cfg.block(b).succs {
                    if s < cfg.len() && !seen[s] {
                        seen[s] = true;
                        stack.push(s);
                    }
                }
            }
            for (id, reached) in seen.iter().enumerate() {
                if !reached {
                    diags.push(Diagnostic::new(
                        "C004",
                        Severity::Warn,
                        Location::Block(id as u64),
                        format!(
                            "block at {} is unreachable from the entry block",
                            cfg.block(id).start
                        ),
                    ));
                }
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_trace::TraceBuilder;
    use swip_types::Addr;

    fn diamond() -> Trace {
        let mut b = TraceBuilder::new("diamond");
        for taken in [true, false] {
            b.set_pc(Addr::new(0x0));
            b.alu();
            b.cond_branch(Addr::new(0x20), taken);
            if !taken {
                b.alu();
                b.jump(Addr::new(0x20));
            }
            b.alu();
            b.jump(Addr::new(0x0));
        }
        b.finish()
    }

    #[test]
    fn reconstructed_cfg_is_well_formed() {
        let t = diamond();
        let cfg = Cfg::from_trace(&t);
        let diags = check_cfg(&t, &cfg);
        assert!(diags.is_empty(), "{diags:?}");
    }

    fn rules(trace: &Trace, cfg: &Cfg) -> Vec<&'static str> {
        check_cfg(trace, cfg).iter().map(|d| d.rule).collect()
    }

    #[test]
    fn edge_to_unknown_block_is_c001() {
        let t = diamond();
        let cfg = Cfg::from_trace(&t);
        let mut blocks: Vec<_> = cfg.blocks().map(|(_, b)| b.clone()).collect();
        blocks[0].succs.push((99, 1));
        let bad = Cfg::from_parts(blocks);
        assert!(rules(&t, &bad).contains(&"C001"));
    }

    #[test]
    fn impossible_edge_target_is_c002() {
        let t = diamond();
        let cfg = Cfg::from_trace(&t);
        let mut blocks: Vec<_> = cfg.blocks().map(|(_, b)| b.clone()).collect();
        // Rewire block 0's first edge to a block its branch cannot reach.
        let self_id = 0;
        blocks[self_id].succs[0].0 = self_id; // entry block never targets itself
        let w = blocks[self_id].succs[0].1;
        blocks[self_id].preds.push((self_id, w)); // keep C003 quiet
        blocks[self_id].succs[0] = (self_id, w);
        let bad = Cfg::from_parts(blocks);
        assert!(rules(&t, &bad).contains(&"C002"));
    }

    #[test]
    fn missing_mirror_edge_is_c003() {
        let t = diamond();
        let cfg = Cfg::from_trace(&t);
        let mut blocks: Vec<_> = cfg.blocks().map(|(_, b)| b.clone()).collect();
        // Drop one predecessor entry.
        let victim = blocks
            .iter()
            .position(|b| !b.preds.is_empty())
            .expect("some block has preds");
        blocks[victim].preds.pop();
        let bad = Cfg::from_parts(blocks);
        assert!(rules(&t, &bad).contains(&"C003"));
    }

    #[test]
    fn unreachable_block_is_c004() {
        let t = diamond();
        let cfg = Cfg::from_trace(&t);
        let mut blocks: Vec<_> = cfg.blocks().map(|(_, b)| b.clone()).collect();
        // Orphan a non-entry block by deleting every edge touching it.
        let orphan = blocks.len() - 1;
        for b in &mut blocks {
            b.succs.retain(|&(s, _)| s != orphan);
            b.preds.retain(|&(p, _)| p != orphan);
        }
        blocks[orphan].succs.clear();
        blocks[orphan].preds.clear();
        let bad = Cfg::from_parts(blocks);
        assert!(rules(&t, &bad).contains(&"C004"));
    }

    #[test]
    fn non_contiguous_block_is_c005() {
        let t = diamond();
        let cfg = Cfg::from_trace(&t);
        let mut blocks: Vec<_> = cfg.blocks().map(|(_, b)| b.clone()).collect();
        // Merge two blocks' pcs into one (leaving a mid-block branch or gap).
        let extra = blocks[1].pcs.clone();
        blocks[0].pcs.extend(extra);
        let bad = Cfg::from_parts(blocks);
        assert!(rules(&t, &bad).contains(&"C005"));
    }

    #[test]
    fn uncovered_pc_is_c006() {
        let t = diamond();
        let cfg = Cfg::from_trace(&t);
        let mut blocks: Vec<_> = cfg.blocks().map(|(_, b)| b.clone()).collect();
        blocks.pop(); // drop the last block entirely
                      // Also drop edges to the removed id to isolate the rule under test.
        let gone = blocks.len();
        for b in &mut blocks {
            b.succs.retain(|&(s, _)| s != gone);
            b.preds.retain(|&(p, _)| p != gone);
        }
        let bad = Cfg::from_parts(blocks);
        assert!(rules(&t, &bad).contains(&"C006"));
    }

    #[test]
    fn inflated_edge_weight_is_c007() {
        let t = diamond();
        let cfg = Cfg::from_trace(&t);
        let mut blocks: Vec<_> = cfg.blocks().map(|(_, b)| b.clone()).collect();
        let victim = blocks
            .iter()
            .position(|b| !b.succs.is_empty())
            .expect("some block has succs");
        blocks[victim].succs[0].1 += 1000;
        let (to, w) = blocks[victim].succs[0];
        // Mirror the inflation so only C007 fires.
        for p in &mut blocks[to].preds {
            if p.0 == victim {
                p.1 = w;
            }
        }
        let bad = Cfg::from_parts(blocks);
        assert!(rules(&t, &bad).contains(&"C007"));
    }
}
