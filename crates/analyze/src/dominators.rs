//! Dominator and post-dominator trees over a reconstructed CFG.
//!
//! Both trees are computed with the Cooper–Harvey–Kennedy iterative
//! algorithm over a reverse-postorder numbering: simple, allocation-light,
//! and near-linear on the reducible CFGs trace reconstruction produces.
//! Post-dominators run the same solver on the reversed edge set, rooted at
//! a *virtual exit* that every natural exit block feeds; CFGs reconstructed
//! from looping traces often have no natural exit at all, in which case the
//! caller supplies the block that ended the trace.
//!
//! The tree is the substrate for the static prefetch-plan evaluator
//! ([`coverage`](crate::coverage)): redundancy is an argument about
//! dominating line touches, deadness about reachability from the entry, and
//! clobbering about natural loops (back edges are defined by dominance).

use swip_asmdb::{BlockId, Cfg};

/// A dominator (or post-dominator) tree over the blocks of a [`Cfg`].
///
/// Unreachable blocks (never executed on any path from the root) carry no
/// tree node: [`DomTree::is_reachable`] is `false` and [`DomTree::idom`]
/// returns `None` for them.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per internal node; the root is its own idom.
    idom: Vec<Option<usize>>,
    /// Reverse-postorder number per internal node (`usize::MAX` when
    /// unreachable). Dominators always have smaller numbers.
    rpo_index: Vec<usize>,
    /// Real blocks in reverse postorder (virtual node excluded).
    order: Vec<BlockId>,
    /// Index of the virtual exit node, when this is a post-dominator tree
    /// rooted at one.
    virtual_root: Option<usize>,
    /// The root block (`None` when rooted at the virtual exit).
    root: Option<BlockId>,
}

impl DomTree {
    /// Forward dominators rooted at `entry` (the block containing the first
    /// executed instruction).
    pub fn dominators(cfg: &Cfg, entry: BlockId) -> DomTree {
        let n = cfg.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in cfg.blocks() {
            for &(s, _) in &block.succs {
                if s < n {
                    succs[id].push(s);
                    preds[s].push(id);
                }
            }
        }
        let (idom, rpo_index, order) = solve(n, entry, &succs, &preds);
        DomTree {
            idom,
            rpo_index,
            order,
            virtual_root: None,
            root: Some(entry),
        }
    }

    /// Post-dominators, rooted at a virtual exit fed by every block with no
    /// successors plus every block in `extra_exits` (callers pass the block
    /// that ended the trace, since fully-looping CFGs have no natural exit).
    pub fn post_dominators(cfg: &Cfg, extra_exits: &[BlockId]) -> DomTree {
        let n = cfg.len();
        let virt = n;
        // Reversed graph: an original edge a→b becomes b→a, and the virtual
        // exit gains an edge to every exit block.
        let mut succs = vec![Vec::new(); n + 1];
        let mut preds = vec![Vec::new(); n + 1];
        for (id, block) in cfg.blocks() {
            for &(s, _) in &block.succs {
                if s < n {
                    succs[s].push(id);
                    preds[id].push(s);
                }
            }
        }
        let mut exits: Vec<BlockId> = (0..n).filter(|&b| succs_empty(cfg, b)).collect();
        for &e in extra_exits {
            if e < n && !exits.contains(&e) {
                exits.push(e);
            }
        }
        for e in exits {
            succs[virt].push(e);
            preds[e].push(virt);
        }
        let (idom, rpo_index, order) = solve(n + 1, virt, &succs, &preds);
        DomTree {
            idom,
            rpo_index,
            order: order.into_iter().filter(|&b| b != virt).collect(),
            virtual_root: Some(virt),
            root: None,
        }
    }

    /// The root block, when this tree is rooted at a real block.
    pub fn root(&self) -> Option<BlockId> {
        self.root
    }

    /// Immediate dominator of `b`: `None` for the root itself, for
    /// unreachable blocks, and for blocks whose only dominator is the
    /// virtual exit of a post-dominator tree.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let parent = *self.idom.get(b)?;
        let p = parent?;
        if p == b || Some(p) == self.virtual_root {
            return None;
        }
        Some(p)
    }

    /// Whether `b` is reachable from the root (participates in the tree).
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom.get(b).is_some_and(|d| d.is_some())
    }

    /// Reverse-postorder number of `b`; dominators always number lower than
    /// the blocks they dominate.
    pub fn rpo_number(&self, b: BlockId) -> Option<usize> {
        match self.rpo_index.get(b) {
            Some(&i) if i != usize::MAX => Some(i),
            _ => None,
        }
    }

    /// Real blocks in reverse postorder (root first for forward trees).
    pub fn rpo(&self) -> &[BlockId] {
        &self.order
    }

    /// Whether `a` dominates `b` (reflexively: every block dominates
    /// itself). `false` when either block is unreachable.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (Some(ia), Some(_)) = (self.rpo_number(a), self.rpo_number(b)) else {
            return false;
        };
        // Climb b's dominator chain; dominators strictly decrease in RPO
        // number, so stop as soon as we pass a.
        let mut cur = b;
        while self.rpo_index[cur] > ia {
            match self.idom[cur] {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
        cur == a
    }

    /// Whether `a` dominates `b` and `a != b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Depth of `b` in the tree (root is 0); `None` when unreachable.
    pub fn depth(&self, b: BlockId) -> Option<usize> {
        self.rpo_number(b)?;
        let mut depth = 0;
        let mut cur = b;
        while let Some(p) = self.idom[cur] {
            if p == cur || Some(p) == self.virtual_root {
                break;
            }
            cur = p;
            depth += 1;
        }
        Some(depth)
    }
}

fn succs_empty(cfg: &Cfg, b: BlockId) -> bool {
    let n = cfg.len();
    !cfg.block(b).succs.iter().any(|&(s, _)| s < n)
}

/// Cooper–Harvey–Kennedy over an explicit adjacency list. Returns
/// `(idom, rpo_index, order)`; `idom[root] == Some(root)`, unreachable
/// nodes get `None` and `rpo_index` `usize::MAX`.
fn solve(
    n: usize,
    root: usize,
    succs: &[Vec<usize>],
    preds: &[Vec<usize>],
) -> (Vec<Option<usize>>, Vec<usize>, Vec<usize>) {
    // Postorder DFS with an explicit stack, then reverse.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = unseen, 1 = open, 2 = done
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    state[root] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let mut advanced = false;
        while *next < succs[b].len() {
            let s = succs[b][*next];
            *next += 1;
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
                advanced = true;
                break;
            }
        }
        if !advanced && matches!(stack.last(), Some(&(bb, nn)) if bb == b && nn >= succs[b].len()) {
            stack.pop();
            state[b] = 2;
            order.push(b);
        }
    }
    order.reverse(); // reverse postorder, root first

    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        rpo_index[b] = i;
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);
    let intersect = |idom: &[Option<usize>], rpo: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo[a] > rpo[b] {
                a = idom[a].expect("processed node has an idom");
            }
            while rpo[b] > rpo[a] {
                b = idom[b].expect("processed node has an idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_index, cur, p),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    (idom, rpo_index, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_asmdb::CfgBlock;
    use swip_types::Addr;

    /// Builds a CFG from an edge list; block `i` starts at `0x100 * i` and
    /// holds `lens[i]` instructions.
    fn cfg_of(lens: &[usize], edges: &[(usize, usize)]) -> Cfg {
        let mut blocks: Vec<CfgBlock> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let start = Addr::new(0x100 * i as u64);
                CfgBlock {
                    start,
                    pcs: (0..len)
                        .map(|k| Addr::new(start.raw() + 4 * k as u64))
                        .collect(),
                    exec_count: 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                    ends_with_branch: false,
                }
            })
            .collect();
        for &(a, b) in edges {
            blocks[a].succs.push((b, 1));
            blocks[b].preds.push((a, 1));
        }
        Cfg::from_parts(blocks)
    }

    /// Diamond: 0 → {1, 2} → 3.
    fn diamond() -> Cfg {
        cfg_of(&[2, 2, 2, 2], &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn diamond_dominators() {
        let dom = DomTree::dominators(&diamond(), 0);
        assert_eq!(dom.idom(0), None);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
        assert_eq!(
            dom.idom(3),
            Some(0),
            "join is dominated by the fork, not a branch"
        );
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(1, 3));
        assert!(dom.dominates(3, 3));
        assert!(dom.strictly_dominates(0, 3));
        assert!(!dom.strictly_dominates(3, 3));
    }

    #[test]
    fn diamond_post_dominators() {
        let pdom = DomTree::post_dominators(&diamond(), &[]);
        // 3 is the sole exit: it post-dominates everything.
        assert!(pdom.dominates(3, 0));
        assert!(pdom.dominates(3, 1));
        assert_eq!(pdom.idom(0), Some(3));
        assert_eq!(
            pdom.idom(3),
            None,
            "exit's only post-dominator is the virtual exit"
        );
        assert!(!pdom.dominates(1, 0));
    }

    #[test]
    fn unreachable_blocks_are_outside_the_tree() {
        // 0 → 1; 2 floats free.
        let cfg = cfg_of(&[1, 1, 1], &[(0, 1)]);
        let dom = DomTree::dominators(&cfg, 0);
        assert!(dom.is_reachable(1));
        assert!(!dom.is_reachable(2));
        assert_eq!(dom.idom(2), None);
        assert!(!dom.dominates(0, 2));
        assert_eq!(dom.rpo(), &[0, 1]);
    }

    #[test]
    fn looping_cfg_needs_the_extra_exit() {
        // 0 → 1 → 2 → 0: no natural exit.
        let cfg = cfg_of(&[1, 1, 1], &[(0, 1), (1, 2), (2, 0)]);
        let pdom = DomTree::post_dominators(&cfg, &[]);
        assert!(!pdom.is_reachable(0), "no exits: nothing is post-dominated");
        let pdom = DomTree::post_dominators(&cfg, &[2]);
        assert!(pdom.dominates(2, 0));
        assert!(pdom.dominates(1, 0));
        assert_eq!(pdom.idom(0), Some(1));
    }

    #[test]
    fn depth_counts_tree_edges() {
        // 0 → 1 → 2 (straight line).
        let cfg = cfg_of(&[1, 1, 1], &[(0, 1), (1, 2)]);
        let dom = DomTree::dominators(&cfg, 0);
        assert_eq!(dom.depth(0), Some(0));
        assert_eq!(dom.depth(1), Some(1));
        assert_eq!(dom.depth(2), Some(2));
    }
}
