//! Natural-loop detection over a dominator tree.
//!
//! A back edge is an edge `u → h` whose head `h` dominates its tail `u`;
//! the natural loop of `h` is `h` plus every block that can reach a back
//! edge's tail without passing through `h`. Loops sharing a header are
//! merged, as is conventional. The forest records, per block, the smallest
//! (innermost) loop containing it and its nesting depth — the structure the
//! clobbering rule ([`coverage`](crate::coverage)) uses to ask "which cache
//! lines does the hot loop around this insertion keep re-touching?".

use std::collections::HashSet;

use swip_asmdb::{BlockId, Cfg};

use crate::dominators::DomTree;

/// One natural loop: a dominating header and the blocks that cycle back
/// into it.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// Tails of the back edges into `header` (the loop latches).
    pub latches: Vec<BlockId>,
    /// Every block in the loop, sorted ascending; always contains `header`.
    pub blocks: Vec<BlockId>,
}

impl NaturalLoop {
    /// Number of times the header block executed (the trip count upper
    /// bound recorded by CFG reconstruction).
    pub fn header_exec_count(&self, cfg: &Cfg) -> u64 {
        cfg.block(self.header).exec_count
    }
}

/// All natural loops of a CFG, with per-block innermost-loop and nesting
/// depth lookups.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// Loops ordered by header block id.
    pub loops: Vec<NaturalLoop>,
    /// Index into `loops` of the smallest loop containing each block.
    innermost: Vec<Option<usize>>,
    /// Number of loops containing each block.
    depth: Vec<u32>,
}

impl LoopForest {
    /// Detects every natural loop of `cfg` using dominance information from
    /// `dom` (a forward tree from [`DomTree::dominators`]). Back edges whose
    /// endpoints are unreachable from the entry are ignored.
    pub fn detect(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let n = cfg.len();
        // Find back edges, grouped by header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for (u, block) in cfg.blocks() {
            if !dom.is_reachable(u) {
                continue;
            }
            for &(h, _) in &block.succs {
                if h < n && dom.dominates(h, u) {
                    match headers.iter().position(|&x| x == h) {
                        Some(i) => {
                            if !latches_of[i].contains(&u) {
                                latches_of[i].push(u);
                            }
                        }
                        None => {
                            headers.push(h);
                            latches_of.push(vec![u]);
                        }
                    }
                }
            }
        }

        // Body of each loop: backward flood from the latches, stopping at
        // the header.
        let mut loops: Vec<NaturalLoop> = headers
            .into_iter()
            .zip(latches_of)
            .map(|(header, mut latches)| {
                latches.sort_unstable();
                let mut body: HashSet<BlockId> = HashSet::new();
                body.insert(header);
                let mut work: Vec<BlockId> = Vec::new();
                for &l in &latches {
                    if body.insert(l) {
                        work.push(l);
                    }
                }
                while let Some(b) = work.pop() {
                    for &(p, _) in &cfg.block(b).preds {
                        if p < n && dom.is_reachable(p) && body.insert(p) {
                            work.push(p);
                        }
                    }
                }
                let mut blocks: Vec<BlockId> = body.into_iter().collect();
                blocks.sort_unstable();
                NaturalLoop {
                    header,
                    latches,
                    blocks,
                }
            })
            .collect();
        loops.sort_by_key(|l| l.header);

        // Innermost loop = smallest containing body; depth = containing
        // loop count. O(loops × body) — fine at trace-CFG scale.
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        let mut depth = vec![0u32; n];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                depth[b] += 1;
                match innermost[b] {
                    Some(j) if loops[j].blocks.len() <= l.blocks.len() => {}
                    _ => innermost[b] = Some(i),
                }
            }
        }
        LoopForest {
            loops,
            innermost,
            depth,
        }
    }

    /// The smallest loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops.get(*self.innermost.get(b)?.as_ref()?)
    }

    /// How many loops contain `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth.get(b).copied().unwrap_or(0)
    }

    /// Number of distinct loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the CFG has no loops at all.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_asmdb::CfgBlock;
    use swip_types::Addr;

    fn cfg_of(count: usize, edges: &[(usize, usize)]) -> Cfg {
        let mut blocks: Vec<CfgBlock> = (0..count)
            .map(|i| {
                let start = Addr::new(0x100 * i as u64);
                CfgBlock {
                    start,
                    pcs: vec![start],
                    exec_count: 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                    ends_with_branch: false,
                }
            })
            .collect();
        for &(a, b) in edges {
            blocks[a].succs.push((b, 1));
            blocks[b].preds.push((a, 1));
        }
        Cfg::from_parts(blocks)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let cfg = cfg_of(3, &[(0, 1), (1, 2)]);
        let dom = DomTree::dominators(&cfg, 0);
        let forest = LoopForest::detect(&cfg, &dom);
        assert!(forest.is_empty());
        assert_eq!(forest.depth(1), 0);
        assert!(forest.innermost(1).is_none());
    }

    #[test]
    fn simple_cycle_is_one_loop() {
        // 0 → 1 → 2 → 1, 2 → 3.
        let cfg = cfg_of(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let dom = DomTree::dominators(&cfg, 0);
        let forest = LoopForest::detect(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.latches, vec![2]);
        assert_eq!(l.blocks, vec![1, 2]);
        assert_eq!(forest.depth(2), 1);
        assert_eq!(forest.depth(0), 0);
        assert_eq!(forest.depth(3), 0);
    }

    #[test]
    fn nested_loops_report_depth_and_innermost() {
        // Outer: 1 → 2 → 3 → 1; inner: 2 → 2 (self loop).
        let cfg = cfg_of(4, &[(0, 1), (1, 2), (2, 2), (2, 3), (3, 1)]);
        let dom = DomTree::dominators(&cfg, 0);
        let forest = LoopForest::detect(&cfg, &dom);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest.depth(2), 2);
        assert_eq!(forest.depth(1), 1);
        let inner = forest.innermost(2).unwrap();
        assert_eq!(inner.header, 2);
        assert_eq!(inner.blocks, vec![2]);
        let outer = forest.innermost(3).unwrap();
        assert_eq!(outer.header, 1);
        assert_eq!(outer.blocks, vec![1, 2, 3]);
    }

    #[test]
    fn shared_header_loops_merge() {
        // Two back edges into 1: 1 → 2 → 1 and 1 → 3 → 1.
        let cfg = cfg_of(4, &[(0, 1), (1, 2), (2, 1), (1, 3), (3, 1)]);
        let dom = DomTree::dominators(&cfg, 0);
        let forest = LoopForest::detect(&cfg, &dom);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.latches, vec![2, 3]);
        assert_eq!(l.blocks, vec![1, 2, 3]);
    }

    #[test]
    fn headers_dominate_their_bodies() {
        // Irregular mesh with a couple of cycles.
        let cfg = cfg_of(6, &[(0, 1), (1, 2), (2, 3), (3, 1), (2, 4), (4, 5), (5, 4)]);
        let dom = DomTree::dominators(&cfg, 0);
        let forest = LoopForest::detect(&cfg, &dom);
        for l in &forest.loops {
            for &b in &l.blocks {
                assert!(dom.dominates(l.header, b), "header {} !dom {b}", l.header);
            }
        }
    }
}
